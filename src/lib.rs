//! Integration surface for the BPROM reproduction workspace.
//!
//! This crate re-exports the public API of every workspace crate so
//! integration tests under `tests/` and runnable examples under `examples/`
//! can use a single dependency. Library users should depend on the
//! individual crates (`bprom`, `bprom-nn`, ...) directly.

pub use bprom;
pub use bprom_attacks as attacks;
pub use bprom_audit as audit;
pub use bprom_ckpt as ckpt;
pub use bprom_data as data;
pub use bprom_defenses as defenses;
pub use bprom_faults as faults;
pub use bprom_meta as meta;
pub use bprom_metrics as metrics;
pub use bprom_nn as nn;
pub use bprom_obs as obs;
pub use bprom_par as par;
pub use bprom_qcache as qcache;
pub use bprom_regimes as regimes;
pub use bprom_scenarios as scenarios;
pub use bprom_tensor as tensor;
pub use bprom_verdict as verdict;
pub use bprom_vp as vp;
