//! Kill-at-any-point resume fixture for the `bprom-ckpt` subsystem.
//!
//! Two modes:
//!
//! - `ckpt_fixture run [--ckpt-dir DIR] [--out FILE] [--hostile]
//!   [--threads N]` — one identically-seeded fit + zoo + evaluate
//!   pipeline (a scaled-down version of the tier-1 determinism fixture),
//!   checkpointed when `--ckpt-dir` is given. Writes the detection
//!   report JSON to `--out` and the number of checkpoint boundaries
//!   crossed to `<out>.boundaries`. With `BPROM_CRASH_AFTER=n` in the
//!   environment the process dies at the `n`-th boundary with exit code
//!   86 (see `bprom_ckpt::crash_point`).
//!
//! - `ckpt_fixture --sweep [--hostile] [--threads N] [--points a,b,c]
//!   [--stride k]` — the headline crash-safety contract, self-hosted:
//!   run an uncheckpointed baseline, prove a checkpointed uninterrupted
//!   run matches it byte-for-byte, then for each kill point spawn a run
//!   that crashes there, resume it, and require the resumed report to be
//!   byte-identical to the baseline.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{
    build_suspicious_zoo_ckpt, evaluate_detector_ckpt, Bprom, BpromConfig, Checkpointer,
    DetectionReport, ZooConfig,
};
use bprom_suite::ckpt::{crossings, CRASH_EXIT_CODE};
use bprom_suite::data::SynthDataset;
use bprom_suite::faults::{FaultyOracle, Quantize, RetryPolicy, RetryingOracle, Stack, Transient};
use bprom_suite::nn::TrainConfig;
use bprom_suite::par;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::PromptTrainConfig;
use std::path::Path;
use std::process::Command;

/// One identically-seeded fit + zoo + evaluate run, optionally
/// checkpointed; `hostile` stacks fault injection plus retries on every
/// inspected oracle. Scaled down from `tests/par_determinism.rs` so the
/// kill sweep stays fast.
fn run_pipeline(hostile: bool, ck: Option<&Checkpointer>) -> DetectionReport {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 2;
    config.backdoor_shadows = 2;
    config.test_samples_per_class = 20;
    config.target_samples_per_class = 10;
    config.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    config.prompt = PromptTrainConfig {
        epochs: 2,
        cmaes_generations: 3,
        cmaes_population: 6,
        ..PromptTrainConfig::default()
    };
    let detector = Bprom::fit_ckpt(&config, &mut rng, ck).expect("fit failed");

    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.clean = 1;
    zoo_cfg.backdoored = 1;
    zoo_cfg.samples_per_class = 20;
    zoo_cfg.train = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let zoo = build_suspicious_zoo_ckpt(&zoo_cfg, &mut rng, ck).expect("zoo failed");
    let mut report = evaluate_detector_ckpt(
        &detector,
        zoo,
        &mut rng,
        ck,
        |detector, oracle, rng, ck, unit| {
            if hostile {
                let plan = Stack(vec![
                    Box::new(Transient { rate: 0.1 }),
                    Box::new(Quantize { decimals: 3 }),
                ]);
                let faulty = FaultyOracle::new(&oracle, plan, 0xFA17);
                let retrying = RetryingOracle::new(&faulty, RetryPolicy::default());
                detector.inspect_ckpt(&retrying, rng, ck, unit)
            } else {
                detector.inspect_ckpt(&oracle, rng, ck, unit)
            }
        },
    )
    .expect("evaluate failed");
    // Wall-clock is the one legitimately nondeterministic field; zero it
    // so file-level comparison covers everything else byte-for-byte.
    report.mean_inspect_ms = 0.0;
    report
}

fn run(ckpt_dir: Option<String>, out: Option<String>, hostile: bool, threads: usize) {
    par::set_thread_count(threads);
    let ck = ckpt_dir.map(|d| Checkpointer::open(d).expect("checkpoint dir"));
    let report = run_pipeline(hostile, ck.as_ref());
    let json = report.to_json().expect("report json");
    match out {
        Some(out) => {
            std::fs::write(&out, &json).expect("write report");
            std::fs::write(format!("{out}.boundaries"), format!("{}\n", crossings()))
                .expect("write boundaries");
        }
        None => println!("{json}"),
    }
}

/// Spawns this binary in `run` mode. `crash_after` arms the injected
/// crash; the crash env var is always scrubbed first so an armed parent
/// environment cannot leak into subprocesses.
fn spawn_run(
    hostile: bool,
    threads: usize,
    ckpt_dir: Option<&Path>,
    out: &Path,
    crash_after: Option<u64>,
) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.arg("run")
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--out")
        .arg(out)
        .env_remove("BPROM_CRASH_AFTER")
        .env_remove("BPROM_CKPT_DIR");
    if hostile {
        cmd.arg("--hostile");
    }
    if let Some(dir) = ckpt_dir {
        cmd.arg("--ckpt-dir").arg(dir);
    }
    if let Some(n) = crash_after {
        cmd.env("BPROM_CRASH_AFTER", n.to_string());
    }
    cmd.status().expect("spawn fixture subprocess")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn sweep(hostile: bool, threads: usize, points: Option<Vec<u64>>, stride: u64) {
    let scratch = std::env::temp_dir().join(format!(
        "bprom-ckpt-sweep-{}{}",
        std::process::id(),
        if hostile { "-hostile" } else { "" }
    ));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // 1. Uncheckpointed baseline: the ground-truth report.
    let base_out = scratch.join("base.json");
    let status = spawn_run(hostile, threads, None, &base_out, None);
    assert!(status.success(), "baseline run failed: {status}");
    let baseline = read(&base_out);

    // 2. Checkpointing enabled, never interrupted: snapshot overhead must
    //    not perturb a single byte of the report.
    let full_dir = scratch.join("full");
    let full_out = scratch.join("full.json");
    let status = spawn_run(hostile, threads, Some(&full_dir), &full_out, None);
    assert!(status.success(), "checkpointed run failed: {status}");
    assert_eq!(
        read(&full_out),
        baseline,
        "enabling checkpointing changed the detection report"
    );
    let total: u64 = read(&full_out.with_extension("json.boundaries"))
        .trim()
        .parse()
        .expect("boundary count");
    println!("[sweep] fixture has {total} checkpoint boundaries");

    // 3. Kill at each requested boundary, resume, compare byte-for-byte.
    let kill_points: Vec<u64> = match points {
        Some(p) => p.into_iter().filter(|&n| n >= 1 && n <= total).collect(),
        None => (1..=total).step_by(stride.max(1) as usize).collect(),
    };
    assert!(
        !kill_points.is_empty(),
        "no kill points in range 1..={total}"
    );
    for &n in &kill_points {
        let dir = scratch.join(format!("kill-{n}"));
        let out = scratch.join(format!("kill-{n}.json"));
        let status = spawn_run(hostile, threads, Some(&dir), &out, Some(n));
        assert_eq!(
            status.code(),
            Some(CRASH_EXIT_CODE),
            "run armed to crash at boundary {n} exited with {status}"
        );
        let status = spawn_run(hostile, threads, Some(&dir), &out, None);
        assert!(
            status.success(),
            "resume after boundary {n} failed: {status}"
        );
        assert_eq!(
            read(&out),
            baseline,
            "resume after a crash at boundary {n} diverged from the baseline"
        );
        println!("[sweep] kill at boundary {n}/{total}: resume byte-identical");
    }
    println!(
        "[sweep] OK — {} kill points, {} threads, hostile={hostile}",
        kill_points.len(),
        if threads == 0 {
            "default".to_string()
        } else {
            threads.to_string()
        }
    );
    std::fs::remove_dir_all(&scratch).ok();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_sweep = false;
    let mut ckpt_dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut hostile = false;
    let mut threads = 0usize;
    let mut points: Option<Vec<u64>> = None;
    let mut stride = 1u64;
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value after {}", args[*i - 1]))
                .clone()
        };
        match args[i].as_str() {
            "run" => {}
            "--sweep" => mode_sweep = true,
            "--ckpt-dir" => ckpt_dir = Some(next(&mut i)),
            "--out" => out = Some(next(&mut i)),
            "--hostile" => hostile = true,
            "--threads" => threads = next(&mut i).parse().expect("--threads"),
            "--stride" => stride = next(&mut i).parse().expect("--stride"),
            "--points" => {
                points = Some(
                    next(&mut i)
                        .split(',')
                        .map(|s| s.trim().parse().expect("--points"))
                        .collect(),
                )
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: ckpt_fixture run|--sweep \
                     [--ckpt-dir DIR] [--out FILE] [--hostile] [--threads N] \
                     [--points a,b,c] [--stride k]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if mode_sweep {
        sweep(hostile, threads, points, stride);
    } else {
        run(ckpt_dir, out, hostile, threads);
    }
}
