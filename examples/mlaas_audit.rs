//! MLaaS marketplace audit: the scenario from the paper's introduction.
//! A buyer downloads several third-party models (some trojaned, some not)
//! and screens them all with one fitted BPROM detector before deployment.
//!
//! Run with: `cargo run --release --example mlaas_audit`

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{build_suspicious_zoo, Bprom, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::obs;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{summarize_findings, Mode, RulePolicy, VerdictPipeline};
use bprom_suite::vp::QueryOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record the whole audit: every oracle query, phase timing and counter
    // ends up in one JSON snapshot.
    let session = obs::Session::begin("mlaas_audit");
    let mut rng = Rng::new(77);
    println!("fitting one BPROM detector for the CIFAR-10 marketplace...");
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 6;
    config.backdoor_shadows = 6;
    config.prompt.cmaes_generations = 25;
    let detector = Bprom::fit(&config, &mut rng)?;

    // The "marketplace": vendors ship models with unknown provenance.
    // Here two vendors are honest and two planted different backdoors —
    // neither of which matches the BadNets attack the detector trained on.
    println!("downloading 8 marketplace models (trojan status unknown to the buyer)...");
    let mut marketplace = Vec::new();
    for attack in [AttackKind::Blend, AttackKind::Dynamic] {
        let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, attack);
        zoo_cfg.clean = 2;
        zoo_cfg.backdoored = 2;
        marketplace.extend(build_suspicious_zoo(&zoo_cfg, &mut rng)?);
    }

    // Every inspection flows through the verdict pipeline: the raw score
    // becomes stable-rule-ID findings, repeated audits of one fingerprint
    // correlate, and the active mode (BPROM_MODE=learning|strict) decides
    // whether evidence only gets recorded or actually flags the vendor.
    let mode = Mode::from_env_or(Mode::Strict);
    let mut pipeline = VerdictPipeline::new("mlaas_audit", RulePolicy::default(), mode);

    println!("\n{:<8} {:<12} verdict", "model", "truth");
    let mut correct = 0usize;
    let total = marketplace.len();
    for (i, suspicious) in marketplace.into_iter().enumerate() {
        let truth = suspicious.backdoored;
        let fingerprint = suspicious.fingerprint();
        let oracle = QueryOracle::new(suspicious.model, 10);
        let verdict = detector.inspect(&oracle, &mut rng)?;
        if verdict.backdoored == truth {
            correct += 1;
        }
        let record = pipeline.collect(&fingerprint, verdict.signals());
        println!(
            "{:<8} {:<12} {verdict}",
            format!("#{i}"),
            if truth { "backdoored" } else { "clean" },
        );
        println!(
            "         findings: {}",
            summarize_findings(&record.findings)
        );
    }
    println!("\naudit agreement with ground truth: {correct}/{total}");

    // Correlate + respond: one machine-readable incident report for the
    // whole marketplace screen.
    let incident = pipeline.report();
    println!(
        "incident report ({} mode): {} audits, {} flagged, {} quarantined \
         -> mlaas_audit_incident.json",
        mode.as_str(),
        incident.audits,
        incident.flagged,
        incident.quarantined,
    );
    std::fs::write("mlaas_audit_incident.json", incident.to_json_string())?;

    // Dump the machine-readable audit trail next to the binary.
    let snapshot = session.finish();
    println!(
        "audit spent {} oracle queries over {} models; trail -> mlaas_audit_telemetry.json",
        snapshot.counter("oracle.queries"),
        snapshot.counter("inspect.models"),
    );
    std::fs::write("mlaas_audit_telemetry.json", snapshot.to_json_string())?;
    Ok(())
}
