//! MLaaS marketplace audit: the scenario from the paper's introduction,
//! run fleet-scale. A buyer downloads several third-party models (some
//! trojaned, some not) and screens the whole queue through the audit
//! engine: one fitted BPROM detector comes out of the content-addressed
//! shadow-zoo registry and is shared by every audit, inspections run
//! concurrently on the worker pool, and the queue rolls up into one
//! schema-versioned incident report.
//!
//! Run with: `cargo run --release --example mlaas_audit`

use bprom_suite::attacks::AttackKind;
use bprom_suite::audit::{AuditEngine, AuditRequest, DetectorSpec, ShadowZooRegistry};
use bprom_suite::bprom::{build_suspicious_zoo, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::obs;
use bprom_suite::tensor::Rng;
use bprom_suite::verdict::{summarize_findings, Mode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record the whole audit: every oracle query, phase timing and counter
    // ends up in one JSON snapshot.
    let session = obs::Session::begin("mlaas_audit");

    // The "marketplace": vendors ship models with unknown provenance.
    // Here two vendors are honest and two planted different backdoors —
    // neither of which matches the BadNets attack the detector trained on.
    println!("downloading 8 marketplace models (trojan status unknown to the buyer)...");
    let mut rng = Rng::new(77);
    let mut marketplace = Vec::new();
    for attack in [AttackKind::Blend, AttackKind::Dynamic] {
        let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, attack);
        zoo_cfg.clean = 2;
        zoo_cfg.backdoored = 2;
        marketplace.extend(build_suspicious_zoo(&zoo_cfg, &mut rng)?);
    }

    // One detector spec serves the whole queue. The registry fits it on
    // first lookup and every later audit shares the same asset — with a
    // persistent registry (`ShadowZooRegistry::open`) a later process
    // would restore it from disk and pay no fit at all.
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 6;
    config.backdoor_shadows = 6;
    config.prompt.cmaes_generations = 25;
    let spec = DetectorSpec::new(config, 77);
    println!(
        "registry key for the CIFAR-10 marketplace zoo: {}",
        spec.key()
    );

    let queue: Vec<AuditRequest> = marketplace
        .into_iter()
        .enumerate()
        .map(|(i, suspicious)| {
            AuditRequest::from_suspicious(
                format!("#{i}"),
                suspicious,
                10,
                spec.clone(),
                77 + i as u64,
            )
        })
        .collect();

    // Drain the queue. The engine resolves the spec once, audits
    // same-model requests sequentially and distinct models concurrently,
    // and correlates every outcome through the verdict pipeline (the
    // active BPROM_MODE=learning|strict decides whether evidence only
    // gets recorded or actually flags the vendor).
    let mode = Mode::from_env_or(Mode::Strict);
    let engine = AuditEngine::new("mlaas_audit", ShadowZooRegistry::in_memory())
        .with_mode(mode)
        .share_model_caches(true);
    let fleet = engine.run(queue)?;

    println!("\n{:<8} {:<12} verdict", "model", "truth");
    let mut correct = 0usize;
    for outcome in &fleet.outcomes {
        let truth = outcome.truth.unwrap_or(false);
        if outcome.verdict.backdoored == truth {
            correct += 1;
        }
        println!(
            "{:<8} {:<12} {}",
            outcome.label,
            if truth { "backdoored" } else { "clean" },
            outcome.verdict,
        );
        println!(
            "         findings: {}",
            summarize_findings(&outcome.record.findings)
        );
    }
    println!(
        "\naudit agreement with ground truth: {correct}/{}",
        fleet.len()
    );
    println!(
        "registry: {} fit(s) served {} audits ({} shared lookups); \
         fleet cache hit rate {:.1}%",
        fleet.registry.builds,
        fleet.len(),
        fleet.registry.hits(),
        100.0 * fleet.cache_hit_rate(),
    );

    // Correlate + respond: one machine-readable incident report for the
    // whole marketplace screen.
    println!("\n{}", fleet.render());
    println!(
        "incident report ({} mode): {} audits, {} flagged, {} quarantined \
         -> mlaas_audit_incident.json",
        mode.as_str(),
        fleet.incident.audits,
        fleet.incident.flagged,
        fleet.incident.quarantined,
    );
    std::fs::write("mlaas_audit_incident.json", fleet.incident.to_json_string())?;

    // Dump the machine-readable audit trail next to the binary.
    let snapshot = session.finish();
    println!(
        "audit spent {} oracle queries over {} shadow fit(s); trail -> mlaas_audit_telemetry.json",
        snapshot.counter("oracle.queries"),
        snapshot.count_spans("shadow_training"),
    );
    std::fs::write("mlaas_audit_telemetry.json", snapshot.to_json_string())?;
    Ok(())
}
