//! Defense shootout: pits the input-level baselines against a single
//! BadNets-infected model on the same triggered/benign input stream and
//! reports each detector's AUROC (the setting of the paper's Table 1).
//!
//! Run with: `cargo run --release --example defense_shootout`

use bprom_suite::attacks::{poison_dataset, AttackKind};
use bprom_suite::data::SynthDataset;
use bprom_suite::defenses::input_level::{
    scale_up_scores, sentinet_scores, strip_scores, teco_scores, FrequencyDetector,
};
use bprom_suite::metrics::auroc;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::{Rng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(13);
    // Infected model.
    let data = SynthDataset::Cifar10.generate(40, 16, 3)?;
    let (train, test) = data.split(0.8, &mut rng)?;
    let attack = AttackKind::BadNets.build(16, &mut rng)?;
    let cfg = AttackKind::BadNets.default_config(0);
    let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng)?;
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng)?;
    Trainer::new(TrainConfig::default()).fit(
        &mut model,
        &poisoned.dataset.images,
        &poisoned.dataset.labels,
        &mut rng,
    )?;

    // Half-triggered input stream.
    let mut images = Vec::new();
    let mut truth = Vec::new();
    for i in 0..40.min(test.len()) {
        let x = test.images.sample(i)?;
        if i % 2 == 0 {
            images.push(attack.apply(&x, &mut rng)?);
            truth.push(true);
        } else {
            images.push(x);
            truth.push(false);
        }
    }
    let inputs = Tensor::stack(&images)?;
    let pool = test
        .select(&(40..test.len().min(70)).collect::<Vec<_>>())?
        .images;

    println!("{:<12} {:>8}", "defense", "AUROC");
    let strip = strip_scores(&mut model, &inputs, &pool, 8, &mut rng)?;
    println!("{:<12} {:>8.3}", "STRIP", auroc(&strip, &truth)?);
    let scale = scale_up_scores(&mut model, &inputs)?;
    println!("{:<12} {:>8.3}", "SCALE-UP", auroc(&scale, &truth)?);
    let teco = teco_scores(&mut model, &inputs, &mut rng)?;
    println!("{:<12} {:>8.3}", "TeCo", auroc(&teco, &truth)?);
    let senti = sentinet_scores(&mut model, &inputs, &pool, 4)?;
    println!("{:<12} {:>8.3}", "SentiNet", auroc(&senti, &truth)?);
    let freq = FrequencyDetector::fit(&pool, &mut rng)?;
    println!(
        "{:<12} {:>8.3}",
        "Frequency",
        auroc(&freq.scores(&inputs)?, &truth)?
    );
    Ok(())
}
