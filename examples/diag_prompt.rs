//! Scratch diagnostic: prompt-training dynamics on clean models.
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{resnet_mini, ModelSpec};
use bprom_suite::nn::{Layer, Mode, TrainConfig, Trainer};
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn main() {
    let mut rng = Rng::new(7);
    let spec = ModelSpec::new(3, 16, 10);
    let trainer = Trainer::new(TrainConfig::default());
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    let map = LabelMap::identity(10, 10).unwrap();
    for seed in [1u64, 2, 3, 4] {
        let source = SynthDataset::Cifar10.generate(40, 16, seed).unwrap();
        for poisoned_model in [false, true] {
            let train_set = if poisoned_model {
                let kind = bprom_suite::attacks::AttackKind::BadNets;
                let attack = kind.build(16, &mut rng).unwrap();
                let pcfg = bprom_suite::attacks::PoisonConfig::new(0.2, 0.0, 0);
                bprom_suite::attacks::poison_dataset(&source, attack.as_ref(), &pcfg, &mut rng)
                    .unwrap()
                    .dataset
            } else {
                source.clone()
            };
            let mut model = resnet_mini(&spec, &mut rng).unwrap();
            trainer
                .fit(&mut model, &train_set.images, &train_set.labels, &mut rng)
                .unwrap();
            let cfg = PromptTrainConfig {
                epochs: 40,
                ..PromptTrainConfig::default()
            };
            let mut p = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
            train_prompt_backprop(
                &mut model,
                &mut p,
                &t_train.images,
                &t_train.labels,
                &map,
                &cfg,
                &mut rng,
            )
            .unwrap();
            let test_acc =
                prompted_accuracy(&mut model, &p, &t_test.images, &t_test.labels, &map).unwrap();
            // Per-class accuracy + prediction histogram on test.
            let prompted = p.apply_batch(&t_test.images).unwrap();
            let logits = model.forward(&prompted, Mode::Eval).unwrap();
            let k = logits.shape()[1];
            let mut hist = vec![0usize; k];
            let mut per_class_ok = vec![0usize; k];
            let mut per_class_n = vec![0usize; k];
            for i in 0..logits.shape()[0] {
                let row = &logits.data()[i * k..(i + 1) * k];
                let mut b = 0;
                for j in 1..k {
                    if row[j] > row[b] {
                        b = j;
                    }
                }
                hist[b] += 1;
                per_class_n[t_test.labels[i]] += 1;
                if b == t_test.labels[i] {
                    per_class_ok[t_test.labels[i]] += 1;
                }
            }
            let pc: Vec<String> = (0..k)
                .map(|c| {
                    format!(
                        "{:.0}",
                        100.0 * per_class_ok[c] as f32 / per_class_n[c].max(1) as f32
                    )
                })
                .collect();
            println!("seed={seed} poisoned={poisoned_model} test={test_acc:.3} hist={hist:?} per_class%={pc:?}");
        }
    }
}
