//! Scratch diagnostic: inspect the raw meta features of shadow models and
//! suspicious models side by side. The detection question reduces to: do
//! clean and backdoored models separate in this feature space, and do
//! shadows and suspicious models share it?

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::meta_model::{probe_features_whitebox, ProbeSet};
use bprom_suite::bprom::prompting::prompt_shadows;
use bprom_suite::bprom::shadow::ShadowSet;
use bprom_suite::bprom::{build_suspicious_zoo, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{train_prompt_backprop, LabelMap, VisualPrompt};

fn summarize(tag: &str, backdoored: bool, feat: &[f32], k: usize) {
    let q = (feat.len() - 1) / k;
    let acc = feat[feat.len() - 1];
    // Mean probability of the rank-0 (most-predicted) class across probes.
    let mut rank0 = 0.0f32;
    let mut maxp = 0.0f32;
    for row in 0..q {
        rank0 += feat[row * k];
        let m = feat[row * k..(row + 1) * k]
            .iter()
            .copied()
            .fold(0.0f32, f32::max);
        maxp += m;
    }
    println!(
        "{tag:10} bd={backdoored:5} prompted_acc={acc:.2} rank0_mean={:.3} maxp_mean={:.3}",
        rank0 / q as f32,
        maxp / q as f32
    );
}

fn main() {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.test_samples_per_class = 150;
    config.clean_shadows = 6;
    config.backdoor_shadows = 6;
    let k = 10usize;

    let source_test = SynthDataset::Cifar10
        .generate(config.test_samples_per_class, 16, rng.next_u64())
        .unwrap();
    let ds = source_test.subsample(config.ds_fraction, &mut rng).unwrap();
    println!(
        "D_S: {} samples, class counts {:?}",
        ds.len(),
        ds.class_counts()
    );
    let target = SynthDataset::Stl10
        .generate(25, 16, rng.next_u64())
        .unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
    let map = LabelMap::identity(10, 10).unwrap();
    let mut shadows = ShadowSet::train(&config, &ds, &mut rng).unwrap();
    // Shadow accuracies on their own D_S.
    let trainer = bprom_suite::nn::Trainer::default();
    for (i, s) in shadows.shadows.iter_mut().enumerate() {
        let acc = trainer
            .evaluate(&mut s.model, &ds.images, &ds.labels)
            .unwrap();
        println!("shadow {i} bd={} train_acc={acc:.2}", s.backdoored);
    }
    let prompts = prompt_shadows(&config, &mut shadows, &t_train, &map, &mut rng).unwrap();
    let probes = ProbeSet::sample(&t_test, config.probe_count, &mut rng).unwrap();
    for (s, p) in shadows.shadows.iter_mut().zip(&prompts) {
        let feat = probe_features_whitebox(&mut s.model, &p.prompt, &probes).unwrap();
        summarize("shadow", s.backdoored, &feat, k);
    }
    // Suspicious zoo through the white-box prompting path.
    let mut zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    zoo_cfg.samples_per_class = 20;
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    for mut m in zoo {
        let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        train_prompt_backprop(
            &mut m.model,
            &mut prompt,
            &t_train.images,
            &t_train.labels,
            &map,
            &config.prompt,
            &mut rng,
        )
        .unwrap();
        let feat = probe_features_whitebox(&mut m.model, &prompt, &probes).unwrap();
        summarize("suspicious", m.backdoored, &feat, k);
    }
}
