//! Scratch diagnostic: per-attack ACC/ASR across training configs.
//! (Kept out of the test suite; run with `cargo run --release --example diag_attacks`.)

use bprom_suite::attacks::{attack_success_rate, poison_dataset};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::Rng;

fn main() {
    for kind in bprom_suite::attacks::AttackKind::ALL {
        for seed in [10u64, 21] {
            let epochs = 22usize;
            {
                let mut rng = Rng::new(seed);
                let data = SynthDataset::Cifar10.generate(40, 16, seed).unwrap();
                let (train, test) = data.split(0.8, &mut rng).unwrap();
                let attack = kind.build(16, &mut rng).unwrap();
                let cfg = kind.default_config(0);
                let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng).unwrap();
                let spec = ModelSpec::new(3, 16, 10);
                let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
                let trainer = Trainer::new(TrainConfig {
                    epochs,
                    ..TrainConfig::default()
                });
                let report = trainer
                    .fit(
                        &mut model,
                        &poisoned.dataset.images,
                        &poisoned.dataset.labels,
                        &mut rng,
                    )
                    .unwrap();
                let acc = trainer
                    .evaluate(&mut model, &test.images, &test.labels)
                    .unwrap();
                let asr = attack_success_rate(&mut model, attack.as_ref(), &test, &cfg, &mut rng)
                    .unwrap();
                println!(
                "{kind:12} seed={seed:3} epochs={epochs:2} final_loss={:.3} acc={acc:.3} asr={asr:.3}",
                report.epoch_losses.last().unwrap()
            );
            }
        }
    }
}
