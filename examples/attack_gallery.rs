//! Attack gallery: plants every implemented backdoor into the same
//! training set and reports clean accuracy and attack success rate —
//! a miniature of the paper's Tables 14/15.
//!
//! Run with: `cargo run --release --example attack_gallery`

use bprom_suite::attacks::{attack_success_rate, poison_dataset, AttackKind};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(5);
    println!("{:<12} {:>6} {:>6}  notes", "attack", "ACC", "ASR");
    for kind in AttackKind::ALL {
        let data = SynthDataset::Cifar10.generate(40, 16, 9)?;
        let (train, test) = data.split(0.8, &mut rng)?;
        let attack = kind.build(16, &mut rng)?;
        let cfg = kind.default_config(0);
        let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, &mut rng)?;
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, &mut rng)?;
        let trainer = Trainer::new(TrainConfig::default());
        trainer.fit(
            &mut model,
            &poisoned.dataset.images,
            &poisoned.dataset.labels,
            &mut rng,
        )?;
        let acc = trainer.evaluate(&mut model, &test.images, &test.labels)?;
        let asr = attack_success_rate(&mut model, attack.as_ref(), &test, &cfg, &mut rng)?;
        let note = match kind {
            AttackKind::Sig | AttackKind::LabelConsistent => "clean-label",
            AttackKind::AdapBlend | AttackKind::AdapPatch => "adaptive (cover samples)",
            AttackKind::AllToAll => "all-to-all label shift",
            AttackKind::Refool | AttackKind::Bpp | AttackKind::PoisonInk => "feature-space",
            _ => "dirty-label",
        };
        println!("{:<12} {acc:>6.2} {asr:>6.2}  {note}", kind.name());
    }
    Ok(())
}
