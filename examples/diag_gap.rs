//! Scratch diagnostic: the class-subspace-inconsistency gap — prompted
//! accuracy of clean vs backdoored source models (paper Figure 3).
//! Run with `cargo run --release --example diag_gap`.

use bprom_suite::attacks::{poison_dataset, AttackKind};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{resnet_mini, ModelSpec};
use bprom_suite::nn::{Sequential, TrainConfig, Trainer};
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptTrainConfig, VisualPrompt,
};

fn prompt_acc(
    model: &mut Sequential,
    border: usize,
    epochs: usize,
    t_train: &bprom_suite::data::Dataset,
    t_test: &bprom_suite::data::Dataset,
    rng: &mut Rng,
) -> f32 {
    let map = LabelMap::identity(10, 10).unwrap();
    let cfg = PromptTrainConfig {
        epochs,
        ..PromptTrainConfig::default()
    };
    let mut p = VisualPrompt::random(3, 16, border, rng).unwrap();
    train_prompt_backprop(
        model,
        &mut p,
        &t_train.images,
        &t_train.labels,
        &map,
        &cfg,
        rng,
    )
    .unwrap();
    prompted_accuracy(model, &p, &t_test.images, &t_test.labels, &map).unwrap()
}

fn main() {
    let mut rng = Rng::new(7);
    let spec = ModelSpec::new(3, 16, 10);
    let trainer = Trainer::new(TrainConfig::default());
    let target = SynthDataset::Stl10.generate(25, 16, 99).unwrap();
    let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();

    for border in [4usize] {
        for epochs in [40usize] {
            let mut clean_accs = Vec::new();
            let mut bd_accs = Vec::new();
            for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
                let source = SynthDataset::Cifar10.generate(40, 16, seed).unwrap();
                let mut clean = resnet_mini(&spec, &mut rng).unwrap();
                trainer
                    .fit(&mut clean, &source.images, &source.labels, &mut rng)
                    .unwrap();
                clean_accs.push(prompt_acc(
                    &mut clean, border, epochs, &t_train, &t_test, &mut rng,
                ));

                for kind in [
                    AttackKind::BadNets,
                    AttackKind::Blend,
                    AttackKind::WaNet,
                    AttackKind::Trojan,
                ] {
                    let attack = kind.build(16, &mut rng).unwrap();
                    let pcfg = kind.default_config(0);
                    let poisoned =
                        poison_dataset(&source, attack.as_ref(), &pcfg, &mut rng).unwrap();
                    let mut bd = resnet_mini(&spec, &mut rng).unwrap();
                    trainer
                        .fit(
                            &mut bd,
                            &poisoned.dataset.images,
                            &poisoned.dataset.labels,
                            &mut rng,
                        )
                        .unwrap();
                    bd_accs.push(prompt_acc(
                        &mut bd, border, epochs, &t_train, &t_test, &mut rng,
                    ));
                }
            }
            let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
            let by_attack: Vec<f32> = (0..4)
                .map(|a| {
                    mean(
                        &bd_accs
                            .iter()
                            .skip(a)
                            .step_by(4)
                            .copied()
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            println!(
                "clean mean={:.3} | badnets={:.3} blend={:.3} wanet={:.3} trojan={:.3}",
                mean(&clean_accs),
                by_attack[0],
                by_attack[1],
                by_attack[2],
                by_attack[3]
            );
        }
    }
}
