//! Quickstart: train a backdoored classifier, seal it behind the
//! black-box boundary, and let BPROM decide whether it is trojaned.
//!
//! Run with: `cargo run --release --example quickstart`

use bprom_suite::attacks::{attack_success_rate, poison_dataset, AttackKind};
use bprom_suite::bprom::{Bprom, BpromConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::nn::models::{build, Architecture, ModelSpec};
use bprom_suite::nn::{TrainConfig, Trainer};
use bprom_suite::tensor::Rng;
use bprom_suite::vp::QueryOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(2024);

    // 1. An attacker trains an image classifier with a BadNets backdoor.
    println!("[1/3] training a backdoored classifier...");
    let data = SynthDataset::Cifar10.generate(20, 16, 1)?;
    let (train, test) = data.split(0.8, &mut rng)?;
    let attack = AttackKind::BadNets.build(16, &mut rng)?;
    let poison_cfg = AttackKind::BadNets.default_config(0);
    let poisoned = poison_dataset(&train, attack.as_ref(), &poison_cfg, &mut rng)?;
    let spec = ModelSpec::new(3, 16, 10);
    let mut model = build(Architecture::ResNetMini, &spec, &mut rng)?;
    let trainer = Trainer::new(TrainConfig::default());
    trainer.fit(
        &mut model,
        &poisoned.dataset.images,
        &poisoned.dataset.labels,
        &mut rng,
    )?;
    let acc = trainer.evaluate(&mut model, &test.images, &test.labels)?;
    let asr = attack_success_rate(&mut model, attack.as_ref(), &test, &poison_cfg, &mut rng)?;
    println!("      clean accuracy {acc:.2}, attack success rate {asr:.2}");

    // 2. The defender fits a BPROM detector: shadow models on a small
    //    reserved clean set, visual prompts, a random-forest meta model.
    println!("[2/3] fitting the BPROM detector (shadow models + prompting)...");
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.clean_shadows = 6;
    config.backdoor_shadows = 6;
    config.prompt.cmaes_generations = 25;
    let detector = Bprom::fit(&config, &mut rng)?;

    // 3. Inspection happens strictly through black-box queries; the
    //    verdict reports the exact oracle budget it consumed.
    println!("[3/3] inspecting the suspicious model through black-box queries...");
    let oracle = QueryOracle::new(model, 10);
    let verdict = detector.inspect(&oracle, &mut rng)?;
    println!("      verdict: {verdict}");
    Ok(())
}
