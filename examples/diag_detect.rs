//! Scratch diagnostic: end-to-end BPROM detection AUROC on a few attacks.
//! Run with `cargo run --release --example diag_detect`.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::{build_suspicious_zoo, evaluate_detector, Bprom, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::tensor::Rng;
use std::time::Instant;

fn main() {
    let mut rng = Rng::new(42);
    let config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    let t0 = Instant::now();
    let detector = Bprom::fit(&config, &mut rng).unwrap();
    println!("fit: {:.1}s", t0.elapsed().as_secs_f32());
    for attack in [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::Trojan,
        AttackKind::WaNet,
    ] {
        let t1 = Instant::now();
        let zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, attack);
        let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
        let accs: Vec<f32> = zoo.iter().map(|m| m.accuracy).collect();
        let asrs: Vec<f32> = zoo.iter().filter(|m| m.backdoored).map(|m| m.asr).collect();
        let report = evaluate_detector(&detector, zoo, &mut rng).unwrap();
        println!(
            "{attack:10} auroc={:.3} f1={:.3} scores={:?} mean_acc={:.2} mean_asr={:.2} ({:.0}s)",
            report.auroc,
            report.f1,
            report
                .scores
                .iter()
                .map(|s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            accs.iter().sum::<f32>() / accs.len() as f32,
            asrs.iter().sum::<f32>() / asrs.len().max(1) as f32,
            t1.elapsed().as_secs_f32(),
        );
    }
}
