//! Scratch diagnostic: separate the failure modes of detection —
//! (a) weak shadow models from tiny D_S, (b) CMA-ES vs backprop prompt
//! distribution shift. Extracts suspicious-model features through BOTH
//! paths and scores them with the same meta-classifier.

use bprom_suite::attacks::AttackKind;
use bprom_suite::bprom::meta_model::probe_features_whitebox;
use bprom_suite::bprom::{build_suspicious_zoo, Bprom, BpromConfig, ZooConfig};
use bprom_suite::data::SynthDataset;
use bprom_suite::metrics::auroc;
use bprom_suite::tensor::Rng;
use bprom_suite::vp::{train_prompt_backprop, VisualPrompt};

fn main() {
    let mut rng = Rng::new(42);
    let mut config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
    config.test_samples_per_class = 150; // D_S at 10% -> 15/class
    let detector = Bprom::fit(&config, &mut rng).unwrap();

    let zoo_cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
    let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).unwrap();
    let mut white_scores = Vec::new();
    let mut labels = Vec::new();
    for mut m in zoo {
        // WHITE-BOX CHEAT PATH: backprop prompt on the suspicious model,
        // then probe features -> meta score. Upper bound on detectability.
        let mut prompt =
            VisualPrompt::random(3, config.image_size, config.prompt_border, &mut rng).unwrap();
        train_prompt_backprop(
            &mut m.model,
            &mut prompt,
            &detector.target_train().images,
            &detector.target_train().labels,
            detector.label_map(),
            &config.prompt,
            &mut rng,
        )
        .unwrap();
        let feat = probe_features_whitebox(&mut m.model, &prompt, detector.probes()).unwrap();
        white_scores.push(detector.meta().predict_proba(&feat).unwrap());
        labels.push(m.backdoored);
    }
    println!(
        "whitebox-path auroc={:.3} scores={:?}",
        auroc(&white_scores, &labels).unwrap(),
        white_scores
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
