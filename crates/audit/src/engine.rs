//! The fleet audit engine: a queue of suspicious models, audited
//! concurrently against registry-shared detectors, rolled up into one
//! incident report.

use crate::registry::{DetectorSpec, RegistryStats, ShadowZooRegistry};
use bprom::{model_fingerprint, Bprom, Result, SuspiciousModel, Verdict};
use bprom_nn::Sequential;
use bprom_qcache::{CacheConfig, CachingOracle};
use bprom_tensor::Rng;
use bprom_verdict::{render_fleet, sink, AuditRecord, IncidentReport, Mode, RulePolicy};
use bprom_vp::QueryOracle;
use std::collections::HashMap;
use std::sync::Arc;

/// One enqueued audit: a suspicious model, the detector spec to audit it
/// with, and the seed of the inspection RNG.
///
/// The `inspect_seed` is per-request so a fleet audit is reproducible
/// request-by-request: the same (model, spec, seed) triple yields the
/// same verdict whether it runs alone or in the middle of a fleet.
pub struct AuditRequest {
    /// Operator-facing name of this request (shown in logs; the incident
    /// report keys on the model fingerprint, not on this label).
    pub label: String,
    /// The suspicious model, sealed behind the query boundary at audit
    /// time.
    pub model: Sequential,
    /// Class count of the model's output.
    pub num_classes: usize,
    /// Ground truth, when the caller knows it (experiment zoos do;
    /// production audits pass `None`).
    pub truth: Option<bool>,
    /// Which detector to audit with (registry coordinate).
    pub spec: DetectorSpec,
    /// Seed of the fresh RNG this inspection consumes.
    pub inspect_seed: u64,
}

impl std::fmt::Debug for AuditRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditRequest")
            .field("label", &self.label)
            .field("num_classes", &self.num_classes)
            .field("truth", &self.truth)
            .field("inspect_seed", &self.inspect_seed)
            .finish()
    }
}

impl AuditRequest {
    /// A request with unknown ground truth.
    pub fn new(
        label: impl Into<String>,
        model: Sequential,
        num_classes: usize,
        spec: DetectorSpec,
        inspect_seed: u64,
    ) -> Self {
        AuditRequest {
            label: label.into(),
            model,
            num_classes,
            truth: None,
            spec,
            inspect_seed,
        }
    }

    /// A request built from an experiment zoo entry, carrying its ground
    /// truth for downstream metric computation.
    pub fn from_suspicious(
        label: impl Into<String>,
        suspicious: SuspiciousModel,
        num_classes: usize,
        spec: DetectorSpec,
        inspect_seed: u64,
    ) -> Self {
        AuditRequest {
            label: label.into(),
            model: suspicious.model,
            num_classes,
            truth: Some(suspicious.backdoored),
            spec,
            inspect_seed,
        }
    }
}

/// The result of one audit, in queue order inside [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// The request's label.
    pub label: String,
    /// Weight fingerprint of the audited model.
    pub model: String,
    /// Content digest of the detector spec this audit used.
    pub detector: u64,
    /// Ground truth carried from the request, if known.
    pub truth: Option<bool>,
    /// The full verdict (including wall-clock budget).
    pub verdict: Verdict,
    /// The explainable audit record (fingerprint, wall-clock-free
    /// signals, findings) the incident report is assembled from.
    pub record: AuditRecord,
}

impl AuditOutcome {
    /// Fraction of this audit's logical query rows the content-addressed
    /// cache served without provider spend (0 for uncached audits).
    pub fn cache_hit_rate(&self) -> f32 {
        let total = self.record.signals.cache_hits + self.record.signals.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.record.signals.cache_hits as f32 / total as f32
        }
    }
}

/// Everything one [`AuditEngine::run`] concluded: per-audit outcomes in
/// queue order, the correlated incident report, and the registry's
/// amortization tallies.
#[derive(Debug)]
pub struct FleetReport {
    /// The engine's run label.
    pub label: String,
    /// Per-request outcomes, in queue order.
    pub outcomes: Vec<AuditOutcome>,
    /// The machine-readable incident report (fingerprint-correlated,
    /// `incident.json`-serializable).
    pub incident: IncidentReport,
    /// How the shadow-zoo registry served this fleet.
    pub registry: RegistryStats,
}

impl FleetReport {
    /// Number of audits in this report.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the fleet was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Aggregate cache hit rate over every audit in the fleet.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self
            .outcomes
            .iter()
            .map(|o| o.record.signals.cache_hits)
            .sum();
        let misses: u64 = self
            .outcomes
            .iter()
            .map(|o| o.record.signals.cache_misses)
            .sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Human-readable fleet summary (one header line plus one line per
    /// model incident).
    pub fn render(&self) -> String {
        render_fleet(&self.incident)
    }
}

struct Job {
    queue_index: usize,
    request: AuditRequest,
    fingerprint: String,
}

/// A long-running audit engine over a [`ShadowZooRegistry`].
///
/// [`run`] processes a queue of [`AuditRequest`]s in three phases:
///
/// 1. **registry** — every distinct detector spec is resolved once, in
///    first-appearance order, *before* any audit runs. Shadow training
///    is paid here (or not at all, when the registry already holds the
///    entry) and shared by every audit that names the spec.
/// 2. **inspect** — requests are grouped by model weight fingerprint and
///    the groups run concurrently on the `bprom-par` pool. Audits of the
///    *same* model run sequentially inside their group, so enabling
///    [`share_model_caches`] keeps cache tallies schedule-independent.
///    Each audit consumes a fresh `Rng::new(inspect_seed)`, making every
///    verdict independent of fleet composition and thread count.
/// 3. **roll-up** — outcomes are restored to queue order, handed to the
///    thread-local verdict sink, and correlated into one
///    [`IncidentReport`] (repeat audits of a fingerprint escalate).
///
/// **Equivalence contract.** With cache sharing off (the default), a
/// fleet audit of N requests is *byte-identical* — signals, findings,
/// incident JSON — to N independent single-model runs of the same
/// (model, spec, seed) triples, at any `BPROM_THREADS` value.
///
/// [`run`]: AuditEngine::run
/// [`share_model_caches`]: AuditEngine::share_model_caches
#[derive(Debug)]
pub struct AuditEngine {
    registry: ShadowZooRegistry,
    label: String,
    policy: RulePolicy,
    mode: Mode,
    share_model_caches: bool,
}

impl AuditEngine {
    /// An engine over `registry`, labelled `label` in incident reports.
    /// Defaults: default rule policy, strict mode, no cache sharing.
    pub fn new(label: impl Into<String>, registry: ShadowZooRegistry) -> Self {
        AuditEngine {
            registry,
            label: label.into(),
            policy: RulePolicy::default(),
            mode: Mode::Strict,
            share_model_caches: false,
        }
    }

    /// Replaces the rule policy findings are evaluated under.
    pub fn with_policy(mut self, policy: RulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the response mode of the incident report.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// When enabled, sequential audits of the same model fingerprint
    /// reuse one caching oracle (rebuilt only if the class count or
    /// cache policy changes between requests), so a re-audit replays its
    /// query stream against a warm cache instead of paying the provider
    /// again. Verdict scores are unchanged — only the cache tallies in
    /// the signals differ from independent runs.
    pub fn share_model_caches(mut self, share: bool) -> Self {
        self.share_model_caches = share;
        self
    }

    /// The registry backing this engine.
    pub fn registry(&self) -> &ShadowZooRegistry {
        &self.registry
    }

    /// Audits the queue with the plain inspection path
    /// ([`Bprom::inspect`] against the sealed, cached oracle).
    ///
    /// # Errors
    ///
    /// Propagates fit, restore, and inspection failures.
    pub fn run(&self, queue: Vec<AuditRequest>) -> Result<FleetReport> {
        self.run_with(queue, |detector, oracle, rng| detector.inspect(oracle, rng))
    }

    /// Variant of [`run`] that delegates each inspection to a
    /// caller-supplied closure. The closure receives the shared detector,
    /// the sealed caching oracle, and the request's freshly seeded RNG;
    /// hostile-condition tests stack fault-injection and retry
    /// decorators on the oracle before inspecting (see `bprom-faults`).
    ///
    /// [`run`]: AuditEngine::run
    ///
    /// # Errors
    ///
    /// Propagates fit, restore, and inspection failures.
    pub fn run_with<F>(&self, queue: Vec<AuditRequest>, inspect: F) -> Result<FleetReport>
    where
        F: Fn(&Bprom, &CachingOracle<QueryOracle>, &mut Rng) -> Result<Verdict> + Sync,
    {
        bprom_obs::span!("fleet_audit");
        // Phase 1: resolve every distinct detector spec once, in
        // first-appearance order, before any audit runs.
        let mut detectors: HashMap<u64, Arc<Bprom>> = HashMap::new();
        {
            bprom_obs::span!("registry_phase");
            // One lookup per request (not per distinct spec): repeats
            // are O(1) memory hits, and the registry's stats then tally
            // exactly how much fitting the fleet amortized.
            for request in &queue {
                let detector = self.registry.detector(&request.spec)?;
                detectors.insert(request.spec.digest(), detector);
            }
        }
        // Phase 2: group by model fingerprint (queue order preserved
        // within and across groups) and audit the groups concurrently.
        let mut order: Vec<String> = Vec::new();
        let mut by_model: HashMap<String, Vec<Job>> = HashMap::new();
        for (queue_index, request) in queue.into_iter().enumerate() {
            let fingerprint = model_fingerprint(&request.model);
            if !by_model.contains_key(&fingerprint) {
                order.push(fingerprint.clone());
            }
            by_model.entry(fingerprint.clone()).or_default().push(Job {
                queue_index,
                request,
                fingerprint,
            });
        }
        let groups: Vec<Vec<Job>> = order
            .iter()
            .map(|fp| by_model.remove(fp).expect("every fingerprint grouped"))
            .collect();
        bprom_obs::counter_add("fleet.models", groups.len() as u64);
        let results: Vec<Result<Vec<(usize, AuditOutcome)>>> = {
            bprom_obs::span!("inspect_phase");
            bprom_par::par_map(groups, |group| self.run_group(group, &detectors, &inspect))
        };
        let mut indexed: Vec<(usize, AuditOutcome)> = Vec::new();
        for group in results {
            indexed.extend(group?);
        }
        indexed.sort_by_key(|&(queue_index, _)| queue_index);
        let outcomes: Vec<AuditOutcome> = indexed.into_iter().map(|(_, o)| o).collect();
        // Phase 3: roll-up, on the calling thread in queue order, so the
        // thread-local sink and the incident report see the same stream
        // a sequential run would produce.
        let records: Vec<AuditRecord> = outcomes.iter().map(|o| o.record.clone()).collect();
        for record in &records {
            sink::record(record.clone());
        }
        let incident = IncidentReport::assemble(&self.label, &self.policy, self.mode, &records);
        bprom_obs::log_event(
            "fleet.report",
            [
                ("label", self.label.as_str().into()),
                ("audits", (records.len() as u64).into()),
                ("models", incident.incidents.len().into()),
                ("flagged", incident.flagged.into()),
                ("quarantined", incident.quarantined.into()),
            ],
        );
        Ok(FleetReport {
            label: self.label.clone(),
            outcomes,
            incident,
            registry: self.registry.stats(),
        })
    }

    /// Audits one model group sequentially. Called from pool workers.
    fn run_group<F>(
        &self,
        group: Vec<Job>,
        detectors: &HashMap<u64, Arc<Bprom>>,
        inspect: &F,
    ) -> Result<Vec<(usize, AuditOutcome)>>
    where
        F: Fn(&Bprom, &CachingOracle<QueryOracle>, &mut Rng) -> Result<Verdict> + Sync,
    {
        let mut out = Vec::with_capacity(group.len());
        // The warm oracle carried across audits of this model when cache
        // sharing is on, tagged with the (class count, cache policy) it
        // was sealed under.
        let mut sealed: Option<(usize, CacheConfig, CachingOracle<QueryOracle>)> = None;
        for job in group {
            let Job {
                queue_index,
                request,
                fingerprint,
            } = job;
            let AuditRequest {
                label,
                model,
                num_classes,
                truth,
                spec,
                inspect_seed,
            } = request;
            let digest = spec.digest();
            let detector = detectors
                .get(&digest)
                .expect("registry phase resolved every spec");
            let cache = detector.config().cache;
            let reuse = self.share_model_caches
                && sealed.as_ref().is_some_and(|&(classes, sealed_cache, _)| {
                    classes == num_classes && sealed_cache == cache
                });
            if !reuse {
                sealed = Some((
                    num_classes,
                    cache,
                    CachingOracle::new(QueryOracle::new(model, num_classes), cache),
                ));
            }
            let (_, _, oracle) = sealed.as_ref().expect("oracle sealed above");
            let verdict = {
                bprom_obs::span!("audit");
                // Per-request seed: the verdict is a function of (model,
                // spec, seed) only, never of fleet position or schedule.
                inspect(detector, oracle, &mut Rng::new(inspect_seed))?
            };
            let record = AuditRecord {
                model: fingerprint.clone(),
                regime: detector.config().regime.as_wire(),
                // The fleet engine audits deployed downstream models; the
                // backbone scenario routes through evaluate_oracle_zoo.
                scenario: "downstream".to_string(),
                signals: verdict.signals(),
                findings: verdict.findings(&self.policy),
            };
            bprom_obs::counter_add("fleet.audits", 1);
            bprom_obs::log_event(
                "fleet.audit",
                [
                    ("label", label.as_str().into()),
                    ("model", fingerprint.as_str().into()),
                    ("score", f64::from(verdict.score).into()),
                    ("findings", record.findings.len().into()),
                ],
            );
            out.push((
                queue_index,
                AuditOutcome {
                    label,
                    model: fingerprint,
                    detector: digest,
                    truth,
                    verdict,
                    record,
                },
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom::BpromConfig;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::PromptTrainConfig;

    fn tiny_config() -> BpromConfig {
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 2,
            cmaes_generations: 3,
            cmaes_population: 4,
            ..PromptTrainConfig::default()
        };
        config
    }

    /// Deterministic training: the same seed yields the same weights, so
    /// two calls stand in for two uploads of the same model artifact.
    fn trained_model(config: &BpromConfig, seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        let spec = ModelSpec::new(3, config.image_size, 10);
        let source = SynthDataset::Cifar10
            .generate(10, config.image_size, seed)
            .unwrap();
        let mut model = build(config.architecture, &spec, &mut rng).unwrap();
        Trainer::new(config.train)
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        model
    }

    #[test]
    fn fleet_run_shares_fits_and_correlates_repeat_audits() {
        let config = tiny_config();
        let spec = DetectorSpec::new(config.clone(), 7);
        let engine =
            AuditEngine::new("unit-fleet", ShadowZooRegistry::in_memory()).share_model_caches(true);
        // Three audits over two distinct models; model A is uploaded
        // (and audited) twice with the same inspection seed.
        let queue = vec![
            AuditRequest::new("a-first", trained_model(&config, 5), 10, spec.clone(), 11),
            AuditRequest::new("b-only", trained_model(&config, 6), 10, spec.clone(), 12),
            AuditRequest::new("a-again", trained_model(&config, 5), 10, spec.clone(), 11),
        ];
        let fleet = engine.run(queue).unwrap();

        // Outcomes stay in queue order; one fit served all three audits.
        let labels: Vec<&str> = fleet.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["a-first", "b-only", "a-again"]);
        assert_eq!(fleet.registry.builds, 1);
        assert_eq!(fleet.registry.mem_hits, 2);
        assert_eq!(fleet.outcomes[0].model, fleet.outcomes[2].model);
        assert_ne!(fleet.outcomes[0].model, fleet.outcomes[1].model);

        // The incident report correlates the repeat audits of model A.
        assert_eq!(fleet.incident.audits, 3);
        assert_eq!(fleet.incident.incidents.len(), 2);
        assert_eq!(fleet.incident.incidents[0].model, fleet.outcomes[0].model);
        assert_eq!(fleet.incident.incidents[0].audits, 2);
        assert_eq!(fleet.incident.incidents[1].audits, 1);

        // Cache sharing: the re-audit replays an identical query stream
        // against the warm cache, so nothing reaches the provider — and
        // the verdict itself is unchanged.
        let first = &fleet.outcomes[0].record.signals;
        let again = &fleet.outcomes[2].record.signals;
        assert_eq!(again.cache_misses, 0, "warm cache serves everything");
        assert!(again.cache_hits > 0);
        assert_eq!(first.score, again.score);
        assert_eq!(first.queries, again.queries, "logical budget unchanged");
        let mut first_no_cache = *first;
        let mut again_no_cache = *again;
        for signals in [&mut first_no_cache, &mut again_no_cache] {
            signals.cache_hits = 0;
            signals.cache_misses = 0;
            signals.cache_evictions = 0;
        }
        assert_eq!(
            first_no_cache, again_no_cache,
            "only cache tallies may differ under sharing"
        );

        // Rendering mentions the run label and both models.
        let text = fleet.render();
        assert!(text.contains("unit-fleet"), "{text}");
        assert!(text.contains(&fleet.outcomes[0].model), "{text}");
        assert!(text.contains(&fleet.outcomes[1].model), "{text}");
    }
}
