//! Fleet-scale audits for the BPROM detector.
//!
//! The paper evaluates BPROM one suspicious model at a time, but the
//! MLaaS threat model it targets is a *fleet* problem: a marketplace
//! operator holds a queue of uploaded models and must audit all of them,
//! continuously, at a bounded query and compute budget. The expensive
//! half of the pipeline — shadow training, shadow prompting, fitting the
//! meta forest — depends only on the detector configuration, never on
//! the audited model, so a fleet should pay it once per configuration,
//! not once per audit.
//!
//! This crate splits the pipeline accordingly:
//!
//! * [`ShadowZooRegistry`] — a content-addressed store of fitted
//!   detectors, keyed on a digest of the full `(config, fit_seed)` spec
//!   (displayed as the operator's (dataset, arch, attack, seed) tuple).
//!   Entries are shared in memory as `Arc`s and optionally persisted to
//!   a `bprom-ckpt` snapshot store; damaged snapshots fall back to a
//!   rebuild via typed errors, never a panic.
//! * [`AuditEngine`] — drains a queue of [`AuditRequest`]s: registry
//!   phase (each distinct spec resolved once), inspect phase (groups of
//!   same-fingerprint requests audited concurrently on the `bprom-par`
//!   pool), roll-up phase (queue-ordered outcomes correlated into one
//!   `incident.json`-ready report through `bprom-verdict`).
//!
//! The correctness bar is *fleet equivalence*: with cache sharing off, a
//! fleet audit of N requests produces byte-identical verdicts, findings,
//! and incident reports to N independent single-model runs, at any
//! `BPROM_THREADS` value. The workspace's `fleet_equivalence` test suite
//! proves this over thread-count × cache-mode × oracle-hostility sweeps.

mod engine;
mod registry;

pub use engine::{AuditEngine, AuditOutcome, AuditRequest, FleetReport};
pub use registry::{DetectorSpec, RegistryKey, RegistryStats, ShadowZooRegistry, REGISTRY_MEM_ENV};
