//! The content-addressed shadow-zoo registry.
//!
//! Fitting a BPROM detector — shadow training, shadow prompting, meta
//! forest — is the expensive half of the pipeline, and it depends only on
//! the detector configuration and the fit seed, never on the suspicious
//! model. A fleet audit therefore pays each fit **once**: detectors are
//! registered under a content digest of `(config, fit_seed)`, held in
//! memory as shared [`Arc`]s, and optionally persisted to a
//! [`SnapshotStore`] so later processes restore the asset instead of
//! re-training shadows.

use bprom::{Bprom, BpromConfig, Result};
use bprom_attacks::AttackKind;
use bprom_ckpt::{Decoder, Encoder, SnapshotStore};
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_qcache::bytes_digest;
use bprom_tensor::Rng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything a detector fit depends on: the full configuration plus the
/// seed of the RNG the fit consumes. Two specs with equal [`digest`]s
/// produce bit-identical detectors, so the registry can share one fit
/// across every audit that names the same spec.
///
/// [`digest`]: DetectorSpec::digest
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSpec {
    /// Detector configuration (covers dataset pair, architecture, shadow
    /// attack, cache policy, rule thresholds — every field).
    pub config: BpromConfig,
    /// Seed of the fresh RNG handed to [`Bprom::fit`].
    pub fit_seed: u64,
}

impl DetectorSpec {
    /// A spec for fitting `config` from `Rng::new(fit_seed)`.
    pub fn new(config: BpromConfig, fit_seed: u64) -> Self {
        DetectorSpec { config, fit_seed }
    }

    /// Content digest of this spec. Computed over the full `Debug` form
    /// of the configuration plus the fit seed, so *any* configuration
    /// difference — not just the headline (dataset, arch, attack, seed)
    /// tuple — addresses a distinct registry entry.
    pub fn digest(&self) -> u64 {
        let identity = format!("fit_seed={};{:?}", self.fit_seed, self.config);
        bytes_digest(identity.as_bytes())
    }

    /// Name of this spec's entry in the backing snapshot store.
    pub fn snapshot_name(&self) -> String {
        format!("det-{:016x}", self.digest())
    }

    /// The human-facing identity of this spec: the (dataset, arch,
    /// attack, seed) tuple fleet operators key their zoo on.
    pub fn key(&self) -> RegistryKey {
        RegistryKey {
            dataset: self.config.source_dataset,
            arch: self.config.architecture,
            attack: self.config.shadow_attack,
            seed: self.fit_seed,
        }
    }
}

/// The display identity of a registry entry — the coordinates an
/// operator thinks in. Collision safety does **not** rest on this tuple:
/// the content digest covers the whole configuration (see
/// [`DetectorSpec::digest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegistryKey {
    /// Source dataset the shadow zoo emulates.
    pub dataset: SynthDataset,
    /// Shadow-model architecture.
    pub arch: Architecture,
    /// Attack planted in the backdoored shadows.
    pub attack: AttackKind,
    /// Fit seed.
    pub seed: u64,
}

impl std::fmt::Display for RegistryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}/{:?}/{:?}/seed{}",
            self.dataset, self.arch, self.attack, self.seed
        )
    }
}

/// Environment variable bounding the registry's in-memory detector map:
/// `BPROM_REGISTRY_MEM=<n>` keeps at most `n` detectors resident,
/// evicting the least recently used. Disk snapshots are untouched, so an
/// evicted entry comes back as a disk hit, not a rebuild — the bound
/// trades lookup cost, never results.
pub const REGISTRY_MEM_ENV: &str = "BPROM_REGISTRY_MEM";

/// How the registry served its lookups so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Detectors fitted from scratch (the expensive path).
    pub builds: u64,
    /// Lookups served by an in-memory entry.
    pub mem_hits: u64,
    /// Lookups served by restoring a persisted snapshot.
    pub disk_hits: u64,
    /// Persisted entries that failed validation (truncated, corrupt,
    /// stale codec, foreign config) and were rebuilt from scratch.
    pub rebuilds: u64,
    /// In-memory entries evicted by the [`REGISTRY_MEM_ENV`] /
    /// [`ShadowZooRegistry::with_mem_cap`] bound.
    pub evictions: u64,
}

impl RegistryStats {
    /// Lookups that did not pay a fit.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// A content-addressed store of fitted detectors, shared across a fleet
/// of concurrent audits.
///
/// Lookups go memory → disk → build. The entry lock is held across a
/// build, so concurrent audits naming the same spec serialize on one fit
/// instead of racing to duplicate it; every caller then shares the same
/// [`Arc`]. A damaged snapshot (truncated, checksum-flipped, written by
/// a different codec or configuration) is *never* fatal: the typed
/// [`bprom_ckpt::CkptError`] / [`bprom::BpromError::Ckpt`] is absorbed,
/// counted as a rebuild, and the detector is re-fitted from scratch —
/// registry corruption can cost time, not correctness.
///
/// The resident set can be bounded ([`REGISTRY_MEM_ENV`] or
/// [`ShadowZooRegistry::with_mem_cap`]): past the cap the least recently
/// used detector is dropped from memory (its disk snapshot, if any,
/// stays). Eviction moves cost between the stats columns — an evicted
/// entry returns as a disk hit or a rebuild — but every path still
/// yields a detector bit-identical to a direct fit, so fleet results do
/// not depend on the cap.
pub struct ShadowZooRegistry {
    store: Option<SnapshotStore>,
    entries: Mutex<MemEntries>,
    /// Maximum resident detectors (LRU eviction past it); `None` keeps
    /// everything. Seeded from [`REGISTRY_MEM_ENV`] at construction.
    mem_cap: Option<usize>,
    builds: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    rebuilds: AtomicU64,
    evictions: AtomicU64,
}

/// The in-memory detector map plus the recency counter driving LRU
/// eviction. One struct under one lock: recency updates are atomic with
/// the lookups they describe.
#[derive(Default)]
struct MemEntries {
    /// digest → (detector, last-touched tick).
    map: HashMap<u64, (Arc<Bprom>, u64)>,
    /// Monotonic access counter (deterministic, no wall-clock).
    tick: u64,
}

impl MemEntries {
    /// Marks `digest` used now and returns its entry, if resident.
    fn touch(&mut self, digest: u64) -> Option<Arc<Bprom>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&digest).map(|(shared, t)| {
            *t = tick;
            Arc::clone(shared)
        })
    }

    /// Inserts `shared` as the most recently used entry, evicting the
    /// least recently used ones past `cap`. Returns how many entries
    /// were evicted.
    fn insert(&mut self, digest: u64, shared: &Arc<Bprom>, cap: Option<usize>) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(digest, (Arc::clone(shared), tick));
        let mut evicted = 0;
        if let Some(cap) = cap {
            while self.map.len() > cap {
                let Some(oldest) = self
                    .map
                    .iter()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(&digest, _)| digest)
                else {
                    break;
                };
                self.map.remove(&oldest);
                evicted += 1;
            }
        }
        evicted
    }
}

fn mem_cap_from_env() -> Option<usize> {
    // Lenient like the other BPROM_* knobs: unset or unparsable means
    // unbounded. A cap of 0 is clamped to 1 so the entry just built is
    // still the one returned (and shared by concurrent callers).
    std::env::var(REGISTRY_MEM_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.max(1))
}

impl std::fmt::Debug for ShadowZooRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowZooRegistry")
            .field("dir", &self.store.as_ref().map(SnapshotStore::dir))
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShadowZooRegistry {
    /// A registry with no persistence: entries live (and die) with the
    /// process.
    pub fn in_memory() -> Self {
        ShadowZooRegistry {
            store: None,
            entries: Mutex::new(MemEntries::default()),
            mem_cap: mem_cap_from_env(),
            builds: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Bounds the in-memory detector map to `n` entries (LRU eviction),
    /// overriding any [`REGISTRY_MEM_ENV`] setting. `0` is clamped to 1.
    #[must_use]
    pub fn with_mem_cap(mut self, n: usize) -> Self {
        self.mem_cap = Some(n.max(1));
        self
    }

    /// A registry backed by a snapshot directory: every build is
    /// persisted, and a fresh process restores entries instead of
    /// re-fitting them.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let store = SnapshotStore::open(dir)?;
        Ok(ShadowZooRegistry {
            store: Some(store),
            ..Self::in_memory()
        })
    }

    /// The snapshot directory backing this registry, if persistent.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(SnapshotStore::dir)
    }

    /// Number of detectors currently resident in memory.
    pub fn len(&self) -> usize {
        self.lock_entries().map.len()
    }

    /// Whether no detector is resident yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup tallies so far.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            builds: self.builds.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn lock_entries(&self) -> std::sync::MutexGuard<'_, MemEntries> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn restore_entry(config: &BpromConfig, bytes: &[u8]) -> Result<Bprom> {
        let mut dec = Decoder::new(bytes);
        let detector = Bprom::restore(config, &mut dec)?;
        dec.finish()?;
        Ok(detector)
    }

    /// The fitted detector for `spec`: an in-memory entry if resident, a
    /// restored snapshot if persisted, a fresh [`Bprom::fit`] from
    /// `Rng::new(spec.fit_seed)` otherwise (recorded under a
    /// `registry_build` span and persisted when the registry has a
    /// store). Every path returns a detector bit-identical to a direct
    /// fit of the same spec.
    ///
    /// # Errors
    ///
    /// Propagates fit failures and snapshot-store I/O errors. Damaged
    /// persisted entries are *not* errors — they fall back to a rebuild.
    pub fn detector(&self, spec: &DetectorSpec) -> Result<Arc<Bprom>> {
        let digest = spec.digest();
        let mut entries = self.lock_entries();
        if let Some(found) = entries.touch(digest) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        let name = spec.snapshot_name();
        if let Some(store) = &self.store {
            let outcome = match store.load(&name) {
                Ok(Some(bytes)) => Some(Self::restore_entry(&spec.config, &bytes)),
                Ok(None) => None,
                Err(e) => Some(Err(e.into())),
            };
            match outcome {
                Some(Ok(detector)) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    bprom_obs::log_event(
                        "registry.restored",
                        [("key", spec.key().to_string().as_str().into())],
                    );
                    let shared = Arc::new(detector);
                    let evicted = entries.insert(digest, &shared, self.mem_cap);
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                    return Ok(shared);
                }
                Some(Err(err)) => {
                    // Typed corruption/foreign-payload error: absorb it
                    // and pay the fit again.
                    self.rebuilds.fetch_add(1, Ordering::Relaxed);
                    bprom_obs::log_event(
                        "registry.rebuild",
                        [
                            ("key", spec.key().to_string().as_str().into()),
                            ("reason", err.to_string().as_str().into()),
                        ],
                    );
                }
                None => {}
            }
        }
        let built = {
            bprom_obs::span!("registry_build");
            bprom_obs::log_event(
                "registry.build",
                [("key", spec.key().to_string().as_str().into())],
            );
            Bprom::fit(&spec.config, &mut Rng::new(spec.fit_seed))?
        };
        self.builds.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            let mut enc = Encoder::new();
            built.persist(&mut enc);
            store.save(&name, &enc.into_bytes())?;
        }
        let shared = Arc::new(built);
        let evicted = entries.insert(digest, &shared, self.mem_cap);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::TrainConfig;
    use bprom_vp::PromptTrainConfig;

    fn tiny_config() -> BpromConfig {
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 2,
            cmaes_generations: 3,
            cmaes_population: 4,
            ..PromptTrainConfig::default()
        };
        config
    }

    #[test]
    fn digest_covers_the_whole_config_and_seed() {
        let spec = DetectorSpec::new(tiny_config(), 7);
        assert_eq!(spec.digest(), spec.digest(), "digest is pure");
        let reseeded = DetectorSpec::new(tiny_config(), 8);
        assert_ne!(spec.digest(), reseeded.digest());
        // A field *outside* the (dataset, arch, attack, seed) display
        // tuple still separates entries: content addressing covers the
        // full configuration.
        let mut off_tuple = tiny_config();
        off_tuple.probe_count += 1;
        let varied = DetectorSpec::new(off_tuple, 7);
        assert_eq!(spec.key(), varied.key(), "same display identity");
        assert_ne!(spec.digest(), varied.digest(), "different content");
        assert_eq!(spec.snapshot_name(), format!("det-{:016x}", spec.digest()));
    }

    #[test]
    fn key_renders_the_operator_tuple() {
        let spec = DetectorSpec::new(tiny_config(), 42);
        let text = spec.key().to_string();
        assert!(text.contains("seed42"), "{text}");
        assert!(text.contains("Cifar10"), "{text}");
    }

    #[test]
    fn memory_entries_are_shared_not_refitted() {
        let registry = ShadowZooRegistry::in_memory();
        let spec = DetectorSpec::new(tiny_config(), 7);
        let first = registry.detector(&spec).unwrap();
        let second = registry.detector(&spec).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "one fit, shared by all");
        let stats = registry.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn bounded_memory_evicts_lru_and_falls_back_to_disk() {
        let dir = std::env::temp_dir().join(format!("bprom-audit-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ShadowZooRegistry::open(&dir).unwrap().with_mem_cap(1);
        let spec_a = DetectorSpec::new(tiny_config(), 7);
        let spec_b = DetectorSpec::new(tiny_config(), 8);
        let a = registry.detector(&spec_a).unwrap();
        registry.detector(&spec_b).unwrap(); // evicts A from memory
        assert_eq!(registry.len(), 1, "cap holds");
        assert_eq!(registry.stats().evictions, 1);
        // A's snapshot is untouched: the re-request restores from disk
        // instead of paying a third fit, and the restored detector is
        // the same asset (identical persisted bytes).
        let a_again = registry.detector(&spec_a).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(stats.evictions, 2, "the re-insert evicted B");
        let (mut enc_a, mut enc_b) = (Encoder::new(), Encoder::new());
        a.persist(&mut enc_a);
        a_again.persist(&mut enc_b);
        assert_eq!(enc_a.into_bytes(), enc_b.into_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_cap_zero_clamps_to_one() {
        let registry = ShadowZooRegistry::in_memory().with_mem_cap(0);
        let spec = DetectorSpec::new(tiny_config(), 7);
        let first = registry.detector(&spec).unwrap();
        let second = registry.detector(&spec).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "entry stays resident");
        assert_eq!(registry.stats().mem_hits, 1);
        assert_eq!(registry.stats().evictions, 0);
    }

    #[test]
    fn persisted_entries_restore_across_processes() {
        let dir = std::env::temp_dir().join(format!("bprom-audit-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = DetectorSpec::new(tiny_config(), 7);

        let registry = ShadowZooRegistry::open(&dir).unwrap();
        registry.detector(&spec).unwrap();
        assert_eq!(registry.stats().builds, 1);
        drop(registry);

        // A fresh registry over the same directory restores the fit.
        let reopened = ShadowZooRegistry::open(&dir).unwrap();
        reopened.detector(&spec).unwrap();
        let stats = reopened.stats();
        assert_eq!(stats.builds, 0, "no second fit");
        assert_eq!(stats.disk_hits, 1);
        drop(reopened);

        // Truncate the snapshot: the next lookup rebuilds instead of
        // panicking or serving garbage.
        let store = SnapshotStore::open(&dir).unwrap();
        let path = store.latest_path(&spec.snapshot_name()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let damaged = ShadowZooRegistry::open(&dir).unwrap();
        damaged.detector(&spec).unwrap();
        let stats = damaged.stats();
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.builds, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
