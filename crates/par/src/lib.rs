//! Deterministic data-parallel execution for the BPROM workspace.
//!
//! BPROM's wall-clock cost is dominated by embarrassingly-parallel loops:
//! training `M` independent shadow models, learning one prompt per
//! shadow, scoring the λ candidates of a CMA-ES generation, and fitting
//! the trees of a random forest. This crate provides the one primitive
//! those loops need — [`par_map`] / [`par_map_indexed`] over a
//! [`std::thread::scope`] worker pool — under two hard contracts:
//!
//! * **Bit-identical results at any thread count.** The pool only
//!   distributes work; it never reorders results (output slot `i` always
//!   holds `f(items[i])`) and it owns no RNG. Callers uphold the other
//!   half of the contract by deriving one child RNG per work unit *up
//!   front* (`Rng::fork` per shadow / candidate / tree) instead of
//!   drawing from a shared sequential stream, so the values a work unit
//!   sees do not depend on which worker runs it or when.
//! * **No dependencies.** Plain `std`: scoped threads, atomics, mutex
//!   slots. `bprom-obs` (also zero-dep) is used to buffer per-worker
//!   telemetry and merge it into the parent session at scope exit, so
//!   spans and counters recorded inside parallel sections are not lost
//!   to absent thread-local sinks.
//!
//! The worker count resolves, in order, from [`set_thread_count`] (a
//! process-global programmatic override, used by benchmarks and the
//! determinism tests), the `BPROM_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`]. A count of `1` takes
//! the exact sequential path: work runs in order on the calling thread
//! with no pool, no mutexes, and telemetry recorded directly into the
//! parent session.
//!
//! # Example
//!
//! ```
//! // Seed-per-work-unit: fork the RNGs sequentially, then map in
//! // parallel. The output is identical at any BPROM_THREADS value.
//! let jobs: Vec<u64> = (0..8).map(|i| i * 17 + 3).collect();
//! let out = bprom_par::par_map(jobs.clone(), |seed| seed.wrapping_mul(0x9e37));
//! let seq: Vec<u64> = jobs.into_iter().map(|s| s.wrapping_mul(0x9e37)).collect();
//! assert_eq!(out, seq);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether the current thread is a bprom-par pool worker.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is executing inside a [`par_map`] /
/// [`par_map_indexed`] worker.
///
/// Library-level parallelism (e.g. the `bprom-tensor` GEMM driver
/// splitting one large matrix product over the pool) uses this to stay
/// sequential when the caller is *already* a work unit of an outer
/// parallel section — the outer section owns the cores, and nested
/// pools would only oversubscribe them. The sequential fast path of
/// `par_map*` (one worker, or `n <= 1`) runs on the calling thread and
/// does **not** mark it, so a single big work item can still fan out.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Overrides the worker-pool size for the whole process; pass `0` to
/// clear the override and fall back to `BPROM_THREADS` / available
/// parallelism.
///
/// Takes precedence over the environment. Because results are
/// thread-count invariant by contract, flipping this concurrently with
/// running work changes only scheduling, never output.
pub fn set_thread_count(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The worker-pool size parallel sections will use, resolved from (in
/// precedence order) [`set_thread_count`], the `BPROM_THREADS`
/// environment variable, and [`std::thread::available_parallelism`].
/// Always at least 1; `1` means strictly sequential execution.
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced != 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("BPROM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n`, returning results in index
/// order. Work is distributed over [`thread_count`] scoped workers via
/// an atomic work-stealing cursor; with one worker (or `n <= 1`) it
/// degenerates to a plain in-order loop on the calling thread.
///
/// Telemetry recorded inside `f` is buffered per worker and merged into
/// the calling thread's `bprom-obs` session at scope exit (counters
/// add, histograms merge; worker spans attach under the innermost span
/// open on the calling thread). On the sequential path `f` records
/// directly into the parent session.
///
/// Panics in `f` propagate to the caller when the scope joins.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = thread_count().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let ctx = bprom_obs::worker_context();
    let records: Vec<bprom_obs::WorkerRecords> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let session = ctx.map(bprom_obs::WorkerContext::begin);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = f(i);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                    session.map(bprom_obs::WorkerSession::finish)
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("bprom-par worker panicked"))
            .collect()
    });
    bprom_obs::absorb_workers(records);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index computed exactly once")
        })
        .collect()
}

/// Applies `f` to every element of `items`, returning results in input
/// order. See [`par_map_indexed`] for scheduling, telemetry, and panic
/// semantics.
///
/// `items` are moved into per-index slots, so `f` receives each element
/// by value exactly once — the natural shape for "job descriptor +
/// pre-forked RNG" work units.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if thread_count().min(n.max(1)) <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_indexed(n, |i| {
        let item = jobs[i]
            .lock()
            .expect("job slot poisoned")
            .take()
            .expect("each job taken exactly once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Runs `f` with a forced thread count, restoring the default after.
    /// Tests in this module share the process-global override, so they
    /// serialize on a lock.
    fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_count(threads);
        let out = f();
        set_thread_count(0);
        out
    }

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = with_threads(threads, || par_map_indexed(100, |i| i * i));
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_moves_non_clone_items() {
        struct Job(String);
        let items: Vec<Job> = (0..10).map(|i| Job(format!("job-{i}"))).collect();
        let out = with_threads(4, || par_map(items, |job| job.0.len()));
        assert_eq!(out, vec![5; 10]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Seed-per-work-unit: each index derives its own value chain.
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map_indexed(33, |i| {
                    let mut x = i as u64 ^ 0xdead_beef;
                    for _ in 0..1000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                    }
                    x
                })
            })
        };
        let base = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = with_threads(4, || par_map(Vec::<u32>::new(), |x| x));
        assert!(empty.is_empty());
        let one = with_threads(4, || par_map(vec![41u32], |x| x + 1));
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = with_threads(4, || {
            par_map_indexed(257, |i| {
                hits.fetch_add(1, Ordering::Relaxed);
                i
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn override_beats_environment() {
        with_threads(3, || assert_eq!(thread_count(), 3));
        // Cleared override falls back to env/available parallelism: >= 1.
        assert!(thread_count() >= 1);
    }

    #[test]
    fn telemetry_survives_parallel_sections() {
        let (snap_par, snap_seq) = {
            let run = |threads: usize| {
                with_threads(threads, || {
                    let session = bprom_obs::Session::begin("par-test");
                    {
                        bprom_obs::span!("parallel_phase");
                        par_map_indexed(8, |i| {
                            bprom_obs::span!("work_item");
                            bprom_obs::counter_add("items", 1);
                            bprom_obs::observe("item.size", (i as u64 + 1) * 10);
                            i
                        });
                    }
                    session.finish()
                })
            };
            (run(4), run(1))
        };
        for snap in [&snap_par, &snap_seq] {
            assert_eq!(snap.counter("items"), 8);
            assert_eq!(snap.histograms["item.size"].count(), 8);
            let phase = snap.find_span("parallel_phase").expect("phase span");
            assert_eq!(
                phase
                    .children
                    .iter()
                    .filter(|c| c.name == "work_item")
                    .count(),
                8
            );
        }
    }

    #[test]
    fn worker_flag_tracks_execution_context() {
        assert!(!in_parallel_worker());
        let flags = with_threads(4, || par_map_indexed(8, |_| in_parallel_worker()));
        assert!(flags.iter().all(|&f| f), "pool workers must be marked");
        // The sequential fast path runs on the calling thread, unmarked.
        let flags = with_threads(1, || par_map_indexed(8, |_| in_parallel_worker()));
        assert!(flags.iter().all(|&f| !f));
        assert!(!in_parallel_worker());
    }

    #[test]
    fn nested_par_map_completes() {
        let out = with_threads(4, || {
            par_map_indexed(4, |i| par_map_indexed(4, move |j| i * 4 + j))
        });
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..16).collect::<Vec<_>>());
    }
}
