//! CART decision trees with Gini-impurity splitting.

use crate::{validate_dataset, MetaError, Result};
use bprom_ckpt::{CkptError, Decoder, Encoder};
use bprom_tensor::Rng;

/// Hyperparameters for a single decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a node before it may split.
    pub min_samples_split: usize,
    /// Number of random features considered per split; 0 means
    /// `ceil(sqrt(dim))` (the random-forest default).
    pub features_per_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
            features_per_split: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prob_positive: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted CART binary classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dim: usize,
}

fn gini(pos: usize, total: usize) -> f32 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f32 / total as f32;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on the given dataset (optionally a bootstrap index set).
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on empty/inconsistent data and
    /// [`MetaError::InvalidConfig`] on degenerate hyperparameters.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[bool],
        config: &TreeConfig,
        rng: &mut Rng,
    ) -> Result<Self> {
        let dim = validate_dataset(features, labels)?;
        if config.max_depth == 0 || config.min_samples_split < 2 {
            return Err(MetaError::InvalidConfig {
                reason: format!("degenerate tree config {config:?}"),
            });
        }
        let idx: Vec<usize> = (0..features.len()).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            dim,
        };
        tree.grow(features, labels, &idx, config, 0, rng);
        Ok(tree)
    }

    fn leaf(&mut self, labels: &[bool], idx: &[usize]) -> usize {
        let pos = idx.iter().filter(|&&i| labels[i]).count();
        self.nodes.push(Node::Leaf {
            prob_positive: pos as f32 / idx.len().max(1) as f32,
        });
        self.nodes.len() - 1
    }

    fn grow(
        &mut self,
        features: &[Vec<f32>],
        labels: &[bool],
        idx: &[usize],
        config: &TreeConfig,
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| labels[i]).count();
        let pure = pos == 0 || pos == idx.len();
        if depth >= config.max_depth || idx.len() < config.min_samples_split || pure {
            return self.leaf(labels, idx);
        }
        let k = if config.features_per_split == 0 {
            (self.dim as f32).sqrt().ceil() as usize
        } else {
            config.features_per_split.min(self.dim)
        };
        let candidates = rng.sample_indices(self.dim, k.max(1));
        let parent_gini = gini(pos, idx.len());
        let mut best: Option<(usize, f32, f32)> = None; // (feature, threshold, gain)
        for &f in &candidates {
            // Candidate thresholds: midpoints between sorted distinct values.
            let mut vals: Vec<f32> = idx.iter().map(|&i| features[i][f]).collect();
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            for w in vals.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let mut lp = 0usize;
                let mut ln = 0usize;
                let mut rp = 0usize;
                let mut rn = 0usize;
                for &i in idx {
                    let positive = labels[i];
                    if features[i][f] <= threshold {
                        if positive {
                            lp += 1;
                        } else {
                            ln += 1;
                        }
                    } else if positive {
                        rp += 1;
                    } else {
                        rn += 1;
                    }
                }
                let (l, r) = (lp + ln, rp + rn);
                if l == 0 || r == 0 {
                    continue;
                }
                let weighted = (l as f32 * gini(lp, l) + r as f32 * gini(rp, r)) / idx.len() as f32;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        let Some((feature, threshold, gain)) = best else {
            return self.leaf(labels, idx);
        };
        if gain <= 1e-9 {
            return self.leaf(labels, idx);
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| features[i][feature] <= threshold);
        // Reserve the split slot, then grow children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { prob_positive: 0.0 });
        let left = self.grow(features, labels, &left_idx, config, depth + 1, rng);
        let right = self.grow(features, labels, &right_idx, config, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Probability that `sample` is positive (backdoored).
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on feature-width mismatch.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<f32> {
        if sample.len() != self.dim {
            return Err(MetaError::InvalidInput {
                reason: format!(
                    "sample width {} != trained width {}",
                    sample.len(),
                    self.dim
                ),
            });
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob_positive } => return Ok(*prob_positive),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for inspection).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serializes the fitted tree into `enc` for checkpointing.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { prob_positive } => {
                    enc.put_u8(0);
                    enc.put_f32(*prob_positive);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    enc.put_u8(1);
                    enc.put_usize(*feature);
                    enc.put_f32(*threshold);
                    enc.put_usize(*left);
                    enc.put_usize(*right);
                }
            }
        }
    }

    /// Rebuilds a tree from bytes written by [`DecisionTree::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] on truncation, unknown node tags, or
    /// child indices / split features pointing out of range (a corrupted
    /// tree must never be able to make `predict_proba` panic or loop).
    pub fn restore(dec: &mut Decoder) -> std::result::Result<Self, CkptError> {
        let dim = dec.get_usize()?;
        let count = dec.get_usize()?;
        let mut nodes = Vec::with_capacity(count.min(1 << 20));
        for i in 0..count {
            match dec.get_u8()? {
                0 => nodes.push(Node::Leaf {
                    prob_positive: dec.get_f32()?,
                }),
                1 => {
                    let feature = dec.get_usize()?;
                    let threshold = dec.get_f32()?;
                    let left = dec.get_usize()?;
                    let right = dec.get_usize()?;
                    if feature >= dim {
                        return Err(CkptError::decode(format!(
                            "tree node {i} splits on feature {feature}, width is {dim}"
                        )));
                    }
                    // Children always come after their parent (grow()
                    // reserves the split slot first), which also rules out
                    // cycles in a valid snapshot.
                    if left <= i || right <= i || left >= count || right >= count {
                        return Err(CkptError::decode(format!(
                            "tree node {i} has invalid children {left}/{right} of {count}"
                        )));
                    }
                    nodes.push(Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                }
                other => return Err(CkptError::decode(format!("unknown tree node tag {other}"))),
            }
        }
        if nodes.is_empty() || dim == 0 {
            return Err(CkptError::decode(
                "tree snapshot has no nodes or zero width".to_string(),
            ));
        }
        Ok(DecisionTree { nodes, dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_data() -> (Vec<Vec<f32>>, Vec<bool>) {
        let features: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![i as f32 / 20.0, (i * 7 % 20) as f32 / 20.0])
            .collect();
        let labels: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        (features, labels)
    }

    #[test]
    fn fits_axis_aligned_boundary() {
        let (features, labels) = axis_data();
        let mut rng = Rng::new(0);
        let cfg = TreeConfig {
            features_per_split: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&features, &labels, &cfg, &mut rng).unwrap();
        for (f, &l) in features.iter().zip(&labels) {
            let p = tree.predict_proba(f).unwrap();
            assert_eq!(p > 0.5, l, "sample {f:?}");
        }
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![true, true, true];
        let mut rng = Rng::new(1);
        let tree = DecisionTree::fit(&features, &labels, &TreeConfig::default(), &mut rng).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[5.0]).unwrap(), 1.0);
    }

    #[test]
    fn depth_limit_respected() {
        let (features, labels) = axis_data();
        let mut rng = Rng::new(2);
        let cfg = TreeConfig {
            max_depth: 1,
            features_per_split: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&features, &labels, &cfg, &mut rng).unwrap();
        // Depth 1 → at most one split + two leaves.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(3);
        assert!(DecisionTree::fit(&[], &[], &TreeConfig::default(), &mut rng).is_err());
        assert!(DecisionTree::fit(
            &[vec![1.0]],
            &[true],
            &TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
            &mut rng
        )
        .is_err());
        let tree = DecisionTree::fit(
            &[vec![0.0], vec![1.0]],
            &[false, true],
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(tree.predict_proba(&[0.0, 1.0]).is_err());
    }
}
