//! Bootstrap-aggregated random forest over CART trees.

use crate::tree::{DecisionTree, TreeConfig};
use crate::{validate_dataset, MetaError, Result};
use bprom_ckpt::{CkptError, Decoder, Encoder};
use bprom_tensor::Rng;

/// Random-forest hyperparameters.
///
/// The paper uses 10,000 trees; at our meta-dataset sizes (tens of rows)
/// the vote distribution saturates far earlier, so the default is 300
/// (validated by the `forest_ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 300,
            tree: TreeConfig::default(),
        }
    }
}

/// A fitted random forest binary classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dim: usize,
}

impl RandomForest {
    /// Fits the forest: each tree trains on a bootstrap resample with
    /// `sqrt(dim)` features per split.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] / [`MetaError::InvalidConfig`]
    /// for inconsistent data or zero trees.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[bool],
        config: &ForestConfig,
        rng: &mut Rng,
    ) -> Result<Self> {
        let dim = validate_dataset(features, labels)?;
        if config.trees == 0 {
            return Err(MetaError::InvalidConfig {
                reason: "forest needs at least one tree".to_string(),
            });
        }
        let n = features.len();
        // Fork one generator per tree, in tree order: each tree's bootstrap
        // and split sampling come from its own stream, so the fitted forest
        // is bit-identical at any thread count.
        let tree_rngs: Vec<Rng> = (0..config.trees).map(|_| rng.fork()).collect();
        let trees = bprom_par::par_map(tree_rngs, |mut rng| -> Result<DecisionTree> {
            // Bootstrap resample with replacement.
            let mut boot_features = Vec::with_capacity(n);
            let mut boot_labels = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.below(n);
                boot_features.push(features[i].clone());
                boot_labels.push(labels[i]);
            }
            DecisionTree::fit(&boot_features, &boot_labels, &config.tree, &mut rng)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(RandomForest { trees, dim })
    }

    /// Mean positive-class probability over all trees.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on feature-width mismatch.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<f32> {
        let mut total = 0.0f32;
        for tree in &self.trees {
            total += tree.predict_proba(sample)?;
        }
        Ok(total / self.trees.len() as f32)
    }

    /// Hard classification at threshold 0.5.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on feature-width mismatch.
    pub fn predict(&self, sample: &[f32]) -> Result<bool> {
        Ok(self.predict_proba(sample)? > 0.5)
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true for fitted forests).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Trained feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Serializes the fitted forest into `enc` for checkpointing.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.persist(enc);
        }
    }

    /// Rebuilds a forest from bytes written by [`RandomForest::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] on truncation or any invalid tree.
    pub fn restore(dec: &mut Decoder) -> std::result::Result<Self, CkptError> {
        let dim = dec.get_usize()?;
        let count = dec.get_usize()?;
        if dim == 0 || count == 0 {
            return Err(CkptError::decode(format!(
                "forest snapshot has dim {dim}, {count} trees"
            )));
        }
        let mut trees = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            trees.push(DecisionTree::restore(dec)?);
        }
        Ok(RandomForest { trees, dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(rng: &mut Rng) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..30 {
            features.push(vec![rng.normal() * 0.3 - 1.0, rng.normal() * 0.3]);
            labels.push(false);
            features.push(vec![rng.normal() * 0.3 + 1.0, rng.normal() * 0.3]);
            labels.push(true);
        }
        (features, labels)
    }

    #[test]
    fn separates_blobs() {
        let mut rng = Rng::new(0);
        let (features, labels) = two_blobs(&mut rng);
        let cfg = ForestConfig {
            trees: 50,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&features, &labels, &cfg, &mut rng).unwrap();
        assert!(forest.predict(&[1.2, 0.0]).unwrap());
        assert!(!forest.predict(&[-1.2, 0.0]).unwrap());
        assert_eq!(forest.len(), 50);
        assert_eq!(forest.dim(), 2);
    }

    #[test]
    fn probabilities_reflect_margin() {
        let mut rng = Rng::new(1);
        let (features, labels) = two_blobs(&mut rng);
        let cfg = ForestConfig {
            trees: 100,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&features, &labels, &cfg, &mut rng).unwrap();
        let deep_pos = forest.predict_proba(&[2.0, 0.0]).unwrap();
        let deep_neg = forest.predict_proba(&[-2.0, 0.0]).unwrap();
        assert!(deep_pos > 0.9, "deep positive {deep_pos}");
        assert!(deep_neg < 0.1, "deep negative {deep_neg}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Rng::new(7);
        let (features, labels) = two_blobs(&mut r1);
        let cfg = ForestConfig {
            trees: 20,
            ..ForestConfig::default()
        };
        let f1 = RandomForest::fit(&features, &labels, &cfg, &mut Rng::new(9)).unwrap();
        let f2 = RandomForest::fit(&features, &labels, &cfg, &mut Rng::new(9)).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn persist_restore_round_trip_preserves_predictions() {
        let mut rng = Rng::new(13);
        let (features, labels) = two_blobs(&mut rng);
        let cfg = ForestConfig {
            trees: 25,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&features, &labels, &cfg, &mut rng).unwrap();
        let mut enc = Encoder::new();
        forest.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = RandomForest::restore(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, forest);
        for f in &features {
            assert_eq!(
                forest.predict_proba(f).unwrap().to_bits(),
                back.predict_proba(f).unwrap().to_bits()
            );
        }
        // Truncation is a typed error.
        assert!(RandomForest::restore(&mut Decoder::new(&bytes[..bytes.len() / 2])).is_err());
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(2);
        let cfg = ForestConfig {
            trees: 0,
            ..ForestConfig::default()
        };
        assert!(RandomForest::fit(&[vec![1.0]], &[true], &cfg, &mut rng).is_err());
        let forest = RandomForest::fit(
            &[vec![0.0], vec![1.0]],
            &[false, true],
            &ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(forest.predict_proba(&[0.0, 0.0]).is_err());
    }
}
