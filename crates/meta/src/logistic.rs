//! L2-regularized logistic regression (meta-classifier ablation baseline).

use crate::{validate_dataset, MetaError, Result};

/// A fitted logistic-regression binary classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits by full-batch gradient descent.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on inconsistent data and
    /// [`MetaError::InvalidConfig`] for non-positive learning rate or zero
    /// iterations.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[bool],
        lr: f32,
        iterations: usize,
        l2: f32,
    ) -> Result<Self> {
        let dim = validate_dataset(features, labels)?;
        if lr <= 0.0 || iterations == 0 {
            return Err(MetaError::InvalidConfig {
                reason: format!("lr {lr} / iterations {iterations} invalid"),
            });
        }
        let n = features.len() as f32;
        let mut weights = vec![0.0f32; dim];
        let mut bias = 0.0f32;
        for _ in 0..iterations {
            let mut grad_w = vec![0.0f32; dim];
            let mut grad_b = 0.0f32;
            for (x, &y) in features.iter().zip(labels) {
                let z = bias + weights.iter().zip(x).map(|(&w, &v)| w * v).sum::<f32>();
                let err = sigmoid(z) - if y { 1.0 } else { 0.0 };
                for (g, &v) in grad_w.iter_mut().zip(x) {
                    *g += err * v;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= lr * (g / n + l2 * *w);
            }
            bias -= lr * grad_b / n;
        }
        Ok(LogisticRegression { weights, bias })
    }

    /// Probability that `sample` is positive.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on feature-width mismatch.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<f32> {
        if sample.len() != self.weights.len() {
            return Err(MetaError::InvalidInput {
                reason: format!(
                    "sample width {} != trained width {}",
                    sample.len(),
                    self.weights.len()
                ),
            });
        }
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(sample)
                .map(|(&w, &v)| w * v)
                .sum::<f32>();
        Ok(sigmoid(z))
    }

    /// Hard classification at threshold 0.5.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidInput`] on feature-width mismatch.
    pub fn predict(&self, sample: &[f32]) -> Result<bool> {
        Ok(self.predict_proba(sample)? > 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![(i as f32 - 20.0) / 10.0]).collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let model = LogisticRegression::fit(&features, &labels, 0.5, 500, 0.0).unwrap();
        assert!(model.predict(&[1.5]).unwrap());
        assert!(!model.predict(&[-1.5]).unwrap());
    }

    #[test]
    fn probability_is_monotone_in_score() {
        let features = vec![vec![-1.0], vec![1.0]];
        let labels = vec![false, true];
        let model = LogisticRegression::fit(&features, &labels, 0.5, 300, 0.0).unwrap();
        let p_low = model.predict_proba(&[-2.0]).unwrap();
        let p_mid = model.predict_proba(&[0.0]).unwrap();
        let p_high = model.predict_proba(&[2.0]).unwrap();
        assert!(p_low < p_mid && p_mid < p_high);
    }

    #[test]
    fn l2_shrinks_weights() {
        let features = vec![vec![-1.0], vec![1.0]];
        let labels = vec![false, true];
        let free = LogisticRegression::fit(&features, &labels, 0.5, 500, 0.0).unwrap();
        let reg = LogisticRegression::fit(&features, &labels, 0.5, 500, 0.5).unwrap();
        assert!(reg.weights[0].abs() < free.weights[0].abs());
    }

    #[test]
    fn validation() {
        assert!(LogisticRegression::fit(&[], &[], 0.1, 10, 0.0).is_err());
        assert!(LogisticRegression::fit(&[vec![1.0]], &[true], 0.0, 10, 0.0).is_err());
        let m =
            LogisticRegression::fit(&[vec![0.0], vec![1.0]], &[false, true], 0.1, 10, 0.0).unwrap();
        assert!(m.predict_proba(&[1.0, 2.0]).is_err());
    }
}
