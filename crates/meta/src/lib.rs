//! Meta-classifiers for BPROM's final detection stage.
//!
//! The paper trains "a random forest with 10,000 trees to detect backdoors
//! based on confidence vectors" (Section 6.1). This crate provides that
//! random forest (CART trees + bagging + feature subsampling), plus a
//! logistic-regression alternative used in the meta-classifier ablation.
//!
//! # Example
//!
//! ```
//! use bprom_meta::{RandomForest, ForestConfig};
//! use bprom_tensor::Rng;
//!
//! # fn main() -> Result<(), bprom_meta::MetaError> {
//! let features = vec![
//!     vec![0.1, 0.9], vec![0.2, 0.8], vec![0.15, 0.85], // clean-ish
//!     vec![0.9, 0.1], vec![0.8, 0.2], vec![0.95, 0.05], // backdoor-ish
//! ];
//! let labels = vec![false, false, false, true, true, true];
//! let mut rng = Rng::new(0);
//! let forest = RandomForest::fit(&features, &labels, &ForestConfig::default(), &mut rng)?;
//! assert!(forest.predict_proba(&[0.92, 0.08])? > 0.5);
//! assert!(forest.predict_proba(&[0.12, 0.88])? < 0.5);
//! # Ok(())
//! # }
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod error;
mod forest;
mod logistic;
mod tree;

pub use error::MetaError;
pub use forest::{ForestConfig, RandomForest};
pub use logistic::LogisticRegression;
pub use tree::{DecisionTree, TreeConfig};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MetaError>;

pub(crate) fn validate_dataset(features: &[Vec<f32>], labels: &[bool]) -> Result<usize> {
    if features.len() != labels.len() || features.is_empty() {
        return Err(MetaError::InvalidInput {
            reason: format!(
                "{} feature rows for {} labels",
                features.len(),
                labels.len()
            ),
        });
    }
    let dim = features[0].len();
    if dim == 0 || features.iter().any(|f| f.len() != dim) {
        return Err(MetaError::InvalidInput {
            reason: "feature rows must be non-empty and uniform width".to_string(),
        });
    }
    Ok(dim)
}
