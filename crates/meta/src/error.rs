use std::fmt;

/// Error type for meta-classifier training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Inconsistent or empty training data, or a query with the wrong
    /// feature width.
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An invalid hyperparameter (zero trees, zero depth, ...).
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            MetaError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MetaError::InvalidConfig {
            reason: "zero trees".into()
        }
        .to_string()
        .contains("zero trees"));
    }
}
