//! The content-addressed caching decorator.

use crate::digest::image_digest;
use crate::{CacheConfig, CacheMode};
use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::Tensor;
use bprom_vp::{BlackBoxModel, OracleStats, QueryOutcome, Result, VpError};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Lock shards: digests route by their low bits, so concurrent queries
/// for different content rarely contend on the same mutex.
const SHARD_COUNT: usize = 16;

/// Serialization format version for [`BlackBoxModel::export_cache`].
const EXPORT_VERSION: u8 = 1;

/// Approximate heap cost of one entry, for the bytes gauge.
fn entry_bytes(probs: &[f32]) -> u64 {
    8 + 4 * probs.len() as u64
}

struct Entry {
    probs: Vec<f32>,
    /// Recency tick (maintained only in LRU mode).
    tick: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    /// Tick → digest, oldest first (LRU mode only).
    recency: BTreeMap<u64, u64>,
    next_tick: u64,
}

impl Shard {
    /// Looks a digest up, refreshing its recency in LRU mode. Returns a
    /// copy of the cached confidence row.
    fn get(&mut self, digest: u64, lru: bool) -> Option<Vec<f32>> {
        let tick = self.next_tick;
        let entry = self.entries.get_mut(&digest)?;
        if lru {
            self.recency.remove(&entry.tick);
            entry.tick = tick;
            self.recency.insert(tick, digest);
            self.next_tick += 1;
        }
        Some(entry.probs.clone())
    }

    /// Inserts a row, evicting least-recently-used entries past `cap`.
    /// Returns `(bytes_added, bytes_evicted, evictions)`.
    fn insert(&mut self, digest: u64, probs: &[f32], lru: bool, cap: usize) -> (u64, u64, u64) {
        if self.entries.contains_key(&digest) {
            // Already present (e.g. an imported snapshot raced no one —
            // same content, same value). Refresh recency, change nothing.
            self.get(digest, lru);
            return (0, 0, 0);
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(
            digest,
            Entry {
                probs: probs.to_vec(),
                tick,
            },
        );
        let added = entry_bytes(probs);
        if lru {
            self.recency.insert(tick, digest);
            let mut freed = 0u64;
            let mut evicted = 0u64;
            while self.entries.len() > cap {
                let (_, old) = self
                    .recency
                    .pop_first()
                    .expect("recency index out of sync with entries");
                let entry = self
                    .entries
                    .remove(&old)
                    .expect("recency index out of sync with entries");
                freed += entry_bytes(&entry.probs);
                evicted += 1;
            }
            (added, freed, evicted)
        } else {
            (added, 0, 0)
        }
    }
}

/// Where each batch row's response comes from.
enum RowSource {
    /// Served from the cache (the copied confidence row).
    Hit(Vec<f32>),
    /// Served by forwarding: index into the deduplicated miss batch.
    Miss(usize),
}

/// A [`BlackBoxModel`] decorator that memoizes query responses by image
/// content.
///
/// Each incoming batch is split row-wise into cache hits and misses;
/// only the *deduplicated* misses are forwarded to the inner oracle (as
/// one sub-batch, preserving first-occurrence order), and the full
/// confidence matrix is reassembled in the original row order. Because
/// the wrapped model's eval-mode forward pass is row-independent, the
/// reassembled response is bit-identical to forwarding the whole batch.
///
/// **Accounting.** [`BlackBoxModel::queries_used`] reports the *logical*
/// budget — rows served, whether from cache or by forwarding — so
/// metering above the cache (e.g. `CountingOracle`) sees exactly the
/// numbers an uncached run would. The inner oracle's own `queries_used`
/// is the real provider spend; the difference is the saving. Per
/// delivered batch, `hits + misses == rows`, so over a run
/// `cache_hits + cache_misses` equals the uncached run's query total.
///
/// **Stacking order.** The cache belongs *below* fault-injection and
/// retry decorators (`retry → faults → cache → model`): the fault layer
/// then sees identical traffic whether or not the cache is enabled (its
/// draws are content-keyed on the full batch), and cached values are
/// always pristine responses, never one attempt's degraded copy. A
/// fault-failed forward is never cached and never counted. Stacking the
/// cache *above* a degrading fault layer is legal but memoizes degraded
/// responses — avoid it.
///
/// **Determinism.** Hit/miss decisions are pure functions of content
/// history. Under `bprom-par`, concurrent work units query disjoint
/// content (the same precondition `FaultyOracle` documents), so counters
/// and LRU state are schedule-invariant as long as the capacity is large
/// enough that parallel phases do not evict (the CI leg uses
/// `lru:4096`, far above the pipeline's working set).
///
/// One `CachingOracle` must wrap exactly one model: the key is the query
/// content only, so sharing a cache across models would serve one
/// model's confidences for another.
pub struct CachingOracle<B: BlackBoxModel> {
    inner: B,
    mode: CacheMode,
    /// Per-shard entry budget (`usize::MAX` when unbounded).
    shard_cap: usize,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl<B: BlackBoxModel> std::fmt::Debug for CachingOracle<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingOracle")
            .field("mode", &self.mode)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .finish()
    }
}

impl<B: BlackBoxModel> CachingOracle<B> {
    /// Wraps `inner` with the given cache policy.
    pub fn new(inner: B, config: CacheConfig) -> Self {
        let shard_cap = match config.mode {
            CacheMode::Off => 0,
            CacheMode::Unbounded => usize::MAX,
            // Ceiling split so the total capacity is never below the
            // requested one.
            CacheMode::Lru(n) => n.div_ceil(SHARD_COUNT),
        };
        CachingOracle {
            inner,
            mode: config.mode,
            shard_cap,
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Unwraps the decorator, returning the inner oracle.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The active replacement policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Rows served without forwarding (cross-batch hits plus intra-batch
    /// duplicates).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Deduplicated rows forwarded to the inner oracle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of logical rows served from the cache so far
    /// (`hits / (hits + misses)`; 0 before any traffic).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Approximate bytes currently held by cached entries.
    pub fn bytes_cached(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    fn lru(&self) -> bool {
        matches!(self.mode, CacheMode::Lru(_))
    }

    fn shard(&self, digest: u64) -> &Mutex<Shard> {
        &self.shards[(digest & (SHARD_COUNT as u64 - 1)) as usize]
    }

    /// Splits a `[n, c, h, w]` batch into cached rows and a deduplicated
    /// miss list (first-occurrence order). LRU recency is refreshed for
    /// every hit.
    fn plan(&self, batch: &Tensor) -> (Vec<RowSource>, Vec<u64>, Vec<usize>) {
        let n = batch.shape()[0];
        let dims = &batch.shape()[1..];
        let inner_len: usize = dims.iter().product();
        let lru = self.lru();
        let mut sources = Vec::with_capacity(n);
        let mut miss_digests: Vec<u64> = Vec::new();
        let mut miss_rows: Vec<usize> = Vec::new();
        let mut miss_slot: HashMap<u64, usize> = HashMap::new();
        for row in 0..n {
            let pixels = &batch.data()[row * inner_len..(row + 1) * inner_len];
            let digest = image_digest(dims, pixels);
            if let Some(&slot) = miss_slot.get(&digest) {
                // Duplicate of an earlier miss in this very batch: serve
                // it from the single forwarded copy.
                sources.push(RowSource::Miss(slot));
                continue;
            }
            let cached = self
                .shard(digest)
                .lock()
                .expect("cache shard poisoned")
                .get(digest, lru);
            match cached {
                Some(probs) => sources.push(RowSource::Hit(probs)),
                None => {
                    let slot = miss_digests.len();
                    miss_slot.insert(digest, slot);
                    miss_digests.push(digest);
                    miss_rows.push(row);
                    sources.push(RowSource::Miss(slot));
                }
            }
        }
        (sources, miss_digests, miss_rows)
    }

    fn gather_rows(batch: &Tensor, rows: &[usize]) -> Result<Tensor> {
        let inner_len: usize = batch.shape()[1..].iter().product();
        let mut data = Vec::with_capacity(rows.len() * inner_len);
        for &row in rows {
            data.extend_from_slice(&batch.data()[row * inner_len..(row + 1) * inner_len]);
        }
        let mut dims = vec![rows.len()];
        dims.extend_from_slice(&batch.shape()[1..]);
        Ok(Tensor::from_vec(data, &dims)?)
    }

    /// Stores forwarded responses, reassembles the full confidence
    /// matrix in original row order, and commits the hit/miss tallies.
    /// Only called for *delivered* outcomes — a faulted or failed
    /// forward never reaches here, so it is never cached or counted.
    fn commit(
        &self,
        sources: &[RowSource],
        miss_digests: &[u64],
        miss_probs: Option<&Tensor>,
    ) -> Result<Tensor> {
        let lru = self.lru();
        let k = match miss_probs {
            Some(p) => p.shape()[1],
            None => match sources.first() {
                Some(RowSource::Hit(v)) => v.len(),
                _ => self.inner.num_classes(),
            },
        };
        if let Some(probs) = miss_probs {
            let mut added = 0u64;
            let mut freed = 0u64;
            let mut evicted = 0u64;
            for (slot, &digest) in miss_digests.iter().enumerate() {
                let row = &probs.data()[slot * k..(slot + 1) * k];
                let (a, f, e) = self
                    .shard(digest)
                    .lock()
                    .expect("cache shard poisoned")
                    .insert(digest, row, lru, self.shard_cap);
                added += a;
                freed += f;
                evicted += e;
            }
            // `freed` only ever covers entries whose bytes were added
            // earlier, so the gauge cannot underflow.
            self.bytes.fetch_add(added, Ordering::Relaxed);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                if bprom_obs::enabled() {
                    bprom_obs::counter_add("qcache.evictions", evicted);
                    bprom_obs::log_event("qcache.evicted", [("entries", evicted.into())]);
                }
            }
            if added > 0 && bprom_obs::enabled() {
                bprom_obs::counter_add("qcache.bytes_inserted", added);
            }
        }
        let mut data = Vec::with_capacity(sources.len() * k);
        for source in sources {
            match source {
                RowSource::Hit(v) => data.extend_from_slice(v),
                RowSource::Miss(slot) => {
                    let probs = miss_probs.expect("miss row without a forwarded batch");
                    data.extend_from_slice(&probs.data()[slot * k..(slot + 1) * k]);
                }
            }
        }
        let n = sources.len();
        let m = miss_digests.len();
        self.hits.fetch_add((n - m) as u64, Ordering::Relaxed);
        self.misses.fetch_add(m as u64, Ordering::Relaxed);
        if bprom_obs::enabled() {
            bprom_obs::counter_add("qcache.hits", (n - m) as u64);
            bprom_obs::counter_add("qcache.misses", m as u64);
        }
        Ok(Tensor::from_vec(data, &[n, k])?)
    }
}

impl<B: BlackBoxModel> BlackBoxModel for CachingOracle<B> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        // Off mode, malformed shapes and empty batches all defer to the
        // inner oracle so behavior (including errors) matches a cache-off
        // run exactly.
        if matches!(self.mode, CacheMode::Off) || batch.rank() != 4 || batch.shape()[0] == 0 {
            return self.inner.query(batch);
        }
        let (sources, miss_digests, miss_rows) = self.plan(batch);
        if miss_rows.is_empty() {
            return self.commit(&sources, &miss_digests, None);
        }
        let miss_batch = Self::gather_rows(batch, &miss_rows)?;
        let probs = self.inner.query(&miss_batch)?;
        self.commit(&sources, &miss_digests, Some(&probs))
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        if matches!(self.mode, CacheMode::Off) || batch.rank() != 4 || batch.shape()[0] == 0 {
            return self.inner.try_query_batch(batch);
        }
        let (sources, miss_digests, miss_rows) = self.plan(batch);
        if miss_rows.is_empty() {
            return Ok(Ok(self.commit(&sources, &miss_digests, None)?));
        }
        let miss_batch = Self::gather_rows(batch, &miss_rows)?;
        match self.inner.try_query_batch(&miss_batch)? {
            // A fault-failed forward is never cached and never counted:
            // the retry layer will resubmit the whole logical query.
            Err(fault) => Ok(Err(fault)),
            Ok(probs) => Ok(Ok(self.commit(&sources, &miss_digests, Some(&probs))?)),
        }
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    /// The *logical* query budget: rows served from cache plus rows the
    /// inner oracle billed. Identical to an uncached run's count.
    fn queries_used(&self) -> u64 {
        self.inner.queries_used() + self.hits.load(Ordering::Relaxed)
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats().merged(&OracleStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_evictions: self.evictions.load(Ordering::Relaxed),
            ..OracleStats::default()
        })
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        if matches!(self.mode, CacheMode::Off) {
            return self.inner.export_cache(enc);
        }
        // Canonical entry order: recency (oldest first, per shard) in LRU
        // mode so a restore reproduces the eviction queue; digest-sorted
        // otherwise, so the serialized bytes are schedule-invariant.
        let mut entries: Vec<(u64, Vec<f32>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            if self.lru() {
                for digest in shard.recency.values() {
                    entries.push((*digest, shard.entries[digest].probs.clone()));
                }
            } else {
                let mut digests: Vec<u64> = shard.entries.keys().copied().collect();
                digests.sort_unstable();
                for digest in digests {
                    entries.push((digest, shard.entries[&digest].probs.clone()));
                }
            }
        }
        enc.put_u8(EXPORT_VERSION);
        enc.put_usize(entries.len());
        for (digest, probs) in &entries {
            enc.put_u64(*digest);
            enc.put_f32s(probs);
        }
        true
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        if matches!(self.mode, CacheMode::Off) {
            return self.inner.import_cache(dec);
        }
        let ckpt = |e: bprom_ckpt::CkptError| VpError::Ckpt(format!("cache import: {e}"));
        let version = dec.get_u8().map_err(ckpt)?;
        if version != EXPORT_VERSION {
            return Err(VpError::Ckpt(format!(
                "cache import: unsupported format version {version}"
            )));
        }
        let count = dec.get_usize().map_err(ckpt)?;
        let lru = self.lru();
        let mut added = 0u64;
        let mut freed = 0u64;
        let mut evicted = 0u64;
        for _ in 0..count {
            let digest = dec.get_u64().map_err(ckpt)?;
            let probs = dec.get_f32s().map_err(ckpt)?;
            let (a, f, e) = self
                .shard(digest)
                .lock()
                .expect("cache shard poisoned")
                .insert(digest, &probs, lru, self.shard_cap);
            added += a;
            freed += f;
            evicted += e;
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(())
    }
}
