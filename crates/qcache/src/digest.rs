//! Content digests for query images.
//!
//! [`image_digest`] fingerprints one `[c, h, w]` image by its exact pixel
//! *bit patterns*: a 64-bit FNV-1a variant that consumes the per-image
//! dimensions (as `u64`s) followed by each pixel's [`f32::to_bits`] word.
//! Hashing bit patterns instead of float values makes the digest total on
//! the whole `f32` domain — NaN payloads hash by their payload bits, and
//! `-0.0` hashes differently from `0.0` (treating them as distinct can
//! only cost a cache hit, never serve a wrong response).
//!
//! The word-per-step variant runs one multiply per pixel instead of
//! byte-wise FNV's four, which keeps digesting far below forward-pass
//! cost (the `bench_qcache` 0 %-hit leg gates this at < 5 % overhead).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn eat_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Digest of one image: its dimensions plus every pixel's exact bit
/// pattern. A pure function of the content — independent of batch
/// position, submission order, thread, or process.
pub fn image_digest(dims: &[usize], pixels: &[f32]) -> u64 {
    let mut h = FNV_OFFSET;
    for &d in dims {
        h = eat_word(h, d as u64);
    }
    for &p in pixels {
        h = eat_word(h, u64::from(p.to_bits()));
    }
    h
}

/// Digest of an arbitrary byte string with the same word-FNV variant
/// [`image_digest`] uses: the length, then each little-endian 8-byte
/// word (the trailing partial word zero-padded). The length prefix
/// keeps zero-padded tails from aliasing genuinely longer inputs.
///
/// This is the content-addressing primitive for non-image keys — the
/// fleet registry digests `(config, seed)` encodings through it to name
/// shared shadow-zoo entries.
pub fn bytes_digest(bytes: &[u8]) -> u64 {
    let mut h = eat_word(FNV_OFFSET, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = eat_word(h, u64::from_le_bytes(word));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_only() {
        let a = image_digest(&[3, 4, 4], &[0.25; 48]);
        let b = image_digest(&[3, 4, 4], &[0.25; 48]);
        assert_eq!(a, b);
        let mut perturbed = [0.25f32; 48];
        perturbed[47] = 0.250_000_03;
        assert_ne!(a, image_digest(&[3, 4, 4], &perturbed));
    }

    #[test]
    fn dims_are_part_of_the_content() {
        // Same flat payload, different logical shape: distinct digests,
        // so a [1, 2, 8] image can never alias a [1, 4, 4] one.
        let pixels = [0.5f32; 16];
        assert_ne!(
            image_digest(&[1, 2, 8], &pixels),
            image_digest(&[1, 4, 4], &pixels)
        );
    }

    #[test]
    fn bytes_digest_is_stable_and_length_aware() {
        assert_eq!(bytes_digest(b"registry"), bytes_digest(b"registry"));
        assert_ne!(bytes_digest(b"registry"), bytes_digest(b"registrz"));
        // A zero tail must not alias the same prefix without it (the
        // trailing partial word is zero-padded; the length prefix keeps
        // the digests apart).
        assert_ne!(bytes_digest(b"abc"), bytes_digest(b"abc\0"));
        assert_ne!(bytes_digest(b""), bytes_digest(b"\0"));
        // Spot-check sensitivity at a word boundary.
        assert_ne!(bytes_digest(&[1u8; 8]), bytes_digest(&[1u8; 9]));
    }

    #[test]
    fn nan_and_signed_zero_hash_by_bit_pattern() {
        // The same NaN bit pattern always hashes identically…
        let nan = f32::from_bits(0x7FC0_1234);
        assert_eq!(
            image_digest(&[1, 1, 2], &[nan, 1.0]),
            image_digest(&[1, 1, 2], &[nan, 1.0])
        );
        // …distinct NaN payloads hash distinctly…
        let other_nan = f32::from_bits(0x7FC0_5678);
        assert_ne!(
            image_digest(&[1, 1, 2], &[nan, 1.0]),
            image_digest(&[1, 1, 2], &[other_nan, 1.0])
        );
        // …and -0.0 is distinguished from 0.0 (bit patterns differ).
        assert_ne!(
            image_digest(&[1, 1, 1], &[0.0]),
            image_digest(&[1, 1, 1], &[-0.0])
        );
    }
}
