//! Cache policy configuration and the `BPROM_QCACHE` environment knob.

/// Environment variable selecting the cache policy: `off`, `mem`
/// (unbounded), or `lru:<n>` (bounded to `n` entries). Unparseable
/// values fall back to the caller's default, mirroring the lenient
/// `BPROM_THREADS` handling in `bprom-par`.
pub const QCACHE_ENV: &str = "BPROM_QCACHE";

/// Cache replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheMode {
    /// No caching: the decorator is a zero-overhead passthrough.
    Off,
    /// Memoize every distinct query image for the oracle's lifetime.
    #[default]
    Unbounded,
    /// Bounded memory: keep at most `n` entries, evicting the least
    /// recently used (capacity is split evenly across the lock shards).
    Lru(usize),
}

/// Configuration handed to `CachingOracle::new`.
///
/// The default is [`CacheMode::Unbounded`] — inspection caches by
/// default — and [`CacheConfig::from_env`] lets `BPROM_QCACHE` override
/// it per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheConfig {
    /// Replacement policy.
    pub mode: CacheMode,
}

impl CacheConfig {
    /// Caching disabled.
    pub fn off() -> Self {
        CacheConfig {
            mode: CacheMode::Off,
        }
    }

    /// Unbounded memoization.
    pub fn unbounded() -> Self {
        CacheConfig {
            mode: CacheMode::Unbounded,
        }
    }

    /// Bounded LRU with `capacity` total entries (`0` disables caching).
    pub fn lru(capacity: usize) -> Self {
        CacheConfig {
            mode: if capacity == 0 {
                CacheMode::Off
            } else {
                CacheMode::Lru(capacity)
            },
        }
    }

    /// The policy selected by `BPROM_QCACHE`, if the variable is set to a
    /// well-formed value (`off`, `mem`, or `lru:<n>`).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(QCACHE_ENV).ok()?;
        Self::parse(&raw)
    }

    /// [`CacheConfig::from_env`] with a fallback for unset/malformed
    /// values.
    pub fn from_env_or(default: Self) -> Self {
        Self::from_env().unwrap_or(default)
    }

    fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.eq_ignore_ascii_case("off") {
            return Some(Self::off());
        }
        if raw.eq_ignore_ascii_case("mem") {
            return Some(Self::unbounded());
        }
        if let Some(n) = raw.strip_prefix("lru:") {
            if let Ok(n) = n.trim().parse::<usize>() {
                return Some(Self::lru(n));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(CacheConfig::parse("off"), Some(CacheConfig::off()));
        assert_eq!(CacheConfig::parse("OFF"), Some(CacheConfig::off()));
        assert_eq!(CacheConfig::parse("mem"), Some(CacheConfig::unbounded()));
        assert_eq!(
            CacheConfig::parse(" lru:4096 "),
            Some(CacheConfig::lru(4096))
        );
        assert_eq!(
            CacheConfig::parse("lru:4096").unwrap().mode,
            CacheMode::Lru(4096)
        );
    }

    #[test]
    fn zero_capacity_lru_is_off() {
        assert_eq!(CacheConfig::parse("lru:0"), Some(CacheConfig::off()));
        assert_eq!(CacheConfig::lru(0).mode, CacheMode::Off);
    }

    #[test]
    fn malformed_values_fall_back() {
        for bad in ["", "on", "lru", "lru:", "lru:x", "mem:4"] {
            assert_eq!(CacheConfig::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn default_is_unbounded() {
        assert_eq!(CacheConfig::default().mode, CacheMode::Unbounded);
    }
}
