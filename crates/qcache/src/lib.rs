//! # bprom-qcache — content-addressed memoization for oracle queries
//!
//! BPROM's cost model is the number of black-box confidence queries an
//! inspection spends, and the CMA-ES prompt search re-submits
//! near-identical prompted batches generation after generation. This
//! crate memoizes the oracle boundary: [`CachingOracle`] digests every
//! query image by content ([`image_digest`]), splits each batch into
//! cache hits and *deduplicated* misses, forwards only the misses to the
//! inner oracle, and reassembles the confidence matrix in the original
//! row order. The model's eval-mode forward pass is row-independent, so
//! a cached run's responses — and therefore its `DetectionReport` — are
//! bit-identical to an uncached run's.
//!
//! ## Stacking order
//!
//! The legal stack puts the cache **below** fault injection and retry
//! (`CountingOracle → RetryingOracle → FaultyOracle → CachingOracle →
//! QueryOracle`):
//!
//! - the fault layer admits/degrades the *full logical batch* exactly as
//!   it would uncached, so hostile-profile runs stay bit-identical too;
//! - cached entries are always pristine provider responses, never one
//!   attempt's degraded copy;
//! - a fault-failed forward is returned in band untouched — never
//!   cached, never counted.
//!
//! Stacking the cache *above* a degrading fault layer memoizes degraded
//! responses and is discouraged (though still deterministic).
//!
//! ## Accounting
//!
//! [`CachingOracle`] reports *logical* spend through
//! `BlackBoxModel::queries_used` (rows served, hit or miss), so budget
//! meters above it see uncached numbers; the wrapped oracle's own
//! counter is the real provider spend, and per run
//! `cache_hits + cache_misses` equals the uncached query total. Tallies
//! flow through `OracleStats` (`cache_hits` / `cache_misses` /
//! `cache_evictions`), `bprom-obs` counters (`qcache.*`), and — via
//! `bprom-core` — `InspectBudget` / `DetectionReport` fields.
//!
//! ## Policy
//!
//! [`CacheConfig`] selects [`CacheMode`]: `Off`, `Unbounded` (default),
//! or `Lru(n)` bounded memory. The `BPROM_QCACHE` env var
//! (`off|mem|lru:<n>`, see [`QCACHE_ENV`]) overrides the default at
//! pipeline level. Cache contents persist through checkpoints via
//! `BlackBoxModel::export_cache` / `import_cache`, so a resumed run does
//! not re-spend queries the killed run already paid for.

mod config;
mod digest;
mod oracle;

pub use config::{CacheConfig, CacheMode, QCACHE_ENV};
pub use digest::{bytes_digest, image_digest};
pub use oracle::CachingOracle;

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_ckpt::{Decoder, Encoder};
    use bprom_data::SynthDataset;
    use bprom_faults::{FaultyOracle, RetryPolicy, RetryingOracle, Transient};
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::{Rng, Tensor};
    use bprom_vp::{BlackBoxModel, QueryFault, QueryOracle, QueryOutcome, Result};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Two oracles over bit-identical models: a reference and a test
    /// subject (CMA-ES determinism elsewhere relies on the same
    /// same-seed-same-model property).
    fn twin_oracles(seed: u64, k: usize) -> (QueryOracle, QueryOracle) {
        let spec = ModelSpec::new(3, 8, k);
        let a = mlp(&spec, &mut Rng::new(seed)).unwrap();
        let b = mlp(&spec, &mut Rng::new(seed)).unwrap();
        (QueryOracle::new(a, k), QueryOracle::new(b, k))
    }

    fn batch(rng: &mut Rng, n: usize) -> Tensor {
        Tensor::rand_uniform(&[n, 3, 8, 8], 0.0, 1.0, rng)
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|p| p.to_bits()).collect()
    }

    #[test]
    fn repeated_batches_hit_and_stay_bit_identical() {
        let (reference, inner) = twin_oracles(7, 5);
        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        let mut rng = Rng::new(42);
        let b = batch(&mut rng, 6);
        let want = reference.query(&b).unwrap();

        let first = cached.query(&b).unwrap();
        let second = cached.query(&b).unwrap();
        assert_eq!(bits(&first), bits(&want));
        assert_eq!(bits(&second), bits(&want));
        assert_eq!(cached.misses(), 6);
        assert_eq!(cached.hits(), 6);
        // Logical spend matches the uncached run; provider spend doesn't.
        assert_eq!(cached.queries_used(), 12);
        assert_eq!(cached.inner().queries_used(), 6);
        let stats = cached.oracle_stats();
        assert_eq!(stats.cache_hits, 6);
        assert_eq!(stats.cache_misses, 6);
        assert_eq!(stats.cache_evictions, 0);
    }

    #[test]
    fn dedup_never_reorders_rows() {
        let (reference, inner) = twin_oracles(11, 4);
        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        let mut rng = Rng::new(9);
        // Build a batch whose rows repeat in a scrambled pattern:
        // [a, b, a, c, b, a, c, d].
        let distinct = batch(&mut rng, 4);
        let row_len = 3 * 8 * 8;
        let pattern = [0usize, 1, 0, 2, 1, 0, 2, 3];
        let mut data = Vec::new();
        for &r in &pattern {
            data.extend_from_slice(&distinct.data()[r * row_len..(r + 1) * row_len]);
        }
        let shuffled = Tensor::from_vec(data, &[pattern.len(), 3, 8, 8]).unwrap();

        let want = reference.query(&shuffled).unwrap();
        let got = cached.query(&shuffled).unwrap();
        assert_eq!(got.shape(), want.shape());
        assert_eq!(bits(&got), bits(&want), "dedup must not reorder rows");
        // 4 unique rows forwarded once each; 4 intra-batch duplicates hit.
        assert_eq!(cached.misses(), 4);
        assert_eq!(cached.hits(), 4);
        assert_eq!(cached.inner().queries_used(), 4);
        assert_eq!(cached.queries_used(), 8);
    }

    #[test]
    fn off_mode_is_a_pure_passthrough() {
        let (reference, inner) = twin_oracles(3, 5);
        let cached = CachingOracle::new(inner, CacheConfig::off());
        let mut rng = Rng::new(5);
        let b = batch(&mut rng, 4);
        let want = reference.query(&b).unwrap();
        for _ in 0..3 {
            assert_eq!(bits(&cached.query(&b).unwrap()), bits(&want));
        }
        assert_eq!(cached.hits(), 0);
        assert_eq!(cached.misses(), 0);
        assert_eq!(cached.entry_count(), 0);
        assert_eq!(cached.bytes_cached(), 0);
        assert_eq!(cached.queries_used(), cached.inner().queries_used());
        assert_eq!(cached.queries_used(), 12);
    }

    #[test]
    fn malformed_batches_defer_to_the_inner_oracle() {
        let (_, inner) = twin_oracles(4, 5);
        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        // Rank-3 input: the same hard error an uncached oracle raises.
        assert!(cached.query(&Tensor::zeros(&[3, 8, 8])).is_err());
        assert_eq!(cached.hits() + cached.misses(), 0);
        assert_eq!(cached.entry_count(), 0);
    }

    #[test]
    fn lru_bounds_memory_and_counts_evictions() {
        let (_, inner) = twin_oracles(13, 5);
        // Capacity 16 over 16 shards: one entry per shard.
        let cached = CachingOracle::new(inner, CacheConfig::lru(16));
        let mut rng = Rng::new(99);
        for _ in 0..64 {
            cached.query(&batch(&mut rng, 1)).unwrap();
        }
        assert_eq!(cached.misses(), 64);
        let live = cached.entry_count() as u64;
        assert!(live <= 16, "entry count {live} exceeds LRU capacity");
        assert_eq!(cached.evictions(), 64 - live);
        // The bytes gauge tracks the live entries exactly (k = 5).
        assert_eq!(cached.bytes_cached(), live * (8 + 4 * 5));
        assert_eq!(cached.oracle_stats().cache_evictions, 64 - live);
    }

    #[test]
    fn lru_touch_keeps_hot_entries_alive() {
        let (_, inner) = twin_oracles(21, 5);
        let cached = CachingOracle::new(inner, CacheConfig::lru(16));
        let mut rng = Rng::new(7);
        let hot = batch(&mut rng, 1);
        cached.query(&hot).unwrap();
        // Keep touching the hot image while flooding with distinct ones.
        for _ in 0..48 {
            cached.query(&batch(&mut rng, 1)).unwrap();
            cached.query(&hot).unwrap();
        }
        let before = cached.inner().queries_used();
        cached.query(&hot).unwrap();
        assert_eq!(
            cached.inner().queries_used(),
            before,
            "recently-touched entry must not have been evicted"
        );
    }

    /// A fault-injecting inner oracle: the first `try_query_batch` is
    /// dropped in band, everything afterwards succeeds.
    struct FlakyOnce {
        inner: QueryOracle,
        tripped: AtomicBool,
        attempts: AtomicU64,
    }

    impl BlackBoxModel for FlakyOnce {
        fn query(&self, batch: &Tensor) -> Result<Tensor> {
            self.inner.query(batch)
        }

        fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            if !self.tripped.swap(true, Ordering::Relaxed) {
                return Ok(Err(QueryFault::Dropped));
            }
            self.inner.try_query_batch(batch)
        }

        fn num_classes(&self) -> usize {
            self.inner.num_classes()
        }

        fn queries_used(&self) -> u64 {
            self.inner.queries_used()
        }
    }

    #[test]
    fn fault_failed_forwards_are_never_cached_or_counted() {
        let (_, inner) = twin_oracles(17, 5);
        let flaky = FlakyOnce {
            inner,
            tripped: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
        };
        let cached = CachingOracle::new(flaky, CacheConfig::unbounded());
        let mut rng = Rng::new(1);
        let b = batch(&mut rng, 3);

        // First attempt faults: nothing cached, nothing counted.
        assert!(matches!(
            cached.try_query_batch(&b).unwrap(),
            Err(QueryFault::Dropped)
        ));
        assert_eq!(cached.hits() + cached.misses(), 0);
        assert_eq!(cached.entry_count(), 0);

        // The resubmitted attempt succeeds and populates the cache…
        let delivered = cached.try_query_batch(&b).unwrap().unwrap();
        assert_eq!(cached.misses(), 3);
        // …and a third submission is served entirely from cache.
        let replay = cached.try_query_batch(&b).unwrap().unwrap();
        assert_eq!(bits(&replay), bits(&delivered));
        assert_eq!(cached.hits(), 3);
        assert_eq!(cached.inner().attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn composes_with_fault_and_retry_stack() {
        // Legal order: retry → faults → cache → model. The fault layer
        // must see identical traffic with and without the cache.
        let (reference, inner) = twin_oracles(29, 5);
        let plan = Transient { rate: 0.4 };
        let policy = RetryPolicy::default();
        let mut rng = Rng::new(1234);
        let batches: Vec<Tensor> = (0..4).map(|_| batch(&mut rng, 5)).collect();

        let bare_faulty = FaultyOracle::new(&reference, plan, 0xFA17);
        let bare_retry = RetryingOracle::new(&bare_faulty, policy);
        let mut want = Vec::new();
        for b in batches.iter().chain(batches.iter()) {
            want.push(bits(&bare_retry.query(b).unwrap()));
        }

        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        let cached_faulty = FaultyOracle::new(&cached, plan, 0xFA17);
        let cached_retry = RetryingOracle::new(&cached_faulty, policy);
        let mut got = Vec::new();
        for b in batches.iter().chain(batches.iter()) {
            got.push(bits(&cached_retry.query(b).unwrap()));
        }

        assert_eq!(got, want, "hostile responses must be bit-identical");
        // Identical content → identical content-keyed fault draws.
        let ws = bare_retry.oracle_stats();
        let cs = cached_retry.oracle_stats();
        assert_eq!(cs.faults_injected, ws.faults_injected);
        assert_eq!(cs.degraded_responses, ws.degraded_responses);
        assert_eq!(cs.retries, ws.retries);
        assert_eq!(cs.retry_exhausted, ws.retry_exhausted);
        // The replayed epoch was served from cache: provider spend halves.
        assert_eq!(cached.inner().queries_used() * 2, reference.queries_used());
        assert_eq!(cs.cache_hits + cs.cache_misses, reference.queries_used());
    }

    #[test]
    fn export_import_round_trip_preserves_entries_and_bytes() {
        let (inner_a, inner_b) = twin_oracles(31, 5);
        let first = CachingOracle::new(inner_a, CacheConfig::unbounded());
        let mut rng = Rng::new(77);
        let batches: Vec<Tensor> = (0..3).map(|_| batch(&mut rng, 4)).collect();
        let mut want = Vec::new();
        for b in &batches {
            want.push(bits(&first.query(b).unwrap()));
        }

        let mut enc = Encoder::new();
        assert!(first.export_cache(&mut enc));
        let payload = enc.into_bytes();
        // Canonical serialization: a second export is byte-identical.
        let mut enc2 = Encoder::new();
        first.export_cache(&mut enc2);
        assert_eq!(payload, enc2.into_bytes());

        let second = CachingOracle::new(inner_b, CacheConfig::unbounded());
        second.import_cache(&mut Decoder::new(&payload)).unwrap();
        assert_eq!(second.entry_count(), first.entry_count());
        assert_eq!(second.bytes_cached(), first.bytes_cached());
        // Every restored query is a hit: zero provider spend.
        for (b, w) in batches.iter().zip(&want) {
            assert_eq!(&bits(&second.query(b).unwrap()), w);
        }
        assert_eq!(second.inner().queries_used(), 0);
        assert_eq!(second.misses(), 0);
        assert_eq!(second.hits(), 12);
    }

    #[test]
    fn export_import_round_trip_preserves_lru_recency() {
        let (inner_a, inner_b) = twin_oracles(37, 5);
        let first = CachingOracle::new(inner_a, CacheConfig::lru(16));
        let mut rng = Rng::new(55);
        let oldest = batch(&mut rng, 1);
        let newer: Vec<Tensor> = (0..8).map(|_| batch(&mut rng, 1)).collect();
        first.query(&oldest).unwrap();
        for b in &newer {
            first.query(b).unwrap();
        }

        let mut enc = Encoder::new();
        assert!(first.export_cache(&mut enc));
        let payload = enc.into_bytes();
        let second = CachingOracle::new(inner_b, CacheConfig::lru(16));
        second.import_cache(&mut Decoder::new(&payload)).unwrap();
        assert_eq!(second.entry_count(), first.entry_count());
        // Restored entries serve hits without provider spend.
        second.query(&oldest).unwrap();
        assert_eq!(second.hits(), 1);
        assert_eq!(second.inner().queries_used(), 0);
    }

    #[test]
    fn import_rejects_garbage() {
        let (_, inner) = twin_oracles(41, 5);
        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        let mut enc = Encoder::new();
        enc.put_u8(200); // unknown format version
        let payload = enc.into_bytes();
        assert!(cached.import_cache(&mut Decoder::new(&payload)).is_err());
        assert!(cached.import_cache(&mut Decoder::new(&[])).is_err());
    }

    #[test]
    fn concurrent_hits_are_counted_exactly() {
        let (_, inner) = twin_oracles(43, 5);
        let cached = CachingOracle::new(inner, CacheConfig::unbounded());
        let mut rng = Rng::new(3);
        // Pre-warm distinct per-thread content, then hammer it from
        // threads (work units query disjoint content, like bprom-par).
        let per_thread: Vec<Tensor> = (0..4).map(|_| batch(&mut rng, 2)).collect();
        for b in &per_thread {
            cached.query(b).unwrap();
        }
        let warm_misses = cached.misses();
        std::thread::scope(|scope| {
            for b in &per_thread {
                scope.spawn(|| {
                    for _ in 0..16 {
                        cached.query(b).unwrap();
                    }
                });
            }
        });
        assert_eq!(cached.misses(), warm_misses);
        assert_eq!(cached.hits(), 4 * 16 * 2);
        assert_eq!(
            cached.queries_used(),
            cached.inner().queries_used() + cached.hits()
        );
    }

    // ——— digest satellite: collision sanity across the data families ———

    #[test]
    fn ten_thousand_synthetic_images_hash_distinctly() {
        let mut digests: HashSet<u64> = HashSet::new();
        let mut contents: HashSet<Vec<u32>> = HashSet::new();
        let mut total = 0usize;
        for (i, family) in SynthDataset::ALL.iter().enumerate() {
            let per_class = (1500 / family.num_classes()).max(2);
            let data = family
                .generate(per_class, family.default_size(), 0xD1_6E57 + i as u64)
                .unwrap();
            let dims = &data.images.shape()[1..];
            let row_len: usize = dims.iter().product();
            for row in 0..data.len() {
                let pixels = &data.images.data()[row * row_len..(row + 1) * row_len];
                digests.insert(image_digest(dims, pixels));
                contents.insert(pixels.iter().map(|p| p.to_bits()).collect());
                total += 1;
            }
        }
        assert!(total >= 10_000, "sample too small: {total}");
        // Distinct contents must produce distinct digests — and dims are
        // hashed too, so equal payloads from different-sized families
        // cannot alias either.
        assert_eq!(
            digests.len(),
            contents.len(),
            "digest collision within a {total}-image sample"
        );
    }

    #[test]
    fn digests_are_stable_across_threads() {
        let data = SynthDataset::Cifar10.generate(10, 16, 5).unwrap();
        let dims: Vec<usize> = data.images.shape()[1..].to_vec();
        let row_len: usize = dims.iter().product();
        let digest_all = |dims: &[usize]| -> Vec<u64> {
            (0..data.len())
                .map(|row| {
                    image_digest(
                        dims,
                        &data.images.data()[row * row_len..(row + 1) * row_len],
                    )
                })
                .collect()
        };
        let want = digest_all(&dims);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| assert_eq!(digest_all(&dims), want));
            }
        });
    }
}
