//! Deterministic crash injection for kill-at-any-point testing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Exit code used by [`crash_point`] to simulate a crash, so harnesses
/// can tell an injected kill apart from a real failure.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Checkpoint boundaries crossed by this process so far.
static CROSSED: AtomicU64 = AtomicU64::new(0);

/// Programmatic override for tests; `u64::MAX` means "use the env var".
static OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// `BPROM_CRASH_AFTER`, read once per process.
static ENV_LIMIT: OnceLock<Option<u64>> = OnceLock::new();

fn limit() -> Option<u64> {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced != u64::MAX {
        return Some(forced);
    }
    *ENV_LIMIT.get_or_init(|| {
        std::env::var("BPROM_CRASH_AFTER")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
    })
}

/// Marks one checkpoint boundary: all state needed to resume from here
/// is durable on disk. If `BPROM_CRASH_AFTER=n` is set (or
/// [`set_crash_after`] was called) and this is the `n`-th boundary the
/// process has crossed, the process exits immediately with
/// [`CRASH_EXIT_CODE`] — no destructors, no flushing, exactly like a
/// kill. Free when no crash limit is configured (one relaxed atomic
/// increment).
///
/// The boundary *count* at which a given unit completes may vary with
/// thread scheduling; what may not vary is the final result after
/// resume, which is what the kill-resume sweep asserts.
pub fn crash_point(label: &str) {
    let crossed = CROSSED.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(n) = limit() {
        if crossed == n {
            eprintln!("[bprom-ckpt] injected crash at boundary {crossed} ({label})");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }
}

/// Checkpoint boundaries crossed so far (diagnostics; lets a sweep
/// harness discover how many kill points a fixture has).
pub fn crossings() -> u64 {
    CROSSED.load(Ordering::SeqCst)
}

/// Resets the boundary counter (tests only — the counter is process
/// lifetime state).
pub fn reset_crossings() {
    CROSSED.store(0, Ordering::SeqCst);
}

/// Programmatically arms (`Some(n)`) or disarms (`None`) crash
/// injection, overriding `BPROM_CRASH_AFTER`. Tests use this to avoid
/// mutating the process environment.
pub fn set_crash_after(n: Option<u64>) {
    OVERRIDE.store(n.unwrap_or(u64::MAX), Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Crash arming is process-global, so this single test covers the
    // counting behaviour without ever letting an exit fire.
    #[test]
    fn boundaries_count_and_disarmed_points_are_free() {
        set_crash_after(None);
        reset_crossings();
        let before = crossings();
        crash_point("test-a");
        crash_point("test-b");
        assert_eq!(crossings(), before + 2);
        // Arm far beyond the current count: still must not exit.
        set_crash_after(Some(u64::MAX - 1));
        crash_point("test-c");
        set_crash_after(None);
        assert_eq!(crossings(), before + 3);
    }
}
