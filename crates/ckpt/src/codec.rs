//! Bit-exact binary encoding for snapshot payloads.
//!
//! Everything is little-endian and length-prefixed. Floats travel as
//! their IEEE-754 bit patterns ([`f32::to_bits`]), so encode → decode is
//! the identity on every value including NaNs, infinities and signed
//! zeros — a restored optimizer continues *byte-identically*.

use crate::CkptError;

/// Append-only byte sink with typed put methods.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encodes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Encodes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Encodes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Encodes an `f32` via its exact bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Encodes an optional `f32` (presence byte + bits).
    pub fn put_opt_f32(&mut self, v: Option<f32>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f32(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Encodes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Encodes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Encodes a length-prefixed `f32` slice, bit-exactly.
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Encodes a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Encodes a length-prefixed `usize` slice (as u64s).
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }
}

/// Cursor over encoded bytes with typed, bounds-checked get methods.
///
/// Every method returns [`CkptError::Decode`] instead of panicking when
/// the buffer runs out or a length prefix is implausible, so corrupted
/// payloads surface as typed errors with no partial state applied.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::decode(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decodes one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decodes a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Decodes a `usize` stored as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CkptError::decode(format!("usize overflow: {v}")))
    }

    /// Decodes a bool.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::decode(format!("invalid bool byte {other}"))),
        }
    }

    /// Decodes an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Decodes an optional `f32`.
    pub fn get_opt_f32(&mut self) -> Result<Option<f32>, CkptError> {
        if self.get_bool()? {
            Ok(Some(self.get_f32()?))
        } else {
            Ok(None)
        }
    }

    /// Decodes a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CkptError> {
        let len = self.checked_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|e| CkptError::decode(format!("invalid UTF-8: {e}")))
    }

    /// Decodes a length-prefixed `f32` slice.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, CkptError> {
        let len = self.checked_len()?;
        let bytes = self.take(
            len.checked_mul(4)
                .ok_or_else(|| CkptError::decode(format!("f32 slice length overflow: {len}")))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Decodes a length-prefixed `u64` slice.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CkptError> {
        let len = self.checked_len()?;
        let bytes = self.take(
            len.checked_mul(8)
                .ok_or_else(|| CkptError::decode(format!("u64 slice length overflow: {len}")))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Decodes a length-prefixed `usize` slice.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, CkptError> {
        self.get_u64s()?
            .into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| CkptError::decode(format!("usize overflow: {v}")))
            })
            .collect()
    }

    /// Reads a length prefix and sanity-checks it against the bytes that
    /// actually remain, so a corrupted length cannot trigger a huge
    /// allocation.
    fn checked_len(&mut self) -> Result<usize, CkptError> {
        let len = self.get_usize()?;
        if len > self.remaining().saturating_mul(8).max(self.remaining()) {
            return Err(CkptError::decode(format!(
                "length prefix {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Asserts the whole buffer was consumed — trailing garbage means the
    /// payload layout does not match what the caller expected.
    pub fn finish(&self) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::decode(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip_is_bit_exact() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_usize(42);
        enc.put_bool(true);
        enc.put_f32(f32::NAN);
        enc.put_f32(-0.0);
        enc.put_opt_f32(Some(1.5e-40)); // subnormal
        enc.put_opt_f32(None);
        enc.put_str("snapshot");
        enc.put_f32s(&[f32::INFINITY, f32::MIN_POSITIVE, -3.25]);
        enc.put_u64s(&[0, 1, u64::MAX]);
        enc.put_usizes(&[3, 1, 4]);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_usize().unwrap(), 42);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(dec.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(
            dec.get_opt_f32().unwrap().unwrap().to_bits(),
            1.5e-40f32.to_bits()
        );
        assert_eq!(dec.get_opt_f32().unwrap(), None);
        assert_eq!(dec.get_str().unwrap(), "snapshot");
        let f = dec.get_f32s().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], f32::INFINITY);
        assert_eq!(f[1].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert_eq!(dec.get_u64s().unwrap(), vec![0, 1, u64::MAX]);
        assert_eq!(dec.get_usizes().unwrap(), vec![3, 1, 4]);
        dec.finish().unwrap();
    }

    #[test]
    fn short_buffer_is_typed_error_not_panic() {
        let mut dec = Decoder::new(&[1, 2]);
        assert!(matches!(dec.get_u32(), Err(CkptError::Decode { .. })));
    }

    #[test]
    fn absurd_length_prefix_rejected_without_allocation() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // length prefix promising 2^64 floats
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_f32s().is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut enc = Encoder::new();
        enc.put_u8(1);
        enc.put_u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        dec.get_u8().unwrap();
        assert!(dec.finish().is_err());
        dec.get_u8().unwrap();
        dec.finish().unwrap();
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut dec = Decoder::new(&[9]);
        assert!(dec.get_bool().is_err());
    }
}
