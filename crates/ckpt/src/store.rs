//! Atomic, versioned, checksummed snapshot files.

use crate::{fnv1a64, CkptError, Result};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File magic: "BPCKPT" + two ASCII digits of the container revision.
pub const MAGIC: [u8; 8] = *b"BPCKPT01";
/// Payload format version written into the header.
pub const VERSION: u32 = 1;
/// magic + version + payload length.
const HEADER_LEN: u64 = 8 + 4 + 8;
/// Trailing FNV-1a checksum over the payload.
const TRAILER_LEN: u64 = 8;
/// Snapshot generations kept per name: the latest plus one fallback.
const KEEP: usize = 2;

/// A directory of named, sequence-numbered snapshot files.
///
/// Each `save` writes `name-<seq>.ckpt` atomically: the bytes go to a
/// dot-prefixed temp file, are fsynced, and are renamed into place (the
/// directory is fsynced too, so the rename itself survives power loss).
/// A reader therefore only ever observes complete files; a crash
/// mid-write leaves an ignored temp file behind.
///
/// `load` returns the newest snapshot that passes validation, silently
/// falling back to the previous generation when the newest is truncated
/// or corrupt — and returns the typed error only when *no* generation
/// validates.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.')
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CkptError::io(&dir, e))?;
        Ok(SnapshotStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All on-disk generations of `name`, newest first (no validation).
    fn generations(&self, name: &str) -> Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| CkptError::io(&self.dir, e))?;
        let prefix = format!("{name}-");
        for entry in entries {
            let entry = entry.map_err(|e| CkptError::io(&self.dir, e))?;
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            let Some(rest) = file_name
                .strip_prefix(&prefix)
                .and_then(|r| r.strip_suffix(".ckpt"))
            else {
                continue;
            };
            if let Ok(seq) = rest.parse::<u64>() {
                found.push((seq, entry.path()));
            }
        }
        found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        Ok(found)
    }

    /// Atomically writes a new generation of `name`, pruning to the two
    /// most recent, and returns the sequence number written.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Corrupt`] for an invalid name and
    /// [`CkptError::Io`] on filesystem failure.
    pub fn save(&self, name: &str, payload: &[u8]) -> Result<u64> {
        if !valid_name(name) {
            return Err(CkptError::corrupt(format!(
                "invalid snapshot name {name:?} (use [A-Za-z0-9._-], not dot-leading)"
            )));
        }
        let seq = self
            .generations(name)?
            .first()
            .map_or(0, |(latest, _)| latest + 1);
        let final_path = self.dir.join(format!("{name}-{seq:010}.ckpt"));
        let tmp_path = self.dir.join(format!(".tmp-{name}-{seq:010}"));
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)
                .map_err(|e| CkptError::io(&tmp_path, e))?;
            file.write_all(&MAGIC)
                .and_then(|()| file.write_all(&VERSION.to_le_bytes()))
                .and_then(|()| file.write_all(&(payload.len() as u64).to_le_bytes()))
                .and_then(|()| file.write_all(payload))
                .and_then(|()| file.write_all(&fnv1a64(payload).to_le_bytes()))
                .and_then(|()| file.sync_all())
                .map_err(|e| CkptError::io(&tmp_path, e))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| CkptError::io(&final_path, e))?;
        // Persist the rename itself: fsync the containing directory.
        if let Ok(dir_handle) = File::open(&self.dir) {
            let _ = dir_handle.sync_all();
        }
        for (_, old) in self.generations(name)?.into_iter().skip(KEEP) {
            let _ = fs::remove_file(old);
        }
        Ok(seq)
    }

    /// Reads and validates one snapshot file, returning its payload.
    ///
    /// # Errors
    ///
    /// Returns the typed corruption error ([`CkptError::BadMagic`],
    /// [`CkptError::UnsupportedVersion`], [`CkptError::Truncated`],
    /// [`CkptError::ChecksumMismatch`]) or [`CkptError::Io`].
    pub fn read_file(path: &Path) -> Result<Vec<u8>> {
        let bytes = fs::read(path).map_err(|e| CkptError::io(path, e))?;
        let min = (HEADER_LEN + TRAILER_LEN) as usize;
        if bytes.len() < 8 || bytes[..8] != MAGIC {
            return Err(CkptError::BadMagic { path: path.into() });
        }
        if bytes.len() < min {
            return Err(CkptError::Truncated {
                path: path.into(),
                expected: HEADER_LEN + TRAILER_LEN,
                actual: bytes.len() as u64,
            });
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != VERSION {
            return Err(CkptError::UnsupportedVersion {
                path: path.into(),
                version,
            });
        }
        let declared = u64::from_le_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
        ]);
        let actual_payload = bytes.len() as u64 - HEADER_LEN - TRAILER_LEN;
        if declared != actual_payload {
            return Err(CkptError::Truncated {
                path: path.into(),
                expected: declared,
                actual: actual_payload,
            });
        }
        let payload = &bytes[HEADER_LEN as usize..bytes.len() - TRAILER_LEN as usize];
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - 8..]
                .try_into()
                .expect("trailer is 8 bytes"),
        );
        if fnv1a64(payload) != stored {
            return Err(CkptError::ChecksumMismatch { path: path.into() });
        }
        Ok(payload.to_vec())
    }

    /// Loads the newest *valid* snapshot of `name`.
    ///
    /// Returns `Ok(None)` when no generation exists at all. When
    /// generations exist but the newest is damaged, falls back to older
    /// ones; only if every generation fails validation is the newest
    /// generation's typed error returned.
    ///
    /// # Errors
    ///
    /// See above; plus [`CkptError::Io`] on directory-scan failure.
    pub fn load(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let generations = self.generations(name)?;
        if generations.is_empty() {
            return Ok(None);
        }
        let mut first_err: Option<CkptError> = None;
        for (_, path) in &generations {
            match Self::read_file(path) {
                Ok(payload) => return Ok(Some(payload)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err.expect("non-empty generation list"))
    }

    /// Loads `name`, converting "not found" into [`CkptError::NoSnapshot`].
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::load`], plus `NoSnapshot` when absent.
    pub fn load_required(&self, name: &str) -> Result<Vec<u8>> {
        self.load(name)?.ok_or_else(|| CkptError::NoSnapshot {
            name: name.to_string(),
        })
    }

    /// Whether any generation of `name` exists on disk (valid or not).
    pub fn exists(&self, name: &str) -> bool {
        self.generations(name).is_ok_and(|g| !g.is_empty())
    }

    /// Path of the newest generation of `name`, if any (for tests and
    /// diagnostics).
    pub fn latest_path(&self, name: &str) -> Option<PathBuf> {
        self.generations(name)
            .ok()?
            .into_iter()
            .next()
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("bprom-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_round_trip() {
        let store = temp_store("roundtrip");
        store.save("alpha", b"hello snapshot").unwrap();
        assert_eq!(store.load("alpha").unwrap().unwrap(), b"hello snapshot");
        assert!(store.load("missing").unwrap().is_none());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn generations_rotate_and_prune() {
        let store = temp_store("rotate");
        for i in 0..5u8 {
            store.save("g", &[i]).unwrap();
        }
        assert_eq!(store.load("g").unwrap().unwrap(), vec![4]);
        // Only the last two generations remain on disk.
        let count = fs::read_dir(store.dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".ckpt")
            })
            .count();
        assert_eq!(count, 2);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn truncation_is_typed_and_falls_back() {
        let store = temp_store("truncate");
        store.save("t", b"first good payload").unwrap();
        store.save("t", b"second good payload").unwrap();
        let latest = store.latest_path("t").unwrap();
        // Truncate the newest mid-record.
        let bytes = fs::read(&latest).unwrap();
        fs::write(&latest, &bytes[..bytes.len() - 11]).unwrap();
        assert!(matches!(
            SnapshotStore::read_file(&latest),
            Err(CkptError::Truncated { .. })
        ));
        // load() falls back to the previous good generation.
        assert_eq!(store.load("t").unwrap().unwrap(), b"first good payload");
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn checksum_flip_is_typed_and_falls_back() {
        let store = temp_store("checksum");
        store.save("c", b"good old").unwrap();
        store.save("c", b"shiny new").unwrap();
        let latest = store.latest_path("c").unwrap();
        let mut bytes = fs::read(&latest).unwrap();
        let flip_at = HEADER_LEN as usize + 2; // a payload byte
        bytes[flip_at] ^= 0x40;
        fs::write(&latest, &bytes).unwrap();
        assert!(matches!(
            SnapshotStore::read_file(&latest),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        assert_eq!(store.load("c").unwrap().unwrap(), b"good old");
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn all_generations_corrupt_is_an_error() {
        let store = temp_store("allbad");
        store.save("x", b"only generation").unwrap();
        let latest = store.latest_path("x").unwrap();
        fs::write(&latest, b"garbage").unwrap();
        assert!(matches!(store.load("x"), Err(CkptError::BadMagic { .. })));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let store = temp_store("version");
        store.save("v", b"payload").unwrap();
        let latest = store.latest_path("v").unwrap();
        let mut bytes = fs::read(&latest).unwrap();
        bytes[8] = 0xFF; // clobber the version field
        fs::write(&latest, &bytes).unwrap();
        assert!(matches!(
            SnapshotStore::read_file(&latest),
            Err(CkptError::UnsupportedVersion { .. })
        ));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn invalid_names_rejected() {
        let store = temp_store("names");
        assert!(store.save("", b"x").is_err());
        assert!(store.save("../escape", b"x").is_err());
        assert!(store.save(".hidden", b"x").is_err());
        assert!(store.save("ok-name_1.2", b"x").is_ok());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn temp_files_are_ignored_by_load() {
        let store = temp_store("tmpfiles");
        store.save("n", b"real").unwrap();
        // Simulate a crash mid-write: a stale temp file lying around.
        fs::write(store.dir().join(".tmp-n-0000000042"), b"partial").unwrap();
        assert_eq!(store.load("n").unwrap().unwrap(), b"real");
        fs::remove_dir_all(store.dir()).ok();
    }
}
