//! Crash-safe checkpointing for the BPROM pipeline.
//!
//! The expensive BPROM phases — shadow training and CMA-ES prompt
//! learning through the black-box boundary — can take thousands of
//! oracle queries. A preempted or OOM-killed audit must not burn its
//! whole query budget: this crate provides the primitives that make
//! *resume* a correctness property rather than a best-effort hack.
//!
//! Four pieces, all `std`-only:
//!
//! - [`SnapshotStore`] — atomic, versioned, checksummed snapshot files.
//!   Writes go to a temp file, are fsynced, then renamed into place, so
//!   a crash leaves either the old snapshot or the new one, never a
//!   torn hybrid. Truncation and corruption surface as typed
//!   [`CkptError`]s, never panics or silent garbage, and the store
//!   falls back to the previous good snapshot when one exists.
//! - [`Encoder`] / [`Decoder`] — a bit-exact binary codec. Floats are
//!   stored via [`f32::to_bits`], so a restored optimizer or model is
//!   *byte-identical* to the one that was snapshotted.
//! - [`Journal`] — an append-only, fsync-per-entry stage journal with
//!   per-entry checksums. A torn tail (the crash interrupted an append)
//!   is detected and dropped; corruption anywhere else is a typed
//!   error.
//! - [`crash_point`] — deterministic crash injection. With
//!   `BPROM_CRASH_AFTER=n` in the environment the process exits with
//!   [`CRASH_EXIT_CODE`] at the `n`-th checkpoint boundary, which lets
//!   CI sweep every kill point exhaustively and assert byte-identical
//!   resume.
//!
//! The determinism contract this enables (see `bprom`'s `resume_from`):
//! a pipeline killed at *any* checkpoint boundary and resumed produces
//! a byte-identical `DetectionReport` to an uninterrupted run, at any
//! `BPROM_THREADS`, including under a hostile `FaultyOracle` stack.

mod codec;
mod crash;
mod error;
mod journal;
mod store;

pub use codec::{Decoder, Encoder};
pub use crash::{crash_point, crossings, reset_crossings, set_crash_after, CRASH_EXIT_CODE};
pub use error::CkptError;
pub use journal::Journal;
pub use store::SnapshotStore;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CkptError>;

/// The FNV-1a 64-bit hash used for snapshot and journal checksums (and
/// run fingerprints). Not cryptographic — it guards against truncation
/// and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
