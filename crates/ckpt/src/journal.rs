//! Append-only stage journal with per-entry checksums.

use crate::{fnv1a64, CkptError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Per-entry framing: u32 payload length + u64 FNV-1a checksum.
const FRAME_LEN: usize = 4 + 8;

/// An append-only journal of completed pipeline units.
///
/// Each entry is length-prefixed and checksummed, and every append is
/// fsynced before returning, so an entry either survives a crash whole
/// or not at all. On open, a *torn tail* — the single partially-written
/// entry a crash mid-append can leave — is detected, dropped, and
/// truncated away; damage anywhere before the tail is a typed
/// [`CkptError::Corrupt`] (the journal is append-only, so mid-file
/// corruption means bit rot, not a crash).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and replays it,
    /// returning the journal handle plus every intact entry in append
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] on filesystem failure and
    /// [`CkptError::Corrupt`] for non-tail corruption.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Self, Vec<Vec<u8>>)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| CkptError::io(parent, e))?;
        }
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CkptError::io(&path, e)),
        };
        let mut entries = Vec::new();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        while pos < bytes.len() {
            // An incomplete frame or body at the very end of the file is
            // a torn append; it is dropped and truncated away below.
            if bytes.len() - pos < FRAME_LEN {
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let checksum =
                u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8-byte slice"));
            let body_start = pos + FRAME_LEN;
            if bytes.len() - body_start < len {
                break;
            }
            let body = &bytes[body_start..body_start + len];
            if fnv1a64(body) != checksum {
                // A checksum mismatch on the *last* entry is a torn
                // append (the length landed but the body didn't finish);
                // anywhere else it is corruption.
                if body_start + len == bytes.len() {
                    break;
                }
                return Err(CkptError::corrupt(format!(
                    "journal {} entry at byte {pos} fails its checksum",
                    path.display()
                )));
            }
            entries.push(body.to_vec());
            pos = body_start + len;
            valid_end = pos;
        }
        if valid_end < bytes.len() {
            // Drop the torn tail so future appends start on a clean frame.
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| CkptError::io(&path, e))?;
            file.set_len(valid_end as u64)
                .and_then(|()| file.sync_all())
                .map_err(|e| CkptError::io(&path, e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CkptError::io(&path, e))?;
        Ok((Journal { file, path }, entries))
    }

    /// Appends one entry and fsyncs it durable before returning.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] on write/sync failure and
    /// [`CkptError::Corrupt`] for entries over `u32::MAX` bytes.
    pub fn append(&mut self, entry: &[u8]) -> Result<()> {
        let len = u32::try_from(entry.len())
            .map_err(|_| CkptError::corrupt(format!("journal entry too large: {}", entry.len())))?;
        let mut frame = Vec::with_capacity(FRAME_LEN + entry.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a64(entry).to_le_bytes());
        frame.extend_from_slice(entry);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| CkptError::io(&self.path, e))
    }

    /// The file backing this journal.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bprom-ckpt-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.journal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_and_replay() {
        let path = temp_journal("replay");
        {
            let (mut j, entries) = Journal::open(&path).unwrap();
            assert!(entries.is_empty());
            j.append(b"one").unwrap();
            j.append(b"two").unwrap();
        }
        let (_, entries) = Journal::open(&path).unwrap();
        assert_eq!(entries, vec![b"one".to_vec(), b"two".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_dropped_and_truncated() {
        let path = temp_journal("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(b"durable").unwrap();
            j.append(b"about to be torn").unwrap();
        }
        // Chop into the last entry's body, simulating a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut j, entries) = Journal::open(&path).unwrap();
        assert_eq!(entries, vec![b"durable".to_vec()]);
        // The tail was truncated, so new appends replay cleanly.
        j.append(b"after recovery").unwrap();
        drop(j);
        let (_, entries) = Journal::open(&path).unwrap();
        assert_eq!(
            entries,
            vec![b"durable".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_typed_error() {
        let path = temp_journal("midfile");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(b"first entry body").unwrap();
            j.append(b"second entry body").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the FIRST entry's body (not the tail).
        bytes[FRAME_LEN + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&path),
            Err(CkptError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
