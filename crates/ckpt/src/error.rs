use std::fmt;
use std::path::PathBuf;

/// Error type for checkpoint operations.
///
/// Every way a snapshot or journal can be damaged — truncated writes,
/// flipped bits, wrong format version — maps to a dedicated variant, so
/// callers can distinguish "no checkpoint yet" from "checkpoint exists
/// but is unusable" and fall back accordingly. Nothing in this crate
/// panics on bad input bytes.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or the first bytes were destroyed).
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The snapshot declares a format version this build cannot read.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found in the header.
        version: u32,
    },
    /// The file is shorter than its header-declared payload — a torn or
    /// interrupted write.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match — bit rot or tampering.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
    },
    /// Structurally invalid content (journal framing, impossible record
    /// fields, fingerprint mismatch).
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The payload bytes do not decode as the expected record layout.
    Decode {
        /// What was expected and what was found.
        reason: String,
    },
    /// A snapshot was requested by name but no file (valid or not)
    /// exists for it.
    NoSnapshot {
        /// The requested snapshot name.
        name: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, source } => write!(f, "ckpt I/O on {}: {source}", path.display()),
            CkptError::BadMagic { path } => {
                write!(f, "{} is not a bprom snapshot (bad magic)", path.display())
            }
            CkptError::UnsupportedVersion { path, version } => {
                write!(
                    f,
                    "{} uses unsupported snapshot version {version}",
                    path.display()
                )
            }
            CkptError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} is truncated: header promises {expected} payload bytes, file holds {actual}",
                path.display()
            ),
            CkptError::ChecksumMismatch { path } => {
                write!(f, "{} failed its checksum", path.display())
            }
            CkptError::Corrupt { reason } => write!(f, "corrupt checkpoint state: {reason}"),
            CkptError::Decode { reason } => write!(f, "snapshot decode error: {reason}"),
            CkptError::NoSnapshot { name } => write!(f, "no snapshot named {name:?}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CkptError {
    /// Wraps an I/O error with the path it happened on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CkptError::Io {
            path: path.into(),
            source,
        }
    }

    /// Shorthand for a [`CkptError::Decode`].
    pub fn decode(reason: impl Into<String>) -> Self {
        CkptError::Decode {
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`CkptError::Corrupt`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        CkptError::Corrupt {
            reason: reason.into(),
        }
    }
}
