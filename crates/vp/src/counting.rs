//! Query-budget accounting at the black-box boundary.
//!
//! [`CountingOracle`] wraps any [`BlackBoxModel`] and records every query
//! batch: an exact local tally (images and batches, readable by the
//! caller even with telemetry disabled) plus, when a `bprom-obs` session
//! is installed, the `oracle.queries` counter and the
//! `oracle.query_ns` / `oracle.batch_size` histograms.

use crate::{BlackBoxModel, OracleStats, QueryOutcome, Result};
use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A [`BlackBoxModel`] wrapper that meters queries passing through it.
///
/// Metering is strictly passive: the wrapped oracle sees the exact same
/// batches in the exact same order, so detection results are unchanged.
///
/// The tally is atomic, so one `CountingOracle` can be shared across
/// `bprom-par` workers; totals stay exact under concurrent queries
/// (relaxed increments are still never lost, only unordered).
pub struct CountingOracle<'a> {
    inner: &'a dyn BlackBoxModel,
    queries: AtomicU64,
    batches: AtomicU64,
}

impl std::fmt::Debug for CountingOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingOracle")
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .field("batches", &self.batches.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'a> CountingOracle<'a> {
    /// Wraps an oracle; the local tally starts at zero.
    pub fn new(inner: &'a dyn BlackBoxModel) -> Self {
        CountingOracle {
            inner,
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// Images submitted through *this wrapper* (unlike
    /// [`BlackBoxModel::queries_used`], which is the wrapped oracle's
    /// lifetime total).
    pub fn local_queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Query batches submitted through this wrapper.
    pub fn local_batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

impl BlackBoxModel for CountingOracle<'_> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        let timed = bprom_obs::enabled();
        let start = timed.then(Instant::now);
        let out = self.inner.query(batch)?;
        // Count only successful queries, mirroring the inner oracle.
        let n = batch.shape()[0] as u64;
        self.queries.fetch_add(n, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = start {
            bprom_obs::observe("oracle.query_ns", start.elapsed().as_nanos() as u64);
            bprom_obs::observe("oracle.batch_size", n);
            bprom_obs::counter_add("oracle.queries", n);
            bprom_obs::counter_add("oracle.batches", 1);
        }
        Ok(out)
    }

    /// Attempt-level metering: unlike [`CountingOracle::query`], which
    /// bills only delivered responses, every attempt that reaches this
    /// wrapper is counted — faulted or not. A retry layer *outside* this
    /// wrapper therefore bills each retry it makes (a real endpoint
    /// receives — and meters — the dropped request too), while a retry
    /// layer *inside* it bills each logical query once.
    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        let timed = bprom_obs::enabled();
        let start = timed.then(Instant::now);
        let out = self.inner.try_query_batch(batch)?;
        let n = batch.shape()[0] as u64;
        self.queries.fetch_add(n, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = start {
            bprom_obs::observe("oracle.query_ns", start.elapsed().as_nanos() as u64);
            bprom_obs::observe("oracle.batch_size", n);
            bprom_obs::counter_add("oracle.queries", n);
            bprom_obs::counter_add("oracle.batches", 1);
        }
        Ok(out)
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn queries_used(&self) -> u64 {
        self.inner.queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats()
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.inner.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.inner.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryOracle;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::Rng;

    #[test]
    fn counts_match_inner_oracle() {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let warmup = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        oracle.query(&warmup).unwrap();
        assert_eq!(oracle.queries_used(), 2);

        let batch = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let counting = CountingOracle::new(&oracle);
        counting.query(&batch).unwrap();
        counting.query(&batch).unwrap();
        // Local tally counts only wrapper traffic; queries_used is lifetime.
        assert_eq!(counting.local_queries(), 8);
        assert_eq!(counting.local_batches(), 2);
        assert_eq!(counting.queries_used(), 10);
        assert_eq!(counting.num_classes(), 5);
    }

    #[test]
    fn failed_queries_are_not_counted() {
        let mut rng = Rng::new(1);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let counting = CountingOracle::new(&oracle);
        assert!(counting.query(&Tensor::zeros(&[3, 8, 8])).is_err());
        assert_eq!(counting.local_queries(), 0);
        assert_eq!(counting.local_batches(), 0);
    }

    #[test]
    fn concurrent_queries_are_counted_exactly() {
        let mut rng = Rng::new(3);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let counting = CountingOracle::new(&oracle);
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let threads = 4;
        let per_thread = 16;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        counting.query(&batch).unwrap();
                    }
                });
            }
        });
        let total_batches = (threads * per_thread) as u64;
        assert_eq!(counting.local_batches(), total_batches);
        assert_eq!(counting.local_queries(), total_batches * 2);
        assert_eq!(counting.queries_used(), total_batches * 2);
    }

    #[test]
    fn telemetry_records_oracle_traffic() {
        let mut rng = Rng::new(2);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let session = bprom_obs::Session::begin("counting-test");
        let counting = CountingOracle::new(&oracle);
        counting.query(&batch).unwrap();
        let snapshot = session.finish();
        assert_eq!(snapshot.counter("oracle.queries"), 4);
        assert_eq!(snapshot.counter("oracle.batches"), 1);
        let hist = snapshot.histograms.get("oracle.batch_size").unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.min(), Some(4));
    }
}
