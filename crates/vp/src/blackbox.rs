use crate::{Result, VpError};
use bprom_ckpt::{Decoder, Encoder};
use bprom_nn::{softmax, Layer, Sequential};
use bprom_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

/// A *transient* query failure at the oracle boundary — the kind a real
/// MLaaS endpoint produces and a client is expected to retry, as opposed
/// to a hard error (bad batch shape, broken model) that no retry fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFault {
    /// The request was dropped before producing a response (network
    /// transient, server hiccup).
    Dropped,
    /// The caller exceeded the endpoint's rate limit; the request will
    /// succeed once the window resets.
    RateLimited,
}

impl std::fmt::Display for QueryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryFault::Dropped => write!(f, "request dropped"),
            QueryFault::RateLimited => write!(f, "rate limited"),
        }
    }
}

/// The in-band outcome of one query attempt: a confidence matrix, or a
/// retryable [`QueryFault`]. Hard errors live in the surrounding
/// [`Result`].
pub type QueryOutcome = std::result::Result<Tensor, QueryFault>;

/// Cumulative fault/retry accounting exposed by an oracle stack.
///
/// Plain oracles report zeros; fault-injecting and retrying decorators
/// (the `bprom-faults` crate) add their own tallies to their inner
/// oracle's, so reading the outermost wrapper sees the whole stack.
/// Snapshots taken before and after a pipeline phase subtract
/// ([`OracleStats::delta_since`]) to give that phase's share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Query attempts rejected with a transient [`QueryFault`].
    pub faults_injected: u64,
    /// Delivered responses that were degraded (quantized, truncated,
    /// jittered) relative to the true confidence vector.
    pub degraded_responses: u64,
    /// Retry attempts performed after a transient fault.
    pub retries: u64,
    /// Queries that exhausted their retry budget and surfaced a fault.
    pub retry_exhausted: u64,
    /// Virtual backoff time accumulated while retrying, in milliseconds
    /// (no wall-clock sleeping happens; see `bprom-faults::RetryPolicy`).
    pub backoff_virtual_ms: u64,
    /// Query rows served from a content-addressed cache instead of the
    /// provider (see `bprom-qcache`).
    pub cache_hits: u64,
    /// Deduplicated query rows a cache forwarded to the provider.
    pub cache_misses: u64,
    /// Cache entries evicted by a bounded-memory (LRU) policy.
    pub cache_evictions: u64,
    /// Responses fabricated by an adaptive (probe-detecting) endpoint
    /// instead of answered honestly (see `bprom-faults::AdaptiveOracle`).
    pub evasive_responses: u64,
}

impl OracleStats {
    /// Component-wise difference against an earlier snapshot of the same
    /// (monotonic) stats; saturates at zero for safety.
    pub fn delta_since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            degraded_responses: self
                .degraded_responses
                .saturating_sub(earlier.degraded_responses),
            retries: self.retries.saturating_sub(earlier.retries),
            retry_exhausted: self.retry_exhausted.saturating_sub(earlier.retry_exhausted),
            backoff_virtual_ms: self
                .backoff_virtual_ms
                .saturating_sub(earlier.backoff_virtual_ms),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            evasive_responses: self
                .evasive_responses
                .saturating_sub(earlier.evasive_responses),
        }
    }

    /// Component-wise sum (for chaining a decorator's own tally onto its
    /// inner oracle's).
    pub fn merged(&self, other: &OracleStats) -> OracleStats {
        OracleStats {
            faults_injected: self.faults_injected + other.faults_injected,
            degraded_responses: self.degraded_responses + other.degraded_responses,
            retries: self.retries + other.retries,
            retry_exhausted: self.retry_exhausted + other.retry_exhausted,
            backoff_virtual_ms: self.backoff_virtual_ms + other.backoff_virtual_ms,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            evasive_responses: self.evasive_responses + other.evasive_responses,
        }
    }
}

/// The black-box boundary: a model that can only be *queried*.
///
/// The paper's defender has "no access to the poisoned dataset, model
/// structure, or parameters … detection involves only black-box queries on
/// the model to obtain confidence vectors" (Section 4). Code written
/// against this trait is compiler-checked to respect that boundary.
///
/// Queries go through `&self` and implementations are `Send + Sync`: a
/// deployed MLaaS endpoint serves concurrent clients, and the CMA-ES
/// candidate loop in `bprom-par` shares one oracle across workers the
/// same way. Implementations keep query accounting exact under
/// concurrency (atomics).
pub trait BlackBoxModel: Send + Sync {
    /// Returns a `[n, k]` matrix of confidence vectors (softmax
    /// probabilities) for a `[n, c, h, w]` input batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape is incompatible with the model.
    fn query(&self, batch: &Tensor) -> Result<Tensor>;

    /// Fallible variant of [`BlackBoxModel::query`]: transient faults are
    /// returned *in band* as `Ok(Err(fault))` so retry layers can react,
    /// while hard errors (bad shapes, model failures) stay in the outer
    /// [`Result`].
    ///
    /// Infallible oracles keep this default (which never faults), so
    /// plain implementations like [`QueryOracle`] are untouched; the
    /// decorators in `bprom-faults` override it to inject and absorb
    /// faults.
    ///
    /// # Errors
    ///
    /// Returns a hard (non-retryable) error exactly when
    /// [`BlackBoxModel::query`] would.
    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        match self.query(batch) {
            Ok(probs) => Ok(Ok(probs)),
            Err(VpError::OracleFault { fault, .. }) => Ok(Err(fault)),
            Err(e) => Err(e),
        }
    }

    /// Length of the confidence vector (number of source classes `K_S`).
    fn num_classes(&self) -> usize;

    /// Number of *images* submitted so far (query-budget accounting).
    fn queries_used(&self) -> u64;

    /// Cumulative fault/retry accounting for this oracle stack. Plain
    /// oracles report all-zero stats; decorators chain their tallies onto
    /// their inner oracle's (see [`OracleStats`]).
    fn oracle_stats(&self) -> OracleStats {
        OracleStats::default()
    }

    /// Serializes any memoized query state this stack holds (see
    /// `bprom-qcache`) into `enc`, returning `true` if something was
    /// written. Oracles without a cache keep this default and return
    /// `false`; passive decorators forward to their inner oracle so a
    /// checkpoint snapshot can reach the cache through the whole stack.
    fn export_cache(&self, enc: &mut Encoder) -> bool {
        let _ = enc;
        false
    }

    /// Restores memoized query state previously written by
    /// [`BlackBoxModel::export_cache`]. The cacheless default ignores the
    /// payload; decorators forward to their inner oracle.
    ///
    /// # Errors
    ///
    /// Returns an error when the payload is malformed for the receiving
    /// cache (wrong version, truncated bytes).
    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        let _ = dec;
        Ok(())
    }
}

/// Every `&T` is itself a black-box oracle, forwarding to `T`. This lets
/// owning decorators (e.g. `bprom-qcache`'s `CachingOracle<B>`) wrap a
/// *borrowed* oracle without a dedicated borrowing variant.
impl<T: BlackBoxModel + ?Sized> BlackBoxModel for &T {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        (**self).query(batch)
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        (**self).try_query_batch(batch)
    }

    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }

    fn queries_used(&self) -> u64 {
        (**self).queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        (**self).oracle_stats()
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        (**self).export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        (**self).import_cache(dec)
    }
}

/// Wraps an owned [`Sequential`] as a query-only oracle.
///
/// Once a model is wrapped, the only remaining interface is
/// [`BlackBoxModel::query`] — the detector cannot reach weights or run
/// backward passes. Queries run through the model's side-effect-free
/// [`Layer::forward_eval`] path, so the oracle can serve many threads
/// concurrently.
pub struct QueryOracle {
    model: Sequential,
    num_classes: usize,
    queries: AtomicU64,
}

impl std::fmt::Debug for QueryOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOracle")
            .field("num_classes", &self.num_classes)
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryOracle {
    /// Seals a model behind the query-only interface.
    pub fn new(model: Sequential, num_classes: usize) -> Self {
        QueryOracle {
            model,
            num_classes,
            queries: AtomicU64::new(0),
        }
    }

    /// Unseals the oracle, returning the wrapped model. Intended for the
    /// oracle's *owner* (e.g. an experiment harness reclaiming a model it
    /// wrapped); a detector holding only `&dyn BlackBoxModel` cannot
    /// call this.
    pub fn into_inner(self) -> Sequential {
        self.model
    }
}

impl BlackBoxModel for QueryOracle {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        if batch.rank() != 4 {
            return Err(VpError::InvalidConfig {
                reason: format!("query expects [n, c, h, w], got {:?}", batch.shape()),
            });
        }
        self.queries
            .fetch_add(batch.shape()[0] as u64, Ordering::Relaxed);
        let logits = self.model.forward_eval(batch)?;
        Ok(softmax(&logits)?)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn queries_used(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::Rng;

    #[test]
    fn oracle_returns_probabilities_and_counts_queries() {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let probs = oracle.query(&batch).unwrap();
        assert_eq!(probs.shape(), &[4, 5]);
        for i in 0..4 {
            let sum: f32 = probs.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(oracle.queries_used(), 4);
        oracle.query(&batch).unwrap();
        assert_eq!(oracle.queries_used(), 8);
    }

    #[test]
    fn oracle_rejects_bad_shape() {
        let mut rng = Rng::new(1);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        assert!(oracle.query(&Tensor::zeros(&[3, 8, 8])).is_err());
    }

    #[test]
    fn concurrent_queries_are_deterministic_and_counted() {
        let mut rng = Rng::new(2);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let reference = oracle.query(&batch).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(oracle.query(&batch).unwrap(), reference);
                    }
                });
            }
        });
        assert_eq!(oracle.queries_used(), 2 + 4 * 8 * 2);
    }
}
