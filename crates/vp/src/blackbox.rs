use crate::{Result, VpError};
use bprom_nn::{softmax, Layer, Sequential};
use bprom_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

/// The black-box boundary: a model that can only be *queried*.
///
/// The paper's defender has "no access to the poisoned dataset, model
/// structure, or parameters … detection involves only black-box queries on
/// the model to obtain confidence vectors" (Section 4). Code written
/// against this trait is compiler-checked to respect that boundary.
///
/// Queries go through `&self` and implementations are `Send + Sync`: a
/// deployed MLaaS endpoint serves concurrent clients, and the CMA-ES
/// candidate loop in `bprom-par` shares one oracle across workers the
/// same way. Implementations keep query accounting exact under
/// concurrency (atomics).
pub trait BlackBoxModel: Send + Sync {
    /// Returns a `[n, k]` matrix of confidence vectors (softmax
    /// probabilities) for a `[n, c, h, w]` input batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch shape is incompatible with the model.
    fn query(&self, batch: &Tensor) -> Result<Tensor>;

    /// Length of the confidence vector (number of source classes `K_S`).
    fn num_classes(&self) -> usize;

    /// Number of *images* submitted so far (query-budget accounting).
    fn queries_used(&self) -> u64;
}

/// Wraps an owned [`Sequential`] as a query-only oracle.
///
/// Once a model is wrapped, the only remaining interface is
/// [`BlackBoxModel::query`] — the detector cannot reach weights or run
/// backward passes. Queries run through the model's side-effect-free
/// [`Layer::forward_eval`] path, so the oracle can serve many threads
/// concurrently.
pub struct QueryOracle {
    model: Sequential,
    num_classes: usize,
    queries: AtomicU64,
}

impl std::fmt::Debug for QueryOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOracle")
            .field("num_classes", &self.num_classes)
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryOracle {
    /// Seals a model behind the query-only interface.
    pub fn new(model: Sequential, num_classes: usize) -> Self {
        QueryOracle {
            model,
            num_classes,
            queries: AtomicU64::new(0),
        }
    }

    /// Unseals the oracle, returning the wrapped model. Intended for the
    /// oracle's *owner* (e.g. an experiment harness reclaiming a model it
    /// wrapped); a detector holding only `&dyn BlackBoxModel` cannot
    /// call this.
    pub fn into_inner(self) -> Sequential {
        self.model
    }
}

impl BlackBoxModel for QueryOracle {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        if batch.rank() != 4 {
            return Err(VpError::InvalidConfig {
                reason: format!("query expects [n, c, h, w], got {:?}", batch.shape()),
            });
        }
        self.queries
            .fetch_add(batch.shape()[0] as u64, Ordering::Relaxed);
        let logits = self.model.forward_eval(batch)?;
        Ok(softmax(&logits)?)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn queries_used(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::Rng;

    #[test]
    fn oracle_returns_probabilities_and_counts_queries() {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let probs = oracle.query(&batch).unwrap();
        assert_eq!(probs.shape(), &[4, 5]);
        for i in 0..4 {
            let sum: f32 = probs.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(oracle.queries_used(), 4);
        oracle.query(&batch).unwrap();
        assert_eq!(oracle.queries_used(), 8);
    }

    #[test]
    fn oracle_rejects_bad_shape() {
        let mut rng = Rng::new(1);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        assert!(oracle.query(&Tensor::zeros(&[3, 8, 8])).is_err());
    }

    #[test]
    fn concurrent_queries_are_deterministic_and_counted() {
        let mut rng = Rng::new(2);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 5);
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let reference = oracle.query(&batch).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(oracle.query(&batch).unwrap(), reference);
                    }
                });
            }
        });
        assert_eq!(oracle.queries_used(), 2 + 4 * 8 * 2);
    }
}
