//! Separable CMA-ES (Ros & Hansen, 2008): the gradient-free optimizer used
//! to learn visual prompts through the black-box boundary.
//!
//! The paper names CMA-ES for prompting the suspicious model. Prompt
//! borders have hundreds of parameters, where full-covariance CMA-ES is
//! cubic per update; the separable variant (diagonal covariance, linear
//! time) is the standard choice at this dimensionality and preserves the
//! ask/tell evolution-strategy behaviour.

use crate::{Result, VpError};
use bprom_ckpt::{CkptError, Decoder, Encoder};
use bprom_tensor::Rng;

/// Ask/tell separable CMA-ES minimizer.
#[derive(Debug, Clone)]
pub struct CmaEs {
    dim: usize,
    lambda: usize,
    mu: usize,
    weights: Vec<f32>,
    mu_eff: f32,
    c_sigma: f32,
    d_sigma: f32,
    c_c: f32,
    c_1: f32,
    c_mu: f32,
    chi_n: f32,
    mean: Vec<f32>,
    sigma: f32,
    /// Diagonal of the covariance matrix.
    diag: Vec<f32>,
    p_sigma: Vec<f32>,
    p_c: Vec<f32>,
    /// z-scores of the last asked population (one row per candidate).
    last_z: Vec<Vec<f32>>,
    generation: u32,
    best: Option<(Vec<f32>, f32)>,
}

impl CmaEs {
    /// Creates the optimizer around an initial point with step size
    /// `sigma` and population size `population` (λ).
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] for an empty initial point,
    /// non-positive sigma, or population < 4.
    pub fn new(initial: &[f32], sigma: f32, population: usize) -> Result<Self> {
        let n = initial.len();
        if n == 0 {
            return Err(VpError::InvalidConfig {
                reason: "CMA-ES needs at least one dimension".to_string(),
            });
        }
        if sigma <= 0.0 {
            return Err(VpError::InvalidConfig {
                reason: format!("sigma must be positive, got {sigma}"),
            });
        }
        if population < 4 {
            return Err(VpError::InvalidConfig {
                reason: format!("population must be >= 4, got {population}"),
            });
        }
        let lambda = population;
        let mu = lambda / 2;
        let nf = n as f32;
        // Logarithmic recombination weights.
        let raw: Vec<f32> = (0..mu)
            .map(|i| ((lambda as f32 + 1.0) / 2.0).ln() - ((i + 1) as f32).ln())
            .collect();
        let sum: f32 = raw.iter().sum();
        let weights: Vec<f32> = raw.iter().map(|w| w / sum).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f32>();
        let c_sigma = (mu_eff + 2.0) / (nf + mu_eff + 5.0);
        let d_sigma = 1.0 + 2.0 * (((mu_eff - 1.0) / (nf + 1.0)).sqrt() - 1.0).max(0.0) + c_sigma;
        let c_c = (4.0 + mu_eff / nf) / (nf + 4.0 + 2.0 * mu_eff / nf);
        // Separable variant: learning rates scaled by (n+2)/3.
        let c_1 = (nf + 2.0) / 3.0 * 2.0 / ((nf + 1.3).powi(2) + mu_eff);
        let c_mu = ((nf + 2.0) / 3.0 * 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff)
            / ((nf + 2.0).powi(2) + mu_eff))
            .min(1.0 - c_1);
        let chi_n = nf.sqrt() * (1.0 - 1.0 / (4.0 * nf) + 1.0 / (21.0 * nf * nf));
        Ok(CmaEs {
            dim: n,
            lambda,
            mu,
            weights,
            mu_eff,
            c_sigma,
            d_sigma,
            c_c,
            c_1,
            c_mu,
            chi_n,
            mean: initial.to_vec(),
            sigma,
            diag: vec![1.0; n],
            p_sigma: vec![0.0; n],
            p_c: vec![0.0; n],
            last_z: Vec::new(),
            generation: 0,
            best: None,
        })
    }

    /// Samples a new population of candidate solutions.
    pub fn ask(&mut self, rng: &mut Rng) -> Vec<Vec<f32>> {
        let mut pop = Vec::with_capacity(self.lambda);
        self.last_z.clear();
        for _ in 0..self.lambda {
            let z: Vec<f32> = (0..self.dim).map(|_| rng.normal()).collect();
            let x: Vec<f32> = (0..self.dim)
                .map(|i| self.mean[i] + self.sigma * self.diag[i].sqrt() * z[i])
                .collect();
            self.last_z.push(z);
            pop.push(x);
        }
        pop
    }

    /// Reports fitnesses (to be *minimized*) for the last asked population
    /// and updates the search distribution.
    ///
    /// Non-finite fitness values rank a candidate last without entering
    /// the update arithmetic, so `+∞` is a legal "skip this candidate"
    /// penalty (used when a candidate's oracle queries exhaust their
    /// retries). NaN is rejected: `total_cmp` would quietly sort it
    /// *after* `+∞` and the recombination weights would still be applied
    /// to a candidate whose fitness is meaningless.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] if no population is outstanding
    /// or counts mismatch, and [`VpError::NanFitness`] if any fitness is
    /// NaN (the optimizer state is left untouched, so the caller may
    /// re-`tell` with repaired values).
    pub fn tell(&mut self, solutions: &[Vec<f32>], fitness: &[f32]) -> Result<()> {
        if self.last_z.len() != self.lambda
            || solutions.len() != self.lambda
            || fitness.len() != self.lambda
        {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "tell() expects {} solutions+fitnesses matching the last ask()",
                    self.lambda
                ),
            });
        }
        if let Some(index) = fitness.iter().position(|f| f.is_nan()) {
            return Err(VpError::NanFitness { index });
        }
        let mut order: Vec<usize> = (0..self.lambda).collect();
        order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
        // Track best-ever.
        let top = order[0];
        if self.best.as_ref().is_none_or(|(_, f)| fitness[top] < *f) {
            self.best = Some((solutions[top].clone(), fitness[top]));
        }
        // Recombine mean and mean z-score.
        let mut new_mean = vec![0.0f32; self.dim];
        let mut z_mean = vec![0.0f32; self.dim];
        for (w_i, &idx) in self.weights.iter().zip(&order) {
            for d in 0..self.dim {
                new_mean[d] += w_i * solutions[idx][d];
                z_mean[d] += w_i * self.last_z[idx][d];
            }
        }
        // Step-size path (CSA).
        let cs = self.c_sigma;
        let norm_factor = (cs * (2.0 - cs) * self.mu_eff).sqrt();
        for d in 0..self.dim {
            self.p_sigma[d] = (1.0 - cs) * self.p_sigma[d] + norm_factor * z_mean[d];
        }
        let p_sigma_norm = self.p_sigma.iter().map(|v| v * v).sum::<f32>().sqrt();
        // Covariance path.
        let gen_f = (self.generation + 1) as f32;
        let hsig = p_sigma_norm / (1.0 - (1.0 - cs).powf(2.0 * gen_f)).sqrt() / self.chi_n
            < 1.4 + 2.0 / (self.dim as f32 + 1.0);
        let cc = self.c_c;
        let cc_factor = (cc * (2.0 - cc) * self.mu_eff).sqrt();
        for d in 0..self.dim {
            let y_mean = (new_mean[d] - self.mean[d]) / self.sigma;
            self.p_c[d] = (1.0 - cc) * self.p_c[d] + if hsig { cc_factor * y_mean } else { 0.0 };
        }
        // Diagonal covariance update (rank-1 + rank-µ, separable).
        let delta_hsig = if hsig { 0.0 } else { cc * (2.0 - cc) };
        for d in 0..self.dim {
            let mut rank_mu = 0.0f32;
            for (w_i, &idx) in self.weights.iter().zip(&order) {
                let y = (solutions[idx][d] - self.mean[d]) / self.sigma;
                rank_mu += w_i * y * y;
            }
            self.diag[d] = ((1.0 - self.c_1 - self.c_mu) * self.diag[d]
                + self.c_1 * (self.p_c[d] * self.p_c[d] + delta_hsig * self.diag[d])
                + self.c_mu * rank_mu)
                .max(1e-12);
        }
        // Step-size update.
        self.sigma *= ((cs / self.d_sigma) * (p_sigma_norm / self.chi_n - 1.0))
            .exp()
            .clamp(0.5, 2.0);
        self.mean = new_mean;
        self.generation += 1;
        self.last_z.clear();
        Ok(())
    }

    /// Current distribution mean (the incumbent solution).
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Current global step size σ.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Best solution and fitness seen so far.
    pub fn best(&self) -> Option<(&[f32], f32)> {
        self.best.as_ref().map(|(x, f)| (x.as_slice(), *f))
    }

    /// Population size λ.
    pub fn population(&self) -> usize {
        self.lambda
    }

    /// Completed generations.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Recommended default population size for dimension `n`:
    /// `4 + ⌊3 ln n⌋`.
    pub fn default_population(n: usize) -> usize {
        4 + (3.0 * (n.max(1) as f32).ln()).floor() as usize
    }

    /// Number of parent solutions µ used in recombination.
    pub fn parents(&self) -> usize {
        self.mu
    }

    /// Serializes the complete optimizer state — including the derived
    /// learning-rate constants, verbatim, so a restored optimizer never
    /// recomputes anything — into `enc`. A restore via
    /// [`CmaEs::restore`] continues ask/tell bit-identically.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.lambda);
        enc.put_usize(self.mu);
        enc.put_f32s(&self.weights);
        enc.put_f32(self.mu_eff);
        enc.put_f32(self.c_sigma);
        enc.put_f32(self.d_sigma);
        enc.put_f32(self.c_c);
        enc.put_f32(self.c_1);
        enc.put_f32(self.c_mu);
        enc.put_f32(self.chi_n);
        enc.put_f32s(&self.mean);
        enc.put_f32(self.sigma);
        enc.put_f32s(&self.diag);
        enc.put_f32s(&self.p_sigma);
        enc.put_f32s(&self.p_c);
        enc.put_usize(self.last_z.len());
        for z in &self.last_z {
            enc.put_f32s(z);
        }
        enc.put_u32(self.generation);
        match &self.best {
            Some((x, f)) => {
                enc.put_bool(true);
                enc.put_f32s(x);
                enc.put_f32(*f);
            }
            None => enc.put_bool(false),
        }
    }

    /// Rebuilds an optimizer from bytes written by [`CmaEs::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] when the payload is truncated or the
    /// recorded dimensions are internally inconsistent.
    pub fn restore(dec: &mut Decoder) -> std::result::Result<Self, CkptError> {
        let dim = dec.get_usize()?;
        let lambda = dec.get_usize()?;
        let mu = dec.get_usize()?;
        let weights = dec.get_f32s()?;
        let mu_eff = dec.get_f32()?;
        let c_sigma = dec.get_f32()?;
        let d_sigma = dec.get_f32()?;
        let c_c = dec.get_f32()?;
        let c_1 = dec.get_f32()?;
        let c_mu = dec.get_f32()?;
        let chi_n = dec.get_f32()?;
        let mean = dec.get_f32s()?;
        let sigma = dec.get_f32()?;
        let diag = dec.get_f32s()?;
        let p_sigma = dec.get_f32s()?;
        let p_c = dec.get_f32s()?;
        let z_rows = dec.get_usize()?;
        let mut last_z = Vec::with_capacity(z_rows.min(4096));
        for _ in 0..z_rows {
            last_z.push(dec.get_f32s()?);
        }
        let generation = dec.get_u32()?;
        let best = if dec.get_bool()? {
            let x = dec.get_f32s()?;
            let f = dec.get_f32()?;
            Some((x, f))
        } else {
            None
        };
        if dim == 0 || lambda < 4 || mu == 0 || mu > lambda {
            return Err(CkptError::decode(format!(
                "CMA-ES snapshot has implausible sizes: dim={dim} lambda={lambda} mu={mu}"
            )));
        }
        if weights.len() != mu
            || mean.len() != dim
            || diag.len() != dim
            || p_sigma.len() != dim
            || p_c.len() != dim
            || last_z.iter().any(|z| z.len() != dim)
            || best.as_ref().is_some_and(|(x, _)| x.len() != dim)
        {
            return Err(CkptError::decode(
                "CMA-ES snapshot vector lengths disagree with recorded dimensions".to_string(),
            ));
        }
        Ok(CmaEs {
            dim,
            lambda,
            mu,
            weights,
            mu_eff,
            c_sigma,
            d_sigma,
            c_c,
            c_1,
            c_mu,
            chi_n,
            mean,
            sigma,
            diag,
            p_sigma,
            p_c,
            last_z,
            generation,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimize(f: impl Fn(&[f32]) -> f32, dim: usize, gens: usize, seed: u64) -> (Vec<f32>, f32) {
        let mut rng = Rng::new(seed);
        let init = vec![1.5f32; dim];
        let mut es = CmaEs::new(&init, 0.5, CmaEs::default_population(dim)).unwrap();
        for _ in 0..gens {
            let pop = es.ask(&mut rng);
            let fit: Vec<f32> = pop.iter().map(|x| f(x)).collect();
            es.tell(&pop, &fit).unwrap();
        }
        let (x, v) = es.best().unwrap();
        (x.to_vec(), v)
    }

    #[test]
    fn sphere_converges() {
        let (_, best) = minimize(|x| x.iter().map(|v| v * v).sum(), 10, 150, 1);
        assert!(best < 1e-3, "best={best}");
    }

    #[test]
    fn shifted_ellipsoid_converges() {
        let f = |x: &[f32]| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i + 1) as f32 * (v - 0.7).powi(2))
                .sum::<f32>()
        };
        let (x, best) = minimize(f, 8, 200, 2);
        assert!(best < 1e-2, "best={best}");
        for v in x {
            assert!((v - 0.7).abs() < 0.15, "v={v}");
        }
    }

    #[test]
    fn high_dimensional_progress() {
        // Separable CMA-ES's reason for existence: progress in dim ~300.
        let dim = 300;
        let f = |x: &[f32]| x.iter().map(|v| v * v).sum::<f32>();
        let initial_fitness = f(&vec![1.5f32; dim]);
        let (_, best) = minimize(f, dim, 200, 3);
        assert!(best < initial_fitness * 0.1, "best={best}");
    }

    #[test]
    fn tell_validates_counts() {
        let mut es = CmaEs::new(&[0.0; 4], 0.3, 6).unwrap();
        // tell before ask
        assert!(es.tell(&[], &[]).is_err());
        let mut rng = Rng::new(0);
        let pop = es.ask(&mut rng);
        assert!(es.tell(&pop[..3], &[0.0; 3]).is_err());
        let fit = vec![0.0; 6];
        assert!(es.tell(&pop, &fit).is_ok());
    }

    #[test]
    fn tell_rejects_nan_fitness_without_corrupting_state() {
        let mut es = CmaEs::new(&[0.0; 4], 0.3, 6).unwrap();
        let mut rng = Rng::new(9);
        let pop = es.ask(&mut rng);
        let mut fit = vec![1.0f32; 6];
        fit[3] = f32::NAN;
        match es.tell(&pop, &fit) {
            Err(VpError::NanFitness { index }) => assert_eq!(index, 3),
            other => panic!("expected NanFitness, got {other:?}"),
        }
        // The population is still outstanding: repairing the fitness and
        // re-telling succeeds, and the optimizer advances normally.
        fit[3] = f32::INFINITY;
        es.tell(&pop, &fit).unwrap();
        assert_eq!(es.generation(), 1);
        assert!(es.sigma().is_finite() && es.sigma() > 0.0);
        assert!(es.mean().iter().all(|m| m.is_finite()));
    }

    #[test]
    fn infinite_penalties_rank_last_and_stay_out_of_the_mean() {
        // A population where half the candidates are penalized (retry
        // exhaustion) must still converge using the surviving half.
        let mut rng = Rng::new(11);
        let mut es = CmaEs::new(&[1.5; 6], 0.5, 8).unwrap();
        for _ in 0..120 {
            let pop = es.ask(&mut rng);
            let fit: Vec<f32> = pop
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    if i % 2 == 0 {
                        f32::INFINITY
                    } else {
                        x.iter().map(|v| v * v).sum()
                    }
                })
                .collect();
            es.tell(&pop, &fit).unwrap();
            assert!(es.sigma().is_finite());
            assert!(es.mean().iter().all(|m| m.is_finite()));
        }
        let (_, best) = es.best().unwrap();
        assert!(best.is_finite());
        assert!(best < 0.5, "best={best}");
    }

    #[test]
    fn persist_restore_round_trip_is_bit_identical_for_50_generations() {
        // Satellite contract: an optimizer that is serialized and
        // deserialized every generation must stay bit-identical to one
        // that never touched the codec, for 50 generations, across seeds.
        let f = |x: &[f32]| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i + 1) as f32 * (v - 0.3).powi(2))
                .sum::<f32>()
        };
        for seed in [5u64, 77, 1234] {
            let mut rng_a = Rng::new(seed);
            let mut rng_b = Rng::new(seed);
            let mut a = CmaEs::new(&[1.0; 7], 0.4, 8).unwrap();
            let mut b = CmaEs::new(&[1.0; 7], 0.4, 8).unwrap();
            for generation in 0..50 {
                // Round-trip B through the codec, sometimes mid-generation
                // (after ask, before tell) so outstanding populations
                // survive too.
                let pop_a = a.ask(&mut rng_a);
                let pop_b = b.ask(&mut rng_b);
                if generation % 3 == 0 {
                    let mut enc = Encoder::new();
                    b.persist(&mut enc);
                    let bytes = enc.into_bytes();
                    let mut dec = Decoder::new(&bytes);
                    b = CmaEs::restore(&mut dec).unwrap();
                    dec.finish().unwrap();
                }
                let fit_a: Vec<f32> = pop_a.iter().map(|x| f(x)).collect();
                let fit_b: Vec<f32> = pop_b.iter().map(|x| f(x)).collect();
                a.tell(&pop_a, &fit_a).unwrap();
                b.tell(&pop_b, &fit_b).unwrap();
                let mut enc = Encoder::new();
                b.persist(&mut enc);
                let bytes = enc.into_bytes();
                b = CmaEs::restore(&mut Decoder::new(&bytes)).unwrap();

                assert_eq!(a.generation(), b.generation());
                assert_eq!(
                    a.sigma().to_bits(),
                    b.sigma().to_bits(),
                    "seed {seed} gen {generation}: sigma diverged"
                );
                for (x, y) in a.mean().iter().zip(b.mean()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} gen {generation}");
                }
                let (bx_a, bf_a) = a.best().unwrap();
                let (bx_b, bf_b) = b.best().unwrap();
                assert_eq!(bf_a.to_bits(), bf_b.to_bits());
                for (x, y) in bx_a.iter().zip(bx_b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn restore_rejects_inconsistent_snapshot() {
        let es = CmaEs::new(&[0.5; 4], 0.3, 6).unwrap();
        let mut enc = Encoder::new();
        es.persist(&mut enc);
        let mut bytes = enc.into_bytes();
        // Truncation is a typed error, not a panic.
        assert!(CmaEs::restore(&mut Decoder::new(&bytes[..bytes.len() - 3])).is_err());
        // Corrupting the recorded dimension makes the vector lengths
        // disagree with it.
        bytes[0] = 250;
        assert!(CmaEs::restore(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn construction_validates() {
        assert!(CmaEs::new(&[], 0.5, 8).is_err());
        assert!(CmaEs::new(&[0.0], 0.0, 8).is_err());
        assert!(CmaEs::new(&[0.0], 0.5, 2).is_err());
    }

    #[test]
    fn sigma_stays_positive() {
        let mut rng = Rng::new(4);
        let mut es = CmaEs::new(&[0.0; 5], 0.5, 8).unwrap();
        for _ in 0..50 {
            let pop = es.ask(&mut rng);
            let fit: Vec<f32> = pop.iter().map(|x| x.iter().sum::<f32>().abs()).collect();
            es.tell(&pop, &fit).unwrap();
            assert!(es.sigma() > 0.0);
            assert!(es.sigma().is_finite());
        }
        assert_eq!(es.generation(), 50);
    }
}
