//! Visual prompting (VP) / model reprogramming for the BPROM reproduction.
//!
//! VP adapts a *frozen* source-domain classifier to a target-domain task by
//! learning a pixel border (the *visual prompt* `θ`) around downscaled
//! target images (paper Section 3, Bahng et al. 2022):
//!
//! 1. **Prompt padding** — `x̃ = V(x | θ)`: resize the target image into the
//!    centre of a source-sized canvas and add `θ` on the border.
//! 2. **Prompted prediction** — `ŷ = f_S(x̃)`, using an identity label
//!    mapping (the paper omits the optional output-mapping step).
//! 3. **Prompt training** — optimize `θ` on the target training set:
//!    by backpropagation when the model's gradients are available
//!    ([`train_prompt_backprop`], used for BPROM's shadow models), or with
//!    gradient-free CMA-ES when only black-box queries exist
//!    ([`train_prompt_cmaes`], used for the suspicious model).
//!
//! The [`BlackBoxModel`] trait is the type-enforced black-box boundary:
//! code written against it can only obtain confidence vectors, never
//! weights or gradients.
//!
//! # Example
//!
//! ```
//! use bprom_vp::VisualPrompt;
//! use bprom_tensor::Tensor;
//!
//! # fn main() -> Result<(), bprom_vp::VpError> {
//! // A prompt for 16x16 source inputs with a 4-pixel border.
//! let prompt = VisualPrompt::new(3, 16, 4)?;
//! let target_image = Tensor::zeros(&[3, 8, 8]);
//! let prompted = prompt.apply(&target_image)?;
//! assert_eq!(prompted.shape(), &[3, 16, 16]);
//! # Ok(())
//! # }
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod blackbox;
mod cmaes;
mod counting;
mod error;
mod label_map;
mod prompt;
mod train;

pub use blackbox::{BlackBoxModel, OracleStats, QueryFault, QueryOracle, QueryOutcome};
pub use cmaes::CmaEs;
pub use counting::CountingOracle;
pub use error::VpError;
pub use label_map::LabelMap;
pub use prompt::{PromptStyle, VisualPrompt};
pub use train::{
    prompted_accuracy, prompted_accuracy_blackbox, train_prompt_backprop, train_prompt_cmaes,
    train_prompt_cmaes_ckpt, CkptTrainOutcome, CmaesCheckpoint, FitnessKind, PromptTrainConfig,
    PromptTrainReport,
};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, VpError>;
