use crate::{Result, VpError};
use bprom_ckpt::{CkptError, Decoder, Encoder};
use bprom_tensor::Tensor;

/// Output label mapping between the target task's classes and the source
/// model's classes.
///
/// The paper omits the optional learned output mapping (Section 3, Step 3)
/// and uses the identity assignment `target class i → source class i`,
/// which requires `K_T <= K_S`. A greedy frequency-based assignment is
/// provided for the label-mapping ablation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMap {
    /// `assignment[t]` = source class index representing target class `t`.
    assignment: Vec<usize>,
    source_classes: usize,
}

impl LabelMap {
    /// Identity mapping of `target_classes` onto the first source classes.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] if `target_classes >
    /// source_classes`.
    pub fn identity(target_classes: usize, source_classes: usize) -> Result<Self> {
        if target_classes > source_classes || target_classes == 0 {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "cannot map {target_classes} target classes onto {source_classes} source classes"
                ),
            });
        }
        Ok(LabelMap {
            assignment: (0..target_classes).collect(),
            source_classes,
        })
    }

    /// Greedy frequency mapping: each target class is assigned the source
    /// class the prompted model predicts most often for it (ties and
    /// collisions resolved greedily by descending count).
    ///
    /// `confidences` is `[n, K_S]`; `labels` are target labels.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] on inconsistent inputs.
    pub fn greedy_frequency(
        confidences: &Tensor,
        labels: &[usize],
        target_classes: usize,
    ) -> Result<Self> {
        if confidences.rank() != 2 || confidences.shape()[0] != labels.len() {
            return Err(VpError::InvalidConfig {
                reason: "confidences/labels mismatch in greedy_frequency".to_string(),
            });
        }
        let k_s = confidences.shape()[1];
        if target_classes > k_s {
            return Err(VpError::InvalidConfig {
                reason: format!("{target_classes} target classes exceed {k_s} source classes"),
            });
        }
        // Count argmax predictions per (target class, source class).
        let mut counts = vec![vec![0usize; k_s]; target_classes];
        for (i, &t) in labels.iter().enumerate() {
            if t >= target_classes {
                return Err(VpError::InvalidConfig {
                    reason: format!("label {t} out of range"),
                });
            }
            let row = &confidences.data()[i * k_s..(i + 1) * k_s];
            let mut best = 0;
            for j in 1..k_s {
                if row[j] > row[best] {
                    best = j;
                }
            }
            counts[t][best] += 1;
        }
        // Greedy assignment by descending count, without reuse.
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for (t, row) in counts.iter().enumerate() {
            for (s, &c) in row.iter().enumerate() {
                triples.push((c, t, s));
            }
        }
        triples.sort_by_key(|&(count, _, _)| std::cmp::Reverse(count));
        let mut assignment = vec![usize::MAX; target_classes];
        let mut used = vec![false; k_s];
        for (_, t, s) in triples {
            if assignment[t] == usize::MAX && !used[s] {
                assignment[t] = s;
                used[s] = true;
            }
        }
        // Any unassigned target class gets the first free source class.
        for a in assignment.iter_mut() {
            if *a == usize::MAX {
                let free = used
                    .iter()
                    .position(|&u| !u)
                    .expect("k_t <= k_s guarantees a free class");
                *a = free;
                used[free] = true;
            }
        }
        Ok(LabelMap {
            assignment,
            source_classes: k_s,
        })
    }

    /// Serializes the mapping into `enc` for checkpointing.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_usizes(&self.assignment);
        enc.put_usize(self.source_classes);
    }

    /// Rebuilds a mapping from bytes written by [`LabelMap::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] on truncation or out-of-range
    /// assignments.
    pub fn restore(dec: &mut Decoder) -> std::result::Result<Self, CkptError> {
        let assignment = dec.get_usizes()?;
        let source_classes = dec.get_usize()?;
        if assignment.is_empty() {
            return Err(CkptError::decode("label map snapshot is empty".to_string()));
        }
        if let Some(&bad) = assignment.iter().find(|&&s| s >= source_classes) {
            return Err(CkptError::decode(format!(
                "label map assigns source class {bad}, only {source_classes} exist"
            )));
        }
        Ok(LabelMap {
            assignment,
            source_classes,
        })
    }

    /// Source class representing target class `t`.
    pub fn source_class(&self, t: usize) -> Option<usize> {
        self.assignment.get(t).copied()
    }

    /// Number of target classes.
    pub fn target_classes(&self) -> usize {
        self.assignment.len()
    }

    /// Number of source classes.
    pub fn source_classes(&self) -> usize {
        self.source_classes
    }

    /// Maps a target label to the source label used in the prompted loss.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] for out-of-range labels.
    pub fn map_label(&self, target_label: usize) -> Result<usize> {
        self.source_class(target_label)
            .ok_or_else(|| VpError::InvalidConfig {
                reason: format!("target label {target_label} out of range"),
            })
    }

    /// Classification accuracy of prompted confidences against target
    /// labels under this mapping: a prediction counts when the argmax
    /// source class is the one assigned to the true target class.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] on inconsistent inputs.
    pub fn accuracy(&self, confidences: &Tensor, labels: &[usize]) -> Result<f32> {
        if confidences.rank() != 2 || confidences.shape()[0] != labels.len() {
            return Err(VpError::InvalidConfig {
                reason: "confidences/labels mismatch in accuracy".to_string(),
            });
        }
        if labels.is_empty() {
            return Err(VpError::InvalidConfig {
                reason: "empty evaluation set".to_string(),
            });
        }
        let k_s = confidences.shape()[1];
        let mut correct = 0usize;
        for (i, &t) in labels.iter().enumerate() {
            let want = self.map_label(t)?;
            let row = &confidences.data()[i * k_s..(i + 1) * k_s];
            let mut best = 0;
            for j in 1..k_s {
                if row[j] > row[best] {
                    best = j;
                }
            }
            if best == want {
                correct += 1;
            }
        }
        Ok(correct as f32 / labels.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_requires_enough_source_classes() {
        assert!(LabelMap::identity(10, 10).is_ok());
        assert!(LabelMap::identity(10, 43).is_ok());
        assert!(LabelMap::identity(11, 10).is_err());
        assert!(LabelMap::identity(0, 10).is_err());
    }

    #[test]
    fn identity_maps_straight_through() {
        let map = LabelMap::identity(3, 5).unwrap();
        assert_eq!(map.map_label(2).unwrap(), 2);
        assert!(map.map_label(3).is_err());
    }

    #[test]
    fn accuracy_under_identity() {
        let map = LabelMap::identity(2, 3).unwrap();
        let conf =
            Tensor::from_vec(vec![0.8, 0.1, 0.1, 0.2, 0.7, 0.1, 0.1, 0.1, 0.8], &[3, 3]).unwrap();
        let acc = map.accuracy(&conf, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn persist_restore_round_trip() {
        let map = LabelMap::identity(4, 9).unwrap();
        let mut enc = Encoder::new();
        map.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = LabelMap::restore(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, map);
        // An assignment pointing past the source classes is rejected.
        let mut enc = Encoder::new();
        enc.put_usizes(&[0, 12]);
        enc.put_usize(9);
        let bad = enc.into_bytes();
        assert!(LabelMap::restore(&mut Decoder::new(&bad)).is_err());
    }

    #[test]
    fn greedy_frequency_finds_permutation() {
        // Target class 0 always predicted as source 2, class 1 as source 0.
        let conf = Tensor::from_vec(
            vec![
                0.1, 0.1, 0.8, // t=0 -> s=2
                0.0, 0.2, 0.8, // t=0 -> s=2
                0.9, 0.1, 0.0, // t=1 -> s=0
                0.7, 0.2, 0.1, // t=1 -> s=0
            ],
            &[4, 3],
        )
        .unwrap();
        let map = LabelMap::greedy_frequency(&conf, &[0, 0, 1, 1], 2).unwrap();
        assert_eq!(map.source_class(0), Some(2));
        assert_eq!(map.source_class(1), Some(0));
        assert_eq!(map.accuracy(&conf, &[0, 0, 1, 1]).unwrap(), 1.0);
    }

    #[test]
    fn greedy_handles_collisions() {
        // Both target classes prefer source 1; one must yield.
        let conf = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.0, //
                0.1, 0.9, 0.0, //
                0.2, 0.8, 0.0, //
            ],
            &[3, 3],
        )
        .unwrap();
        let map = LabelMap::greedy_frequency(&conf, &[0, 0, 1], 2).unwrap();
        let (a, b) = (map.source_class(0).unwrap(), map.source_class(1).unwrap());
        assert_ne!(a, b);
        assert_eq!(a, 1, "majority class keeps its preferred source");
    }
}
