use crate::QueryFault;
use bprom_tensor::TensorError;
use std::fmt;

/// Error type for visual-prompting operations.
#[derive(Debug, Clone, PartialEq)]
pub enum VpError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A model forward/backward pass failed.
    Model(String),
    /// A prompt/optimizer configuration is invalid.
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// A transient oracle fault was not absorbed: either no retry layer
    /// was installed, or the retry budget ran out. Callers that can
    /// degrade gracefully (e.g. CMA-ES candidate evaluation) match on
    /// this variant; everything else treats it as a failed query.
    OracleFault {
        /// The last fault observed.
        fault: QueryFault,
        /// Query attempts made before giving up (1 when unretried).
        attempts: u32,
    },
    /// `CmaEs::tell` received a NaN fitness value, which would silently
    /// poison the distribution update.
    NanFitness {
        /// Index of the first NaN entry in the fitness slice.
        index: usize,
    },
    /// A checkpoint snapshot could not be written or restored (see
    /// `bprom-ckpt`; the message carries the typed source error).
    Ckpt(String),
}

impl fmt::Display for VpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpError::Tensor(e) => write!(f, "tensor error: {e}"),
            VpError::Model(msg) => write!(f, "model error: {msg}"),
            VpError::InvalidConfig { reason } => write!(f, "invalid VP config: {reason}"),
            VpError::OracleFault { fault, attempts } => {
                write!(f, "oracle fault after {attempts} attempt(s): {fault}")
            }
            VpError::NanFitness { index } => {
                write!(f, "NaN fitness at index {index} passed to CmaEs::tell")
            }
            VpError::Ckpt(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for VpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VpError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VpError {
    fn from(e: TensorError) -> Self {
        VpError::Tensor(e)
    }
}

impl From<bprom_nn::NnError> for VpError {
    fn from(e: bprom_nn::NnError) -> Self {
        VpError::Model(e.to_string())
    }
}

impl From<bprom_ckpt::CkptError> for VpError {
    fn from(e: bprom_ckpt::CkptError) -> Self {
        VpError::Ckpt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: VpError = TensorError::InvalidParameter { reason: "x".into() }.into();
        assert!(matches!(e, VpError::Tensor(_)));
        let m: VpError = bprom_nn::NnError::InvalidConfig { reason: "y".into() }.into();
        assert!(m.to_string().contains("y"));
    }
}
