use bprom_tensor::TensorError;
use std::fmt;

/// Error type for visual-prompting operations.
#[derive(Debug, Clone, PartialEq)]
pub enum VpError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A model forward/backward pass failed.
    Model(String),
    /// A prompt/optimizer configuration is invalid.
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for VpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpError::Tensor(e) => write!(f, "tensor error: {e}"),
            VpError::Model(msg) => write!(f, "model error: {msg}"),
            VpError::InvalidConfig { reason } => write!(f, "invalid VP config: {reason}"),
        }
    }
}

impl std::error::Error for VpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VpError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VpError {
    fn from(e: TensorError) -> Self {
        VpError::Tensor(e)
    }
}

impl From<bprom_nn::NnError> for VpError {
    fn from(e: bprom_nn::NnError) -> Self {
        VpError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: VpError = TensorError::InvalidParameter { reason: "x".into() }.into();
        assert!(matches!(e, VpError::Tensor(_)));
        let m: VpError = bprom_nn::NnError::InvalidConfig { reason: "y".into() }.into();
        assert!(m.to_string().contains("y"));
    }
}
