use crate::{Result, VpError};
use bprom_ckpt::{CkptError, Decoder, Encoder};
use bprom_tensor::{Rng, Tensor};

/// A trainable visual prompt: additive border noise around a downscaled
/// target image (paper Figure 1a).
///
/// The prompt canvas has the source model's input shape `[c, s, s]`; the
/// inner `(s - 2·border)²` window holds the resized target image and the
/// border holds the trainable parameters `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
/// How the prompt combines with the target image.
pub enum PromptStyle {
    /// Pad style (Tsai et al. 2020, paper Figure 1a): the target image is
    /// resized into the inner window; the border pixels are `θ` alone.
    Pad,
    /// Overlay style (Bahng et al. 2022): the target image is resized to
    /// the full canvas and `θ` is *added* on the border frame.
    #[default]
    Overlay,
}

#[derive(Debug, Clone, PartialEq)]
pub struct VisualPrompt {
    /// Border parameters on a full canvas (inner region is ignored/zero).
    theta: Tensor,
    channels: usize,
    source_size: usize,
    border: usize,
    style: PromptStyle,
}

/// Bilinear image resize `[c, h, h] → [c, t, t]`.
pub(crate) fn resize(image: &Tensor, to: usize) -> Result<Tensor> {
    if image.rank() != 3 {
        return Err(VpError::InvalidConfig {
            reason: format!("resize expects [c, h, w], got {:?}", image.shape()),
        });
    }
    let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
    let mut out = Tensor::zeros(&[c, to, to]);
    for ci in 0..c {
        for y in 0..to {
            for x in 0..to {
                let sy = (y as f32 + 0.5) * h as f32 / to as f32 - 0.5;
                let sx = (x as f32 + 0.5) * w as f32 / to as f32 - 0.5;
                let sy = sy.clamp(0.0, (h - 1) as f32);
                let sx = sx.clamp(0.0, (w - 1) as f32);
                let (y0, x0) = (sy as usize, sx as usize);
                let (y1, x1) = ((y0 + 1).min(h - 1), (x0 + 1).min(w - 1));
                let (fy, fx) = (sy - y0 as f32, sx - x0 as f32);
                let px = |yy: usize, xx: usize| image.data()[(ci * h + yy) * w + xx];
                let top = px(y0, x0) * (1.0 - fx) + px(y0, x1) * fx;
                let bot = px(y1, x0) * (1.0 - fx) + px(y1, x1) * fx;
                out.data_mut()[(ci * to + y) * to + x] = top * (1.0 - fy) + bot * fy;
            }
        }
    }
    Ok(out)
}

impl VisualPrompt {
    /// Creates a zero-initialized prompt.
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] if the border leaves no inner
    /// window (`2·border >= source_size`) or is zero.
    pub fn new(channels: usize, source_size: usize, border: usize) -> Result<Self> {
        if border == 0 || 2 * border >= source_size {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "border {border} invalid for source size {source_size} (need 0 < 2b < s)"
                ),
            });
        }
        Ok(VisualPrompt {
            theta: Tensor::zeros(&[channels, source_size, source_size]),
            channels,
            source_size,
            border,
            style: PromptStyle::default(),
        })
    }

    /// Sets the prompt style (pad vs overlay); returns `self` for chaining.
    pub fn with_style(mut self, style: PromptStyle) -> Self {
        self.style = style;
        self
    }

    /// The prompt's combination style.
    pub fn style(&self) -> PromptStyle {
        self.style
    }

    /// Creates a small-random-initialized prompt (helps CMA-ES start from a
    /// non-degenerate point).
    ///
    /// # Errors
    ///
    /// Same conditions as [`VisualPrompt::new`].
    pub fn random(
        channels: usize,
        source_size: usize,
        border: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        let mut p = Self::new(channels, source_size, border)?;
        let mask = p.border_mask();
        for (v, &m) in p.theta.data_mut().iter_mut().zip(mask.data()) {
            if m > 0.0 {
                *v = rng.uniform_in(-0.1, 0.1);
            }
        }
        Ok(p)
    }

    /// Side length of the inner window holding the resized target image.
    pub fn inner_size(&self) -> usize {
        self.source_size - 2 * self.border
    }

    /// Border width in pixels.
    pub fn border(&self) -> usize {
        self.border
    }

    /// Source-canvas side length.
    pub fn source_size(&self) -> usize {
        self.source_size
    }

    /// A `[c, s, s]` mask with 1.0 on the trainable border, 0.0 inside.
    pub fn border_mask(&self) -> Tensor {
        let s = self.source_size;
        let b = self.border;
        let mut mask = Tensor::ones(&[self.channels, s, s]);
        for c in 0..self.channels {
            for y in b..s - b {
                for x in b..s - b {
                    mask.data_mut()[(c * s + y) * s + x] = 0.0;
                }
            }
        }
        mask
    }

    /// Prompts one target image: `V(x | θ)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the image is not `[c, t, t]` with the prompt's
    /// channel count.
    pub fn apply(&self, target_image: &Tensor) -> Result<Tensor> {
        if target_image.rank() != 3 || target_image.shape()[0] != self.channels {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "prompt expects [{}, t, t] images, got {:?}",
                    self.channels,
                    target_image.shape()
                ),
            });
        }
        let s = self.source_size;
        match self.style {
            PromptStyle::Pad => {
                let isz = self.inner_size();
                let inner = resize(target_image, isz)?;
                let b = self.border;
                let mut out = self.theta.clone();
                out.clamp_in_place(0.0, 1.0);
                for c in 0..self.channels {
                    for y in 0..isz {
                        let src = (c * isz + y) * isz;
                        let dst = (c * s + y + b) * s + b;
                        out.data_mut()[dst..dst + isz]
                            .copy_from_slice(&inner.data()[src..src + isz]);
                    }
                }
                Ok(out)
            }
            PromptStyle::Overlay => {
                let mut out = resize(target_image, s)?;
                let mask = self.border_mask();
                for ((o, &t), &m) in out
                    .data_mut()
                    .iter_mut()
                    .zip(self.theta.data())
                    .zip(mask.data())
                {
                    *o = (*o + t * m).clamp(0.0, 1.0);
                }
                Ok(out)
            }
        }
    }

    /// Prompts a batch `[n, c, t, t] → [n, c, s, s]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VisualPrompt::apply`].
    pub fn apply_batch(&self, images: &Tensor) -> Result<Tensor> {
        if images.rank() != 4 {
            return Err(VpError::InvalidConfig {
                reason: format!("apply_batch expects [n, c, t, t], got {:?}", images.shape()),
            });
        }
        let n = images.shape()[0];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.apply(&images.sample(i)?)?);
        }
        Ok(Tensor::stack(&out)?)
    }

    /// Accumulates a gradient step: `θ += scale · (grad ⊙ border_mask)`.
    /// `grad` must be a `[c, s, s]` gradient with respect to the prompted
    /// input.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn apply_gradient(&mut self, grad: &Tensor, scale: f32) -> Result<()> {
        if grad.shape() != self.theta.shape() {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "gradient shape {:?} != prompt shape {:?}",
                    grad.shape(),
                    self.theta.shape()
                ),
            });
        }
        let mask = self.border_mask();
        for ((t, &g), &m) in self
            .theta
            .data_mut()
            .iter_mut()
            .zip(grad.data())
            .zip(mask.data())
        {
            *t += scale * g * m;
        }
        Ok(())
    }

    /// Number of trainable border parameters (the CMA-ES dimension).
    pub fn num_border_params(&self) -> usize {
        let s = self.source_size;
        let i = self.inner_size();
        self.channels * (s * s - i * i)
    }

    /// Extracts the border parameters as a flat vector (CMA-ES interface).
    pub fn to_flat(&self) -> Vec<f32> {
        let mask = self.border_mask();
        self.theta
            .data()
            .iter()
            .zip(mask.data())
            .filter(|(_, &m)| m > 0.0)
            .map(|(&v, _)| v)
            .collect()
    }

    /// Serializes the prompt (geometry, style, and the full θ canvas)
    /// bit-exactly into `enc` for checkpointing.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.channels);
        enc.put_usize(self.source_size);
        enc.put_usize(self.border);
        enc.put_u8(match self.style {
            PromptStyle::Pad => 0,
            PromptStyle::Overlay => 1,
        });
        enc.put_f32s(self.theta.data());
    }

    /// Rebuilds a prompt from bytes written by [`VisualPrompt::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] on truncation, an unknown style tag,
    /// or geometry that does not match the stored canvas.
    pub fn restore(dec: &mut Decoder) -> std::result::Result<Self, CkptError> {
        let channels = dec.get_usize()?;
        let source_size = dec.get_usize()?;
        let border = dec.get_usize()?;
        let style = match dec.get_u8()? {
            0 => PromptStyle::Pad,
            1 => PromptStyle::Overlay,
            other => {
                return Err(CkptError::decode(format!(
                    "unknown prompt style tag {other}"
                )))
            }
        };
        let data = dec.get_f32s()?;
        if border == 0 || 2 * border >= source_size {
            return Err(CkptError::decode(format!(
                "prompt snapshot geometry invalid: border {border}, size {source_size}"
            )));
        }
        if data.len() != channels * source_size * source_size {
            return Err(CkptError::decode(format!(
                "prompt canvas has {} values, geometry needs {}",
                data.len(),
                channels * source_size * source_size
            )));
        }
        let theta = Tensor::from_vec(data, &[channels, source_size, source_size])
            .map_err(|e| CkptError::decode(format!("prompt canvas: {e}")))?;
        Ok(VisualPrompt {
            theta,
            channels,
            source_size,
            border,
            style,
        })
    }

    /// Installs border parameters from a flat vector (CMA-ES interface).
    ///
    /// # Errors
    ///
    /// Returns [`VpError::InvalidConfig`] on length mismatch.
    pub fn set_flat(&mut self, flat: &[f32]) -> Result<()> {
        if flat.len() != self.num_border_params() {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "flat vector length {} != border param count {}",
                    flat.len(),
                    self.num_border_params()
                ),
            });
        }
        let mask = self.border_mask();
        let mut it = flat.iter();
        for (t, &m) in self.theta.data_mut().iter_mut().zip(mask.data()) {
            if m > 0.0 {
                *t = *it.next().expect("length checked above");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_border() {
        assert!(VisualPrompt::new(3, 16, 0).is_err());
        assert!(VisualPrompt::new(3, 16, 8).is_err());
        assert!(VisualPrompt::new(3, 16, 4).is_ok());
    }

    #[test]
    fn apply_places_image_in_center() {
        let mut prompt = VisualPrompt::new(1, 8, 2)
            .unwrap()
            .with_style(PromptStyle::Pad);
        // Distinctive border value.
        prompt.theta = Tensor::full(&[1, 8, 8], 0.25);
        let img = Tensor::ones(&[1, 4, 4]);
        let out = prompt.apply(&img).unwrap();
        // Inner 4x4 window is the (resized) image = 1.0.
        assert_eq!(out.at(&[0, 4, 4]).unwrap(), 1.0);
        // Border is theta.
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 0.25);
        assert_eq!(out.at(&[0, 7, 7]).unwrap(), 0.25);
    }

    #[test]
    fn overlay_adds_theta_on_border_only() {
        let mut prompt = VisualPrompt::new(1, 8, 2)
            .unwrap()
            .with_style(PromptStyle::Overlay);
        prompt.theta = Tensor::full(&[1, 8, 8], 0.25);
        let img = Tensor::full(&[1, 8, 8], 0.5);
        let out = prompt.apply(&img).unwrap();
        // Center: image untouched. Border: image + theta.
        assert_eq!(out.at(&[0, 4, 4]).unwrap(), 0.5);
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 0.75);
    }

    #[test]
    fn border_mask_counts() {
        let prompt = VisualPrompt::new(3, 16, 4).unwrap();
        let mask = prompt.border_mask();
        let ones = mask.data().iter().filter(|&&m| m == 1.0).count();
        assert_eq!(ones, prompt.num_border_params());
        assert_eq!(ones, 3 * (256 - 64));
    }

    #[test]
    fn flat_round_trip() {
        let mut rng = Rng::new(0);
        let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let flat = prompt.to_flat();
        assert_eq!(flat.len(), prompt.num_border_params());
        let mut other = VisualPrompt::new(3, 16, 4).unwrap();
        other.set_flat(&flat).unwrap();
        assert_eq!(other.to_flat(), flat);
        assert!(prompt.set_flat(&flat[1..]).is_err());
    }

    #[test]
    fn persist_restore_round_trip() {
        let mut rng = Rng::new(6);
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng)
            .unwrap()
            .with_style(PromptStyle::Pad);
        let mut enc = Encoder::new();
        prompt.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = VisualPrompt::restore(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, prompt);
        // Truncated payloads are typed errors.
        assert!(VisualPrompt::restore(&mut Decoder::new(&bytes[..10])).is_err());
    }

    #[test]
    fn gradient_only_touches_border() {
        let mut prompt = VisualPrompt::new(1, 8, 2).unwrap();
        let grad = Tensor::ones(&[1, 8, 8]);
        prompt.apply_gradient(&grad, -0.5).unwrap();
        // Center stays zero; border moved by -0.5.
        assert_eq!(prompt.theta.at(&[0, 4, 4]).unwrap(), 0.0);
        assert_eq!(prompt.theta.at(&[0, 0, 0]).unwrap(), -0.5);
    }

    #[test]
    fn resize_preserves_constant_images() {
        let img = Tensor::full(&[3, 8, 8], 0.7);
        let out = resize(&img, 12).unwrap();
        assert_eq!(out.shape(), &[3, 12, 12]);
        for v in out.data() {
            assert!((v - 0.7).abs() < 1e-6);
        }
        let down = resize(&img, 4).unwrap();
        assert_eq!(down.shape(), &[3, 4, 4]);
    }

    #[test]
    fn resize_identity_when_same_size() {
        let mut rng = Rng::new(1);
        let img = Tensor::rand_uniform(&[1, 6, 6], 0.0, 1.0, &mut rng);
        let out = resize(&img, 6).unwrap();
        for (a, b) in out.data().iter().zip(img.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = Rng::new(2);
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let imgs = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let batch = prompt.apply_batch(&imgs).unwrap();
        for i in 0..3 {
            let single = prompt.apply(&imgs.sample(i).unwrap()).unwrap();
            assert_eq!(batch.sample(i).unwrap(), single);
        }
    }
}
