//! Prompt learning: backpropagation for shadow models (white-box) and
//! CMA-ES for suspicious models (black-box), plus prompted-accuracy
//! evaluation.

use crate::{BlackBoxModel, CmaEs, LabelMap, OracleStats, Result, VisualPrompt, VpError};
use bprom_ckpt::{crash_point, Decoder, Encoder, SnapshotStore};
use bprom_nn::loss::softmax_cross_entropy;
use bprom_nn::{Layer, Mode, Sequential};
use bprom_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};

/// How CMA-ES scores one candidate prompt against one oracle response
/// batch. [`FitnessKind::CrossEntropy`] is the paper's objective; the
/// other variants adapt the black-box search to *degraded oracle
/// regimes* (see `bprom-regimes`), where the soft-score vector is
/// truncated or absent and raw cross-entropy either saturates at the
/// clamp floor or collapses to a step function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FitnessKind {
    /// Mean `-ln p(want)` over the batch (full soft-score regime).
    #[default]
    CrossEntropy,
    /// Cross-entropy over each row renormalized to its surviving mass —
    /// for top-k regimes, where truncated classes read as exact zeros
    /// and would otherwise pin the loss at `-ln(1e-9)` regardless of
    /// how much of the kept mass sits on the wanted class.
    RenormCrossEntropy,
    /// Fraction of rows whose argmax misses the wanted class — the
    /// label-only regime's prompted-accuracy proxy (one-hot responses
    /// make cross-entropy a scaled step function of exactly this, so
    /// the proxy ranks candidates identically while keeping the
    /// fitness scale interpretable).
    MissRate,
}

impl FitnessKind {
    /// Candidate loss for one `[n, k]` response batch against the wanted
    /// (mapped) labels. Lower is better for every variant.
    pub fn batch_loss(&self, probs: &Tensor, wants: &[usize]) -> f32 {
        let k = probs.shape()[1];
        let data = probs.data();
        let mut loss = 0.0f32;
        match self {
            FitnessKind::CrossEntropy => {
                for (row, &want) in wants.iter().enumerate() {
                    let p = data[row * k + want].max(1e-9);
                    loss -= p.ln();
                }
            }
            FitnessKind::RenormCrossEntropy => {
                for (row, &want) in wants.iter().enumerate() {
                    let slice = &data[row * k..(row + 1) * k];
                    let mass: f32 = slice.iter().sum();
                    let p = if mass > 0.0 {
                        slice[want] / mass
                    } else {
                        1.0 / k as f32
                    };
                    loss -= p.max(1e-9).ln();
                }
            }
            FitnessKind::MissRate => {
                for (row, &want) in wants.iter().enumerate() {
                    let slice = &data[row * k..(row + 1) * k];
                    let mut best = 0usize;
                    for c in 1..k {
                        if slice[c] > slice[best] {
                            best = c;
                        }
                    }
                    if best != want {
                        loss += 1.0;
                    }
                }
            }
        }
        loss / wants.len().max(1) as f32
    }
}

/// Hyperparameters for prompt learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromptTrainConfig {
    /// Backprop epochs over the target training set.
    pub epochs: usize,
    /// Minibatch size (both paths).
    pub batch_size: usize,
    /// Backprop learning rate for `θ`.
    pub lr: f32,
    /// Backprop momentum for `θ`.
    pub momentum: f32,
    /// CMA-ES generations (black-box path).
    pub cmaes_generations: usize,
    /// CMA-ES population λ; 0 means the dimension-derived default.
    pub cmaes_population: usize,
    /// CMA-ES initial step size.
    pub cmaes_sigma: f32,
    /// Candidate scoring for the CMA-ES path (regime-aware; the
    /// backprop path always uses softmax cross-entropy).
    pub fitness: FitnessKind,
}

impl Default for PromptTrainConfig {
    fn default() -> Self {
        PromptTrainConfig {
            epochs: 15,
            batch_size: 48,
            lr: 0.05,
            momentum: 0.9,
            cmaes_generations: 40,
            cmaes_population: 12,
            cmaes_sigma: 0.15,
            fitness: FitnessKind::CrossEntropy,
        }
    }
}

/// Outcome of a prompt-training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptTrainReport {
    /// Mean loss per epoch (backprop) or per generation (CMA-ES best).
    pub losses: Vec<f32>,
    /// Queries consumed (black-box path only; 0 for backprop).
    pub queries: u64,
    /// CMA-ES candidates skipped with an infinite penalty because their
    /// oracle queries exhausted all retries (0 for backprop and for
    /// fault-free oracles).
    pub penalized_candidates: u64,
}

fn check_training_set(images: &Tensor, labels: &[usize]) -> Result<()> {
    if images.rank() != 4 || images.shape()[0] != labels.len() || labels.is_empty() {
        return Err(VpError::InvalidConfig {
            reason: format!(
                "training set mismatch: images {:?}, {} labels",
                images.shape(),
                labels.len()
            ),
        });
    }
    Ok(())
}

fn gather(images: &Tensor, labels: &[usize], idx: &[usize]) -> Result<(Tensor, Vec<usize>)> {
    let inner: usize = images.shape()[1..].iter().product();
    let mut data = Vec::with_capacity(idx.len() * inner);
    let mut out_labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&images.data()[i * inner..(i + 1) * inner]);
        out_labels.push(labels[i]);
    }
    let mut dims = vec![idx.len()];
    dims.extend_from_slice(&images.shape()[1..]);
    Ok((Tensor::from_vec(data, &dims)?, out_labels))
}

/// Learns a visual prompt by backpropagating through a *frozen* model
/// (`Mode::Frozen`: gradients flow, weights and normalization statistics
/// do not change). This is how BPROM prompts its shadow models.
///
/// # Errors
///
/// Returns an error on shape/label mismatches or if the label map cannot
/// express a target label.
pub fn train_prompt_backprop(
    model: &mut Sequential,
    prompt: &mut VisualPrompt,
    images: &Tensor,
    labels: &[usize],
    map: &LabelMap,
    cfg: &PromptTrainConfig,
    rng: &mut Rng,
) -> Result<PromptTrainReport> {
    check_training_set(images, labels)?;
    let n = images.shape()[0];
    let mapped: Vec<usize> = labels
        .iter()
        .map(|&l| map.map_label(l))
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..n).collect();
    // Adam state on the full canvas (border entries are the live ones).
    let canvas = [
        images.shape()[1],
        prompt.source_size(),
        prompt.source_size(),
    ];
    let mut m = Tensor::zeros(&canvas);
    let mut v = Tensor::zeros(&canvas);
    let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
    let mut t = 0i32;
    let mut losses = Vec::with_capacity(cfg.epochs);
    bprom_obs::span!("backprop_prompt_training");
    for _epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (bx, by) = gather(images, &mapped, chunk)?;
            let prompted = prompt.apply_batch(&bx)?;
            let logits = model.forward(&prompted, Mode::Frozen)?;
            let (loss, grad_logits) = softmax_cross_entropy(&logits, &by)?;
            model.zero_grad();
            let grad_input = model.backward(&grad_logits)?;
            // Sum input gradients over the batch: θ is shared.
            let mut grad_theta = Tensor::zeros(&canvas);
            let inner: usize = grad_theta.len();
            for i in 0..chunk.len() {
                for (g, &gv) in grad_theta
                    .data_mut()
                    .iter_mut()
                    .zip(&grad_input.data()[i * inner..(i + 1) * inner])
                {
                    *g += gv;
                }
            }
            // Adam step on the border parameters.
            t += 1;
            let bc1 = 1.0 - b1.powi(t);
            let bc2 = 1.0 - b2.powi(t);
            let mut step = Tensor::zeros(&canvas);
            for (((mi, vi), &g), s) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad_theta.data())
                .zip(step.data_mut().iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                *s = (*mi / bc1) / ((*vi / bc2).sqrt() + eps);
            }
            prompt.apply_gradient(&step, -cfg.lr)?;
            total += loss;
            batches += 1;
        }
        let epoch_loss = total / batches.max(1) as f32;
        losses.push(epoch_loss);
        bprom_obs::event("prompt.epoch_loss", f64::from(epoch_loss));
    }
    Ok(PromptTrainReport {
        losses,
        queries: 0,
        penalized_candidates: 0,
    })
}

/// Where a checkpointed CMA-ES run persists its per-generation state.
///
/// Each generation's complete optimizer state — distribution mean and
/// covariance factors, evolution paths, step size, the caller's RNG
/// stream position, loss history and query/fault accounting — is written
/// as one atomic snapshot under `name`, so a crash at any point loses at
/// most the generation in flight.
#[derive(Debug, Clone, Copy)]
pub struct CmaesCheckpoint<'a> {
    /// Store receiving the per-generation snapshots.
    pub store: &'a SnapshotStore,
    /// Snapshot name (one CMA-ES run per name).
    pub name: &'a str,
}

/// Outcome of a checkpointed CMA-ES run: the ordinary report plus the
/// accounting carried over from progress made before a crash.
///
/// `report.queries` and `report.penalized_candidates` already *include*
/// the carried amounts; the `carried_*` fields exist so a caller that
/// meters live traffic separately (e.g. `Bprom::inspect` through a
/// `CountingOracle` created after the restart) can reconstruct the
/// uninterrupted totals exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptTrainOutcome {
    /// The training report, with carried accounting folded in.
    pub report: PromptTrainReport,
    /// Oracle queries consumed by pre-crash generations (0 when the run
    /// was never interrupted).
    pub carried_queries: u64,
    /// Fault/retry accounting accumulated by pre-crash generations.
    pub carried_stats: OracleStats,
}

/// Learns a visual prompt for a black-box model with CMA-ES over the
/// border parameters, minimizing cross-entropy of the queried confidence
/// vectors. This is how BPROM prompts the suspicious model.
///
/// # Errors
///
/// Returns an error on shape/label mismatches or optimizer misuse.
pub fn train_prompt_cmaes(
    oracle: &dyn BlackBoxModel,
    prompt: &mut VisualPrompt,
    images: &Tensor,
    labels: &[usize],
    map: &LabelMap,
    cfg: &PromptTrainConfig,
    rng: &mut Rng,
) -> Result<PromptTrainReport> {
    Ok(train_prompt_cmaes_ckpt(oracle, prompt, images, labels, map, cfg, rng, None)?.report)
}

/// Checkpointed variant of [`train_prompt_cmaes`]: with a
/// [`CmaesCheckpoint`], every generation ends with an atomic snapshot of
/// the full optimizer state, and a later call against the same store
/// resumes from the last completed generation with a bit-identical RNG
/// stream, losses, and query/fault accounting.
///
/// Resume semantics: the snapshot *overwrites* `rng` with the stream
/// position recorded at the last completed generation, so the continued
/// run consumes exactly the draws the uninterrupted run would have.
/// `prompt` must be the same template the original call started from
/// (deterministic replay of the caller guarantees this); its border
/// values are fully overwritten by the best candidate at the end.
///
/// # Errors
///
/// Returns an error on shape/label mismatches, optimizer misuse, or a
/// snapshot that fails to write or validate ([`VpError::Ckpt`]).
#[allow(clippy::too_many_arguments)]
pub fn train_prompt_cmaes_ckpt(
    oracle: &dyn BlackBoxModel,
    prompt: &mut VisualPrompt,
    images: &Tensor,
    labels: &[usize],
    map: &LabelMap,
    cfg: &PromptTrainConfig,
    rng: &mut Rng,
    ckpt: Option<CmaesCheckpoint<'_>>,
) -> Result<CkptTrainOutcome> {
    check_training_set(images, labels)?;
    let n = images.shape()[0];
    let mapped: Vec<usize> = labels
        .iter()
        .map(|&l| map.map_label(l))
        .collect::<Result<_>>()?;
    let start_queries = oracle.queries_used();
    let stats_start = oracle.oracle_stats();
    let pop = if cfg.cmaes_population == 0 {
        CmaEs::default_population(prompt.num_border_params())
    } else {
        cfg.cmaes_population
    };
    let mut es = CmaEs::new(&prompt.to_flat(), cfg.cmaes_sigma, pop)?;
    let mut losses = Vec::with_capacity(cfg.cmaes_generations);
    let template = prompt.clone();
    let penalized = AtomicU64::new(0);
    let mut start_gen = 0usize;
    let mut carried_queries = 0u64;
    let mut carried_stats = OracleStats::default();
    if let Some(ckpt) = &ckpt {
        if let Some(bytes) = ckpt.store.load(ckpt.name)? {
            let mut dec = Decoder::new(&bytes);
            let gens_done = dec.get_usize()?;
            if gens_done > cfg.cmaes_generations {
                return Err(VpError::Ckpt(format!(
                    "snapshot {} holds {gens_done} generations, run wants {}",
                    ckpt.name, cfg.cmaes_generations
                )));
            }
            let restored = CmaEs::restore(&mut dec)?;
            let state = dec.get_u64s()?;
            let spare = dec.get_opt_f32()?;
            let restored_losses = dec.get_f32s()?;
            let restored_penalized = dec.get_u64()?;
            carried_queries = dec.get_u64()?;
            carried_stats = OracleStats {
                faults_injected: dec.get_u64()?,
                degraded_responses: dec.get_u64()?,
                retries: dec.get_u64()?,
                retry_exhausted: dec.get_u64()?,
                backoff_virtual_ms: dec.get_u64()?,
                cache_hits: dec.get_u64()?,
                cache_misses: dec.get_u64()?,
                cache_evictions: dec.get_u64()?,
                evasive_responses: dec.get_u64()?,
            };
            // Restore any memoized query state the killed run had paid
            // for, so the resumed run re-spends nothing (see bprom-qcache).
            if dec.get_bool()? {
                let payload = dec.get_bytes()?;
                oracle.import_cache(&mut Decoder::new(&payload))?;
            }
            dec.finish()?;
            let state: [u64; 4] = state.as_slice().try_into().map_err(|_| {
                VpError::Ckpt(format!("snapshot {} has a malformed RNG state", ckpt.name))
            })?;
            es = restored;
            losses = restored_losses;
            penalized.store(restored_penalized, Ordering::Relaxed);
            *rng = Rng::from_state(state, spare);
            start_gen = gens_done;
        }
    }
    bprom_obs::span!("cmaes_prompt_training");
    for gen_index in start_gen..cfg.cmaes_generations {
        let gen_start = bprom_obs::enabled().then(std::time::Instant::now);
        // One shared minibatch per generation: candidates are ranked on the
        // same data, resampled across generations for coverage.
        let batch_len = cfg.batch_size.min(n).max(1);
        let idx = rng.sample_indices(n, batch_len);
        let (bx, by) = gather(images, &mapped, &idx)?;
        let candidates = es.ask(rng);
        // Candidate evaluations are independent (the oracle is `&self` and
        // counts queries atomically) and consume no RNG, so fanning them out
        // across workers leaves both the fitness values and the RNG stream
        // bit-identical to the sequential path.
        let fitness: Vec<f32> = bprom_par::par_map_indexed(candidates.len(), |ci| -> Result<f32> {
            let mut scratch = template.clone();
            scratch.set_flat(&candidates[ci])?;
            let prompted = scratch.apply_batch(&bx)?;
            // Graceful degradation: a candidate whose queries exhaust all
            // retries is skipped with an infinite penalty (ranks last,
            // never recombined) instead of aborting the whole generation.
            // The fault decision is a property of the query content, not
            // of scheduling, so this stays thread-count deterministic.
            let probs = match oracle.query(&prompted) {
                Ok(probs) => probs,
                Err(VpError::OracleFault { .. }) => {
                    penalized.fetch_add(1, Ordering::Relaxed);
                    bprom_obs::counter_add("cmaes.candidates_penalized", 1);
                    return Ok(f32::INFINITY);
                }
                Err(e) => return Err(e),
            };
            Ok(cfg.fitness.batch_loss(&probs, &by))
        })
        .into_iter()
        .collect::<Result<_>>()?;
        es.tell(&candidates, &fitness)?;
        let best = fitness.iter().copied().fold(f32::INFINITY, f32::min);
        losses.push(best);
        if let Some(gen_start) = gen_start {
            bprom_obs::observe("cmaes.generation_ns", gen_start.elapsed().as_nanos() as u64);
            bprom_obs::event("cmaes.best_fitness", f64::from(best));
            bprom_obs::log_event(
                "cmaes.generation",
                [
                    ("gen", gen_index.into()),
                    ("best_fitness", best.into()),
                    ("penalized_total", penalized.load(Ordering::Relaxed).into()),
                ],
            );
        }
        if let Some(ckpt) = &ckpt {
            // The generation is complete: all candidate queries are in,
            // `tell` has updated the distribution, and the RNG stream sits
            // exactly where the next generation will read it. Persist
            // everything a resumed process needs, then mark the boundary.
            let mut enc = Encoder::new();
            enc.put_usize(losses.len());
            es.persist(&mut enc);
            let (state, spare) = rng.state();
            enc.put_u64s(&state);
            enc.put_opt_f32(spare);
            enc.put_f32s(&losses);
            enc.put_u64(penalized.load(Ordering::Relaxed));
            enc.put_u64(carried_queries + (oracle.queries_used() - start_queries));
            let stats = oracle
                .oracle_stats()
                .delta_since(&stats_start)
                .merged(&carried_stats);
            enc.put_u64(stats.faults_injected);
            enc.put_u64(stats.degraded_responses);
            enc.put_u64(stats.retries);
            enc.put_u64(stats.retry_exhausted);
            enc.put_u64(stats.backoff_virtual_ms);
            enc.put_u64(stats.cache_hits);
            enc.put_u64(stats.cache_misses);
            enc.put_u64(stats.cache_evictions);
            enc.put_u64(stats.evasive_responses);
            let mut cache = Encoder::new();
            if oracle.export_cache(&mut cache) {
                enc.put_bool(true);
                enc.put_bytes(&cache.into_bytes());
            } else {
                enc.put_bool(false);
            }
            ckpt.store.save(ckpt.name, &enc.into_bytes())?;
            crash_point("cmaes-generation");
        }
    }
    // Install the best-ever candidate.
    if let Some((best, _)) = es.best() {
        prompt.set_flat(best)?;
    }
    Ok(CkptTrainOutcome {
        report: PromptTrainReport {
            losses,
            queries: carried_queries + (oracle.queries_used() - start_queries),
            penalized_candidates: penalized.load(Ordering::Relaxed),
        },
        carried_queries,
        carried_stats,
    })
}

/// Prompted-model accuracy via direct (white-box) forward passes.
///
/// # Errors
///
/// Returns an error on shape/label mismatches.
pub fn prompted_accuracy(
    model: &mut Sequential,
    prompt: &VisualPrompt,
    images: &Tensor,
    labels: &[usize],
    map: &LabelMap,
) -> Result<f32> {
    check_training_set(images, labels)?;
    let n = images.shape()[0];
    let idx: Vec<usize> = (0..n).collect();
    let mut correct = 0.0f32;
    for chunk in idx.chunks(64) {
        let (bx, by) = gather(images, labels, chunk)?;
        let prompted = prompt.apply_batch(&bx)?;
        let logits = model.forward(&prompted, Mode::Eval)?;
        let probs = bprom_nn::softmax(&logits)?;
        correct += map.accuracy(&probs, &by)? * chunk.len() as f32;
    }
    Ok(correct / n as f32)
}

/// Prompted-model accuracy through the black-box query interface.
///
/// # Errors
///
/// Returns an error on shape/label mismatches.
pub fn prompted_accuracy_blackbox(
    oracle: &dyn BlackBoxModel,
    prompt: &VisualPrompt,
    images: &Tensor,
    labels: &[usize],
    map: &LabelMap,
) -> Result<f32> {
    check_training_set(images, labels)?;
    let n = images.shape()[0];
    let idx: Vec<usize> = (0..n).collect();
    let mut correct = 0.0f32;
    for chunk in idx.chunks(64) {
        let (bx, by) = gather(images, labels, chunk)?;
        let prompted = prompt.apply_batch(&bx)?;
        let probs = oracle.query(&prompted)?;
        correct += map.accuracy(&probs, &by)? * chunk.len() as f32;
    }
    Ok(correct / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryOracle;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{resnet_mini, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};

    /// Train a clean source model, then learn a prompt mapping a *different*
    /// dataset onto it; prompted accuracy must clearly beat chance.
    #[test]
    fn backprop_prompting_adapts_clean_model() {
        let mut rng = Rng::new(0);
        let source = SynthDataset::Cifar10.generate(30, 16, 1).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = resnet_mini(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::default());
        trainer
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();

        let target = SynthDataset::Stl10.generate(20, 8, 2).unwrap();
        let (t_train, t_test) = target.split(0.7, &mut rng).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let before =
            prompted_accuracy(&mut model, &prompt, &t_test.images, &t_test.labels, &map).unwrap();
        let cfg = PromptTrainConfig::default();
        let report = train_prompt_backprop(
            &mut model,
            &mut prompt,
            &t_train.images,
            &t_train.labels,
            &map,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let after =
            prompted_accuracy(&mut model, &prompt, &t_test.images, &t_test.labels, &map).unwrap();
        // The unprompted baseline varies with how the random domains align;
        // prompting must end well above chance (10 %) and never hurt.
        assert!(
            after > 0.25 && after >= before - 0.05,
            "prompting should lift accuracy well above chance: {before} -> {after}, losses {:?}",
            report.losses
        );
        assert!(
            report.losses.first().unwrap() > report.losses.last().unwrap(),
            "prompt training should reduce the loss: {:?}",
            report.losses
        );
    }

    #[test]
    fn frozen_prompting_does_not_change_model() {
        let mut rng = Rng::new(1);
        let source = SynthDataset::Cifar10.generate(10, 16, 3).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = resnet_mini(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::fast());
        trainer
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let params_before = model.export_params();
        let probe = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let out_before = model.forward(&probe, Mode::Eval).unwrap();

        let target = SynthDataset::Stl10.generate(5, 8, 4).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let mut prompt = VisualPrompt::new(3, 16, 4).unwrap();
        let cfg = PromptTrainConfig {
            epochs: 2,
            ..PromptTrainConfig::default()
        };
        train_prompt_backprop(
            &mut model,
            &mut prompt,
            &target.images,
            &target.labels,
            &map,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert_eq!(model.export_params(), params_before);
        let out_after = model.forward(&probe, Mode::Eval).unwrap();
        assert_eq!(out_before, out_after);
    }

    #[test]
    fn cmaes_prompting_reduces_loss_through_queries_only() {
        let mut rng = Rng::new(2);
        let source = SynthDataset::Cifar10.generate(20, 16, 5).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = resnet_mini(&spec, &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::fast());
        trainer
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let oracle = QueryOracle::new(model, 10);

        let target = SynthDataset::Stl10.generate(10, 8, 6).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let mut prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let cfg = PromptTrainConfig {
            cmaes_generations: 15,
            cmaes_population: 8,
            ..PromptTrainConfig::default()
        };
        let report = train_prompt_cmaes(
            &oracle,
            &mut prompt,
            &target.images,
            &target.labels,
            &map,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(report.queries > 0);
        assert_eq!(report.losses.len(), 15);
        let first = report.losses.first().unwrap();
        let last = report.losses.last().unwrap();
        assert!(last < first, "CMA-ES should reduce loss: {first} -> {last}");
    }

    #[test]
    fn training_set_validation() {
        let mut rng = Rng::new(3);
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = resnet_mini(&spec, &mut rng).unwrap();
        let mut prompt = VisualPrompt::new(3, 16, 4).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let cfg = PromptTrainConfig::default();
        let bad = Tensor::zeros(&[2, 3, 8, 8]);
        assert!(
            train_prompt_backprop(&mut model, &mut prompt, &bad, &[0], &map, &cfg, &mut rng)
                .is_err()
        );
    }
}
