//! Neural Cleanse (Wang et al., 2019): the defense whose class-subspace
//! observation ("in an infected model, a small perturbation moves *any*
//! input into the target class") the paper's inconsistency argument builds
//! on. For each candidate target class, invert the smallest trigger
//! (mask + pattern) that flips a set of clean images to that class; an
//! anomalously small inverted trigger reveals the backdoor.
//!
//! White-box (needs gradients), model-level. Higher score = more
//! suspicious.

use crate::{DefenseError, Result};
use bprom_nn::loss::softmax_cross_entropy;
use bprom_nn::{Layer, Mode, Sequential};
use bprom_tensor::Tensor;

/// Result of trigger inversion for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanseReport {
    /// L1 norm of the inverted trigger mask, per class.
    pub mask_norms: Vec<f32>,
    /// MAD-normalized anomaly of the smallest mask (the model score).
    pub anomaly: f32,
    /// Class with the smallest inverted trigger (the backdoor-target
    /// candidate).
    pub candidate_target: usize,
}

/// Sigmoid squashing keeps mask/pattern parameters unconstrained during
/// optimization while the effective values stay in [0, 1].
fn squash(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

fn squash_grad(v: f32) -> f32 {
    let s = squash(v);
    s * (1.0 - s)
}

/// Inverts a minimal trigger for every class and reports the MAD anomaly
/// of the smallest one (the Neural Cleanse statistic).
///
/// `images` is a small batch of clean inputs `[n, c, h, w]`; `steps`
/// controls the per-class optimization budget; `l1_weight` trades trigger
/// sparsity against attack success (the original's λ).
///
/// # Errors
///
/// Propagates model failures; requires at least 3 classes and a non-empty
/// batch.
pub fn neural_cleanse(
    model: &mut Sequential,
    images: &Tensor,
    num_classes: usize,
    steps: usize,
    l1_weight: f32,
) -> Result<CleanseReport> {
    if images.rank() != 4 || images.shape()[0] == 0 {
        return Err(DefenseError::InvalidInput {
            reason: format!(
                "expected non-empty [n, c, h, w] images, got {:?}",
                images.shape()
            ),
        });
    }
    if num_classes < 3 {
        return Err(DefenseError::InvalidInput {
            reason: "Neural Cleanse needs at least 3 classes".to_string(),
        });
    }
    let (n, c, h, w) = (
        images.shape()[0],
        images.shape()[1],
        images.shape()[2],
        images.shape()[3],
    );
    let plane = h * w;
    let mut mask_norms = Vec::with_capacity(num_classes);
    for target in 0..num_classes {
        // Unconstrained parameters; mask is shared across channels.
        let mut mask_raw = vec![-2.0f32; plane]; // squash(-2) ≈ 0.12: start small
        let mut pattern_raw = vec![0.0f32; c * plane];
        let lr = 0.3f32;
        for _ in 0..steps {
            // Build the triggered batch: x' = (1-m)·x + m·p.
            let mut batch = images.clone();
            for ni in 0..n {
                for ci in 0..c {
                    for pi in 0..plane {
                        let m = squash(mask_raw[pi]);
                        let p = squash(pattern_raw[ci * plane + pi]);
                        let idx = (ni * c + ci) * plane + pi;
                        batch.data_mut()[idx] = (1.0 - m) * images.data()[idx] + m * p;
                    }
                }
            }
            let logits = model.forward(&batch, Mode::Frozen)?;
            let labels = vec![target; n];
            let (_, grad_logits) = softmax_cross_entropy(&logits, &labels)?;
            model.zero_grad();
            let grad_in = model.backward(&grad_logits)?;
            // Accumulate parameter gradients through the trigger algebra.
            let mut g_mask = vec![0.0f32; plane];
            let mut g_pattern = vec![0.0f32; c * plane];
            for ni in 0..n {
                for ci in 0..c {
                    for pi in 0..plane {
                        let idx = (ni * c + ci) * plane + pi;
                        let g = grad_in.data()[idx];
                        let p = squash(pattern_raw[ci * plane + pi]);
                        let m = squash(mask_raw[pi]);
                        // dx'/dm = p - x, dx'/dp = m.
                        g_mask[pi] += g * (p - images.data()[idx]);
                        g_pattern[ci * plane + pi] += g * m;
                    }
                }
            }
            for (raw, g) in mask_raw.iter_mut().zip(&g_mask) {
                // L1 penalty pushes the squashed mask toward zero.
                let total = g + l1_weight;
                *raw -= lr * total * squash_grad(*raw);
            }
            for (raw, g) in pattern_raw.iter_mut().zip(&g_pattern) {
                *raw -= lr * g * squash_grad(*raw);
            }
        }
        mask_norms.push(mask_raw.iter().map(|&v| squash(v)).sum());
    }
    // MAD anomaly of the *smallest* mask (backdoor targets invert tiny
    // triggers).
    let mut sorted = mask_norms.clone();
    sorted.sort_by(f32::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f32> = mask_norms.iter().map(|m| (m - median).abs()).collect();
    devs.sort_by(f32::total_cmp);
    let mad = devs[devs.len() / 2].max(1e-6);
    let (candidate_target, &min_norm) = mask_norms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    Ok(CleanseReport {
        anomaly: (median - min_norm) / mad,
        mask_norms,
        candidate_target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_attacks::{poison_dataset, AttackKind};
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, Architecture, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_tensor::Rng;

    #[test]
    fn inverted_trigger_is_small_for_backdoor_target() {
        let mut rng = Rng::new(0);
        let data = SynthDataset::Cifar10.generate(25, 16, 31).unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, &mut rng).unwrap();
        let cfg = kind.default_config(3);
        let poisoned = poison_dataset(&data, attack.as_ref(), &cfg, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        Trainer::new(TrainConfig::default())
            .fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                &mut rng,
            )
            .unwrap();
        let batch = data.subsample(0.05, &mut rng).unwrap().images;
        let report = neural_cleanse(&mut model, &batch, 10, 40, 0.02).unwrap();
        assert_eq!(report.mask_norms.len(), 10);
        assert!(report.mask_norms.iter().all(|m| m.is_finite()));
        // The backdoor target's inverted trigger should be among the
        // smallest (it has a universal shortcut).
        let mut order: Vec<usize> = (0..10).collect();
        order.sort_by(|&a, &b| report.mask_norms[a].total_cmp(&report.mask_norms[b]));
        let rank = order.iter().position(|&c| c == 3).unwrap();
        assert!(
            rank <= 4,
            "target class rank {rank}, norms {:?}",
            report.mask_norms
        );
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(1);
        let spec = ModelSpec::new(3, 8, 2);
        let mut model = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        let imgs = Tensor::zeros(&[2, 3, 8, 8]);
        assert!(neural_cleanse(&mut model, &imgs, 2, 5, 0.01).is_err());
        assert!(neural_cleanse(&mut model, &Tensor::zeros(&[3, 8, 8]), 5, 5, 0.01).is_err());
    }
}
