//! Baseline backdoor defenses the paper compares BPROM against
//! (Tables 1, 5, 6, 16–18, 24–26).
//!
//! Each defense is re-implemented from its original paper's core statistic
//! and operates in its natural scope (the comparison tables in the
//! backdoor literature mix these scopes, as the paper notes):
//!
//! * **Input-level** ([`input_level`]) — score individual inputs as
//!   trigger/benign: STRIP, SCALE-UP, TeCo, SentiNet, Frequency, TED, CD.
//! * **Dataset-level** ([`dataset_level`]) — score training samples as
//!   poisoned/clean: Activation Clustering, Spectral Signatures, SPECTRE,
//!   SCAn, Confusion Training.
//! * **Model-level** ([`model_level`], [`neural_cleanse`], [`aeva`],
//!   [`trigger_inversion`]) — score whole models as backdoored/clean,
//!   BPROM's own scope: MM-BD, MNTD, Neural Cleanse (white-box trigger
//!   inversion, included because the paper's class-subspace argument
//!   builds on its observation), AEVA (the prior *black-box* model-level
//!   detector the paper's design challenge discusses), and a
//!   gradient-free CMA-ES trigger-inversion baseline with exact query
//!   budgeting for budget-fair shootouts against BPROM.
//!
//! Every scoring function returns per-unit suspiciousness scores; AUROC/F1
//! against ground truth is computed by `bprom-metrics` in the experiment
//! harness.

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod aeva;
pub mod common;
pub mod dataset_level;
mod error;
pub mod input_level;
pub mod model_level;
pub mod neural_cleanse;
pub mod trigger_inversion;

pub use error::DefenseError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DefenseError>;
