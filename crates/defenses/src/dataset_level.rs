//! Dataset-level defenses: score training samples as poisoned/clean given
//! the (suspected) training set and the trained model. Higher score = more
//! suspicious.

use crate::common::{activations, kmeans, predict_probs, spectral_scores};
use crate::{DefenseError, Result};
use bprom_data::Dataset;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Sequential, TrainConfig, Trainer};
use bprom_tensor::{Rng, Tensor};

fn per_class_indices(labels: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    by_class
}

/// Activation Clustering (Chen et al., 2018): per class, 2-means on
/// penultimate activations; members of the smaller cluster are suspicious.
/// Score = 1 if in the minority cluster (weighted by how unbalanced the
/// split is), else 0.
///
/// # Errors
///
/// Propagates model failures.
pub fn activation_clustering_scores(
    model: &mut Sequential,
    data: &Dataset,
    rng: &mut Rng,
) -> Result<Vec<f32>> {
    let feats = activations(model, &data.images)?;
    let by_class = per_class_indices(&data.labels, data.num_classes);
    let mut scores = vec![0.0f32; data.len()];
    for idx in by_class.iter().filter(|c| c.len() >= 4) {
        let class_feats: Vec<Vec<f32>> = idx.iter().map(|&i| feats[i].clone()).collect();
        let assign = kmeans(&class_feats, 2, 15, rng);
        let ones = assign.iter().filter(|&&a| a == 1).count();
        let (minority, minority_size) = if ones * 2 <= assign.len() {
            (1usize, ones)
        } else {
            (0usize, assign.len() - ones)
        };
        // Imbalance weight: very small minority clusters are the classic
        // poisoned-cluster signature (the paper's 35 % size threshold).
        let weight = 1.0 - minority_size as f32 / assign.len() as f32;
        for (pos, &i) in idx.iter().enumerate() {
            if assign[pos] == minority {
                scores[i] = weight;
            }
        }
    }
    Ok(scores)
}

/// Spectral Signatures (Tran et al., 2018): per class, squared projection
/// onto the top singular direction of centered activations.
///
/// # Errors
///
/// Propagates model failures.
pub fn spectral_signature_scores(model: &mut Sequential, data: &Dataset) -> Result<Vec<f32>> {
    let feats = activations(model, &data.images)?;
    let by_class = per_class_indices(&data.labels, data.num_classes);
    let mut scores = vec![0.0f32; data.len()];
    for idx in by_class.iter().filter(|c| c.len() >= 2) {
        let class_feats: Vec<Vec<f32>> = idx.iter().map(|&i| feats[i].clone()).collect();
        let class_scores = spectral_scores(&class_feats);
        // Normalize within class so classes are comparable.
        let max = class_scores.iter().copied().fold(1e-9f32, f32::max);
        for (pos, &i) in idx.iter().enumerate() {
            scores[i] = class_scores[pos] / max;
        }
    }
    Ok(scores)
}

/// SPECTRE (Hayase et al., 2021): Spectral Signatures after per-feature
/// whitening (diagonal approximation of the robust covariance estimate),
/// which exposes poisons that hide in high-variance directions.
///
/// # Errors
///
/// Propagates model failures.
pub fn spectre_scores(model: &mut Sequential, data: &Dataset) -> Result<Vec<f32>> {
    let feats = activations(model, &data.images)?;
    let by_class = per_class_indices(&data.labels, data.num_classes);
    let mut scores = vec![0.0f32; data.len()];
    for idx in by_class.iter().filter(|c| c.len() >= 2) {
        let class_feats: Vec<Vec<f32>> = idx.iter().map(|&i| feats[i].clone()).collect();
        let dim = class_feats[0].len();
        // Robust-ish diagonal whitening: median/MAD per feature.
        let mut whitened = class_feats.clone();
        for d in 0..dim {
            let mut vals: Vec<f32> = class_feats.iter().map(|f| f[d]).collect();
            vals.sort_by(f32::total_cmp);
            let median = vals[vals.len() / 2];
            let mut devs: Vec<f32> = vals.iter().map(|v| (v - median).abs()).collect();
            devs.sort_by(f32::total_cmp);
            let mad = devs[devs.len() / 2].max(1e-6);
            for f in &mut whitened {
                f[d] = (f[d] - median) / mad;
            }
        }
        let class_scores = spectral_scores(&whitened);
        let max = class_scores.iter().copied().fold(1e-9f32, f32::max);
        for (pos, &i) in idx.iter().enumerate() {
            scores[i] = class_scores[pos] / max;
        }
    }
    Ok(scores)
}

/// SCAn (Tang et al., 2021): statistical contamination analysis. Per
/// class, compare a one-component to a two-component (2-means) description
/// of the activations; in contaminated classes the two-component split
/// explains far more variance, and minority-component members are flagged.
/// Score = per-class decomposition gain × minority membership.
///
/// # Errors
///
/// Propagates model failures.
pub fn scan_scores(model: &mut Sequential, data: &Dataset, rng: &mut Rng) -> Result<Vec<f32>> {
    let feats = activations(model, &data.images)?;
    let by_class = per_class_indices(&data.labels, data.num_classes);
    let mut scores = vec![0.0f32; data.len()];
    for idx in by_class.iter().filter(|c| c.len() >= 4) {
        let class_feats: Vec<Vec<f32>> = idx.iter().map(|&i| feats[i].clone()).collect();
        let dim = class_feats[0].len();
        let n = class_feats.len() as f32;
        // One-component SSE.
        let mut mean = vec![0.0f32; dim];
        for f in &class_feats {
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let sse1: f32 = class_feats
            .iter()
            .map(|f| {
                f.iter()
                    .zip(&mean)
                    .map(|(&v, &m)| (v - m) * (v - m))
                    .sum::<f32>()
            })
            .sum();
        // Two-component SSE via 2-means.
        let assign = kmeans(&class_feats, 2, 15, rng);
        let mut centers = vec![vec![0.0f32; dim]; 2];
        let mut counts = [0usize; 2];
        for (f, &a) in class_feats.iter().zip(&assign) {
            counts[a] += 1;
            for (c, &v) in centers[a].iter_mut().zip(f) {
                *c += v;
            }
        }
        for (c, &cnt) in centers.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= cnt.max(1) as f32;
            }
        }
        let sse2: f32 = class_feats
            .iter()
            .zip(&assign)
            .map(|(f, &a)| {
                f.iter()
                    .zip(&centers[a])
                    .map(|(&v, &m)| (v - m) * (v - m))
                    .sum::<f32>()
            })
            .sum();
        // Likelihood-ratio-style gain.
        let gain = ((sse1 + 1e-6) / (sse2 + 1e-6)).ln().max(0.0);
        let minority = if counts[1] * 2 <= assign.len() { 1 } else { 0 };
        for (pos, &i) in idx.iter().enumerate() {
            if assign[pos] == minority {
                scores[i] = gain;
            }
        }
    }
    Ok(scores)
}

/// Confusion Training (Qi et al., 2023c), reduced form: retrain a copy of
/// the architecture on the dataset mixed with an equal volume of
/// randomly-labelled "confusion" samples. Natural class signal is
/// destroyed by the confusion; backdoor shortcuts survive. Score = the
/// confused model's confidence in each sample's (possibly poisoned) label.
///
/// # Errors
///
/// Propagates training/inference failures.
pub fn confusion_training_scores(
    data: &Dataset,
    architecture: Architecture,
    rng: &mut Rng,
) -> Result<Vec<f32>> {
    // Build the confusion set: the same images with random labels.
    let mut images = data.images.data().to_vec();
    images.extend_from_slice(data.images.data());
    let mut labels = data.labels.clone();
    labels.extend(data.labels.iter().map(|_| rng.below(data.num_classes)));
    let mut dims = data.images.shape().to_vec();
    dims[0] *= 2;
    let mixed = Tensor::from_vec(images, &dims).map_err(|e| DefenseError::Tensor(e.to_string()))?;
    let spec = ModelSpec::new(data.channels(), data.image_size(), data.num_classes);
    let mut confused = build(architecture, &spec, rng)?;
    Trainer::new(TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    })
    .fit(&mut confused, &mixed, &labels, rng)?;
    let probs = predict_probs(&mut confused, &data.images)?;
    let k = probs.shape()[1];
    Ok(data
        .labels
        .iter()
        .enumerate()
        .map(|(i, &l)| probs.data()[i * k + l])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_attacks::{poison_dataset, AttackKind};
    use bprom_data::SynthDataset;
    use bprom_metrics::auroc;

    /// Fixture: BadNets-poisoned training set + the model trained on it +
    /// per-sample poison flags.
    fn fixture(rng: &mut Rng) -> (Sequential, Dataset, Vec<bool>) {
        // Paper-regime poisoning: poisons are a small minority of the
        // target class (the assumption AC/SCAn/SS rely on).
        let clean = SynthDataset::Cifar10.generate(80, 16, 9).unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, rng).unwrap();
        let cfg = bprom_attacks::PoisonConfig::new(0.05, 0.0, 0);
        let poisoned = poison_dataset(&clean, attack.as_ref(), &cfg, rng).unwrap();
        let mut flags = vec![false; clean.len()];
        for &i in &poisoned.poisoned_idx {
            flags[i] = true;
        }
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, rng).unwrap();
        Trainer::new(TrainConfig::default())
            .fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )
            .unwrap();
        (model, poisoned.dataset, flags)
    }

    #[test]
    fn spectral_signatures_find_poisons() {
        let mut rng = Rng::new(0);
        let (mut model, data, flags) = fixture(&mut rng);
        let scores = spectral_signature_scores(&mut model, &data).unwrap();
        let auc = auroc(&scores, &flags).unwrap();
        assert!(auc > 0.6, "SS AUROC {auc}");
    }

    #[test]
    #[ignore = "tier-2 model-training sweep; CI runs it via -- --ignored"]
    fn activation_clustering_finds_poisons() {
        let mut rng = Rng::new(1);
        let (mut model, data, flags) = fixture(&mut rng);
        let scores = activation_clustering_scores(&mut model, &data, &mut rng).unwrap();
        let auc = auroc(&scores, &flags).unwrap();
        assert!(auc > 0.6, "AC AUROC {auc}");
    }

    #[test]
    fn spectre_finds_poisons() {
        let mut rng = Rng::new(2);
        let (mut model, data, flags) = fixture(&mut rng);
        let scores = spectre_scores(&mut model, &data).unwrap();
        let auc = auroc(&scores, &flags).unwrap();
        // SPECTRE is among the weakest baselines in the paper, too
        // (average AUROC 0.64-0.68 in Table 5).
        assert!(auc > 0.5, "SPECTRE AUROC {auc}");
    }

    #[test]
    #[ignore = "tier-2 model-training sweep; CI runs it via -- --ignored"]
    fn scan_finds_poisons() {
        let mut rng = Rng::new(3);
        let (mut model, data, flags) = fixture(&mut rng);
        let scores = scan_scores(&mut model, &data, &mut rng).unwrap();
        let auc = auroc(&scores, &flags).unwrap();
        assert!(auc > 0.55, "SCAn AUROC {auc}");
    }

    #[test]
    #[ignore = "tier-2 model-training sweep; CI runs it via -- --ignored"]
    fn confusion_training_runs() {
        let mut rng = Rng::new(4);
        let (_, data, flags) = fixture(&mut rng);
        let scores = confusion_training_scores(&data, Architecture::ResNetMini, &mut rng).unwrap();
        assert_eq!(scores.len(), flags.len());
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}
