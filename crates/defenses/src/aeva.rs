//! AEVA (Guo et al., 2022): black-box model-level backdoor detection via
//! adversarial extreme value analysis — the prior black-box model-level
//! detector the paper's Design Challenge section compares BPROM against.
//!
//! Idea: estimate, for each candidate target class, how strongly a small
//! *universal* perturbation can push a batch of clean images toward that
//! class, using only queries (NES gradient estimation). A backdoor target
//! exhibits an extreme adversarial "peak"; the model score is the MAD
//! anomaly of the largest peak. The paper notes AEVA's weakness on large
//! (non-patch) triggers, which the Table-5 comparison reproduces.

use crate::{DefenseError, Result};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::BlackBoxModel;

/// Configuration of the AEVA search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AevaConfig {
    /// NES iterations per class.
    pub steps: usize,
    /// NES population (antithetic pairs are formed internally).
    pub population: usize,
    /// NES smoothing σ.
    pub sigma: f32,
    /// Perturbation step size.
    pub lr: f32,
    /// L∞ bound on the universal perturbation.
    pub epsilon: f32,
}

impl Default for AevaConfig {
    fn default() -> Self {
        AevaConfig {
            steps: 15,
            population: 8,
            sigma: 0.05,
            lr: 0.05,
            epsilon: 0.2,
        }
    }
}

/// Mean probability of `class` over a perturbed batch, by query.
fn class_mass(
    oracle: &dyn BlackBoxModel,
    images: &Tensor,
    delta: &Tensor,
    class: usize,
) -> Result<f32> {
    let n = images.shape()[0];
    let inner = delta.len();
    let mut perturbed = images.clone();
    for i in 0..n {
        for (v, &d) in perturbed.data_mut()[i * inner..(i + 1) * inner]
            .iter_mut()
            .zip(delta.data())
        {
            *v = (*v + d).clamp(0.0, 1.0);
        }
    }
    let probs = oracle.query(&perturbed)?;
    let k = probs.shape()[1];
    let mut total = 0.0f32;
    for i in 0..n {
        total += probs.data()[i * k + class];
    }
    Ok(total / n as f32)
}

/// Result of the AEVA analysis for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct AevaReport {
    /// Best universal class mass achieved per class (the adversarial peak).
    pub peaks: Vec<f32>,
    /// MAD-normalized anomaly of the largest peak (the model score).
    pub anomaly: f32,
    /// Class with the most extreme peak (backdoor-target candidate).
    pub candidate_target: usize,
}

/// Runs AEVA against a black-box model.
///
/// # Errors
///
/// Propagates query failures; requires ≥3 classes and a non-empty batch.
pub fn aeva(
    oracle: &dyn BlackBoxModel,
    images: &Tensor,
    config: &AevaConfig,
    rng: &mut Rng,
) -> Result<AevaReport> {
    if images.rank() != 4 || images.shape()[0] == 0 {
        return Err(DefenseError::InvalidInput {
            reason: format!(
                "AEVA expects non-empty [n, c, h, w], got {:?}",
                images.shape()
            ),
        });
    }
    let num_classes = oracle.num_classes();
    if num_classes < 3 {
        return Err(DefenseError::InvalidInput {
            reason: "AEVA needs at least 3 classes".to_string(),
        });
    }
    let inner: usize = images.shape()[1..].iter().product();
    let delta_shape: Vec<usize> = images.shape()[1..].to_vec();
    let mut peaks = Vec::with_capacity(num_classes);
    for class in 0..num_classes {
        let mut delta = Tensor::zeros(&delta_shape);
        let mut best = class_mass(oracle, images, &delta, class)?;
        for _ in 0..config.steps {
            // Antithetic NES gradient estimate of the class mass.
            let mut grad = vec![0.0f32; inner];
            for _ in 0..config.population / 2 {
                let noise = Tensor::randn(&delta_shape, rng);
                let plus = delta.zip_map(&noise, |d, z| d + config.sigma * z)?;
                let minus = delta.zip_map(&noise, |d, z| d - config.sigma * z)?;
                let fp = class_mass(oracle, images, &plus, class)?;
                let fm = class_mass(oracle, images, &minus, class)?;
                let scale = (fp - fm) / (2.0 * config.sigma);
                for (g, &z) in grad.iter_mut().zip(noise.data()) {
                    *g += scale * z;
                }
            }
            for (d, g) in delta.data_mut().iter_mut().zip(&grad) {
                *d = (*d + config.lr * g / (config.population / 2).max(1) as f32)
                    .clamp(-config.epsilon, config.epsilon);
            }
            best = best.max(class_mass(oracle, images, &delta, class)?);
        }
        peaks.push(best);
    }
    let mut sorted = peaks.clone();
    sorted.sort_by(f32::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f32> = peaks.iter().map(|p| (p - median).abs()).collect();
    devs.sort_by(f32::total_cmp);
    let mad = devs[devs.len() / 2].max(1e-6);
    let (candidate_target, &max_peak) = peaks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    Ok(AevaReport {
        anomaly: (max_peak - median) / mad,
        peaks,
        candidate_target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_attacks::{poison_dataset, AttackKind};
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, Architecture, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::QueryOracle;

    #[test]
    fn aeva_runs_and_flags_a_candidate() {
        let mut rng = Rng::new(0);
        let data = SynthDataset::Cifar10.generate(25, 16, 41).unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, &mut rng).unwrap();
        let cfg = kind.default_config(2);
        let poisoned = poison_dataset(&data, attack.as_ref(), &cfg, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        Trainer::new(TrainConfig::default())
            .fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                &mut rng,
            )
            .unwrap();
        let probes = data.subsample(0.04, &mut rng).unwrap().images;
        let oracle = QueryOracle::new(model, 10);
        let report = aeva(&oracle, &probes, &AevaConfig::default(), &mut rng).unwrap();
        assert_eq!(report.peaks.len(), 10);
        assert!(report.peaks.iter().all(|p| (0.0..=1.0).contains(p)));
        assert!(report.anomaly.is_finite());
        assert!(oracle.queries_used() > 0);
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(1);
        let spec = ModelSpec::new(3, 8, 2);
        let model = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 2);
        let imgs = Tensor::zeros(&[2, 3, 8, 8]);
        assert!(aeva(&oracle, &imgs, &AevaConfig::default(), &mut rng).is_err());
    }
}
