//! Shared machinery for the defense implementations: batched inference
//! helpers, k-means, image corruptions and DCT features.

use crate::Result;
use bprom_nn::{softmax, Layer, Mode, Sequential};
use bprom_tensor::{Rng, Tensor};

/// Batched softmax predictions `[n, k]` for a `[n, c, h, w]` image tensor.
///
/// # Errors
///
/// Propagates model failures.
pub fn predict_probs(model: &mut Sequential, images: &Tensor) -> Result<Tensor> {
    let logits = model.forward(images, Mode::Eval)?;
    Ok(softmax(&logits)?)
}

/// Argmax class per row of a `[n, k]` probability matrix.
pub fn argmax_rows(probs: &Tensor) -> Vec<usize> {
    let (n, k) = (probs.shape()[0], probs.shape()[1]);
    (0..n)
        .map(|i| {
            let row = &probs.data()[i * k..(i + 1) * k];
            let mut best = 0;
            for j in 1..k {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

/// Shannon entropy of each row of a probability matrix.
pub fn row_entropies(probs: &Tensor) -> Vec<f32> {
    let (n, k) = (probs.shape()[0], probs.shape()[1]);
    (0..n)
        .map(|i| {
            probs.data()[i * k..(i + 1) * k]
                .iter()
                .map(|&p| {
                    let p = p.max(1e-9);
                    -p * p.ln()
                })
                .sum()
        })
        .collect()
}

/// Penultimate-layer activations flattened to `[n, d]` rows.
///
/// # Errors
///
/// Propagates model failures.
pub fn activations(model: &mut Sequential, images: &Tensor) -> Result<Vec<Vec<f32>>> {
    let feats = model.penultimate(images, Mode::Eval)?;
    let n = feats.shape()[0];
    let d: usize = feats.shape()[1..].iter().product();
    Ok((0..n)
        .map(|i| feats.data()[i * d..(i + 1) * d].to_vec())
        .collect())
}

/// k-means clustering (Lloyd's algorithm) with deterministic seeding.
/// Returns per-point cluster assignments.
pub fn kmeans(points: &[Vec<f32>], k: usize, iters: usize, rng: &mut Rng) -> Vec<usize> {
    let n = points.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let dim = points[0].len();
    // Initialize with k distinct random points.
    let init = rng.sample_indices(n, k);
    let mut centers: Vec<Vec<f32>> = init.iter().map(|&i| points[i].clone()).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d: f32 = p.iter().zip(center).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f32;
                }
                centers[c] = sums[c].clone();
            }
        }
    }
    assign
}

/// Top singular direction of mean-centered rows via power iteration;
/// returns per-row squared projections (the Spectral Signatures statistic).
pub fn spectral_scores(points: &[Vec<f32>]) -> Vec<f32> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = points[0].len();
    let mut mean = vec![0.0f32; dim];
    for p in points {
        for (m, &v) in mean.iter_mut().zip(p) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    let centered: Vec<Vec<f32>> = points
        .iter()
        .map(|p| p.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
        .collect();
    // Power iteration on AᵀA without materializing it.
    let mut v = vec![1.0f32; dim];
    for _ in 0..50 {
        // u = A v  (length n), then w = Aᵀ u (length dim).
        let mut w = vec![0.0f32; dim];
        for row in &centered {
            let u: f32 = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
            for (wi, &a) in w.iter_mut().zip(row) {
                *wi += u * a;
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            break;
        }
        for x in &mut w {
            *x /= norm;
        }
        v = w;
    }
    centered
        .iter()
        .map(|row| {
            let proj: f32 = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
            proj * proj
        })
        .collect()
}

/// Image corruption families used by TeCo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Additive Gaussian noise.
    Noise,
    /// Box blur.
    Blur,
    /// Brightness shift.
    Brightness,
    /// Contrast reduction toward the mean.
    Contrast,
}

impl Corruption {
    /// The corruption set TeCo averages over.
    pub const ALL: [Corruption; 4] = [
        Corruption::Noise,
        Corruption::Blur,
        Corruption::Brightness,
        Corruption::Contrast,
    ];

    /// Applies the corruption at `severity ∈ {1..5}` to one `[c, h, w]`
    /// image. Deterministic given the RNG stream.
    pub fn apply(self, image: &Tensor, severity: usize, rng: &mut Rng) -> Tensor {
        let s = severity as f32;
        match self {
            Corruption::Noise => {
                let mut out = image.clone();
                for v in out.data_mut() {
                    *v = (*v + 0.04 * s * rng.normal()).clamp(0.0, 1.0);
                }
                out
            }
            Corruption::Blur => {
                let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
                let radius = severity.min(3);
                let mut out = image.clone();
                for ci in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let mut acc = 0.0f32;
                            let mut cnt = 0usize;
                            for dy in y.saturating_sub(radius)..(y + radius + 1).min(h) {
                                for dx in x.saturating_sub(radius)..(x + radius + 1).min(w) {
                                    acc += image.data()[(ci * h + dy) * w + dx];
                                    cnt += 1;
                                }
                            }
                            out.data_mut()[(ci * h + y) * w + x] = acc / cnt as f32;
                        }
                    }
                }
                out
            }
            Corruption::Brightness => image.map(|v| (v + 0.08 * s).clamp(0.0, 1.0)),
            Corruption::Contrast => {
                let mean = image.mean();
                let factor = 1.0 - 0.15 * s;
                image.map(|v| (mean + (v - mean) * factor).clamp(0.0, 1.0))
            }
        }
    }
}

/// 2-D DCT-II magnitude features of a `[c, h, w]` image, flattened (the
/// Frequency defense's input representation).
pub fn dct_features(image: &Tensor) -> Vec<f32> {
    let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
    let mut out = Vec::with_capacity(c * h * w);
    for ci in 0..c {
        for u in 0..h {
            for v in 0..w {
                let mut acc = 0.0f32;
                for y in 0..h {
                    for x in 0..w {
                        acc += image.data()[(ci * h + y) * w + x]
                            * ((std::f32::consts::PI * (y as f32 + 0.5) * u as f32 / h as f32)
                                .cos())
                            * ((std::f32::consts::PI * (x as f32 + 0.5) * v as f32 / w as f32)
                                .cos());
                    }
                }
                // Log magnitude compresses the dynamic range so the linear
                // classifier sees high-frequency artefacts, not just DC.
                out.push((1.0 + acc.abs() / (h as f32 * w as f32).sqrt()).ln());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut rng = Rng::new(0);
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![10.0 + 0.01 * i as f32, 0.0]);
            points.push(vec![-10.0 - 0.01 * i as f32, 0.0]);
        }
        let assign = kmeans(&points, 2, 20, &mut rng);
        for pair in assign.chunks(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn spectral_scores_flag_outlier_direction() {
        // 18 points near origin, 2 far along a fixed direction.
        let mut points: Vec<Vec<f32>> = (0..18).map(|i| vec![0.01 * i as f32, 0.0]).collect();
        points.push(vec![5.0, 5.0]);
        points.push(vec![5.2, 5.1]);
        let scores = spectral_scores(&points);
        let max_norm = scores[..18].iter().copied().fold(0.0f32, f32::max);
        assert!(scores[18] > max_norm && scores[19] > max_norm);
    }

    #[test]
    fn corruptions_stay_in_range_and_change_image() {
        let mut rng = Rng::new(1);
        let img = Tensor::rand_uniform(&[3, 8, 8], 0.2, 0.8, &mut rng);
        for c in Corruption::ALL {
            let out = c.apply(&img, 3, &mut rng);
            assert!(out.min() >= 0.0 && out.max() <= 1.0, "{c:?}");
            assert_ne!(out, img, "{c:?}");
        }
    }

    #[test]
    fn dct_constant_image_is_dc_only() {
        let img = Tensor::full(&[1, 4, 4], 0.5);
        let f = dct_features(&img);
        // DC coefficient (u=v=0) dominates; all others ~0.
        assert!(f[0] > 1.0);
        for &v in &f[1..] {
            assert!(v < 1e-4, "{v}");
        }
    }

    #[test]
    fn entropy_of_uniform_is_ln_k() {
        let probs = Tensor::full(&[1, 4], 0.25);
        let e = row_entropies(&probs);
        assert!((e[0] - (4.0f32).ln()).abs() < 1e-5);
    }
}
