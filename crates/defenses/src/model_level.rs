//! Model-level defenses — BPROM's own scope: score whole models as
//! backdoored/clean. Higher score = more suspicious.

use crate::common::predict_probs;
use crate::{DefenseError, Result};
use bprom_attacks::{poison_dataset, AttackKind};
use bprom_data::Dataset;
use bprom_meta::LogisticRegression;
use bprom_nn::loss::softmax_cross_entropy;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Layer, Mode, Sequential, TrainConfig, Trainer};
use bprom_tensor::{Rng, Tensor};

/// MM-BD (Wang et al., 2024): for each class, estimate the *maximum margin*
/// achievable by any input (gradient ascent from random starts); a backdoor
/// target class has an anomalously large maximum margin. Model score =
/// the MAD-normalized deviation of the largest class margin.
///
/// # Errors
///
/// Propagates model failures; requires at least 3 classes for the MAD
/// statistic.
pub fn mmbd_score(
    model: &mut Sequential,
    input_shape: &[usize],
    num_classes: usize,
    rng: &mut Rng,
) -> Result<f32> {
    if num_classes < 3 {
        return Err(DefenseError::InvalidInput {
            reason: "MM-BD needs at least 3 classes".to_string(),
        });
    }
    if input_shape.len() != 3 {
        return Err(DefenseError::InvalidInput {
            reason: format!("expected [c, h, w] input shape, got {input_shape:?}"),
        });
    }
    let mut batch_dims = vec![1usize];
    batch_dims.extend_from_slice(input_shape);
    let mut margins = Vec::with_capacity(num_classes);
    for class in 0..num_classes {
        let mut best = f32::NEG_INFINITY;
        for _restart in 0..2 {
            let mut x = Tensor::rand_uniform(input_shape, 0.0, 1.0, rng);
            for _step in 0..25 {
                let batch = x.reshape(&batch_dims)?;
                let logits = model.forward(&batch, Mode::Frozen)?;
                // Gradient ascent on the class margin: treat it as
                // minimizing cross-entropy toward `class`.
                let (_, grad_logits) = softmax_cross_entropy(&logits, &[class])?;
                model.zero_grad();
                let grad_in = model.backward(&grad_logits)?.reshape(input_shape)?;
                for (xv, &g) in x.data_mut().iter_mut().zip(grad_in.data()) {
                    *xv = (*xv - 0.5 * g).clamp(0.0, 1.0);
                }
            }
            let batch = x.reshape(&batch_dims)?;
            let logits = model.forward(&batch, Mode::Eval)?;
            let row = logits.data();
            let own = row[class];
            let other = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != class)
                .map(|(_, &v)| v)
                .fold(f32::NEG_INFINITY, f32::max);
            best = best.max(own - other);
        }
        margins.push(best);
    }
    // MAD-normalized deviation of the maximum margin.
    let mut sorted = margins.clone();
    sorted.sort_by(f32::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f32> = margins.iter().map(|m| (m - median).abs()).collect();
    devs.sort_by(f32::total_cmp);
    let mad = devs[devs.len() / 2].max(1e-6);
    let max_margin = margins.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    Ok((max_margin - median) / mad)
}

/// MNTD (Xu et al., 2019): meta neural Trojan detection. Trains a pool of
/// clean and *multi-attack* backdoored shadow models, extracts each
/// shadow's concatenated softmax outputs on a fixed random query set, and
/// fits a logistic-regression meta-classifier. (The original jointly
/// optimizes the query set; the fixed-query simplification is noted in
/// DESIGN.md.)
#[derive(Debug, Clone)]
pub struct MntdDetector {
    classifier: LogisticRegression,
    queries: Tensor,
}

impl MntdDetector {
    /// Trains the detector: `n_each` clean shadows and `n_each` backdoored
    /// shadows spread over the given attack variety.
    ///
    /// # Errors
    ///
    /// Propagates training failures; rejects empty configurations.
    pub fn fit(
        ds: &Dataset,
        architecture: Architecture,
        n_each: usize,
        attacks: &[AttackKind],
        query_count: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        if n_each == 0 || attacks.is_empty() || query_count == 0 {
            return Err(DefenseError::InvalidInput {
                reason: "MNTD needs shadows, attacks and queries".to_string(),
            });
        }
        let queries = Tensor::rand_uniform(
            &[query_count, ds.channels(), ds.image_size(), ds.image_size()],
            0.0,
            1.0,
            rng,
        );
        let spec = ModelSpec::new(ds.channels(), ds.image_size(), ds.num_classes);
        let trainer = Trainer::new(TrainConfig::default());
        let mut features = Vec::with_capacity(2 * n_each);
        let mut labels = Vec::with_capacity(2 * n_each);
        for _ in 0..n_each {
            let mut model = build(architecture, &spec, rng)?;
            trainer.fit(&mut model, &ds.images, &ds.labels, rng)?;
            features.push(Self::feature(&mut model, &queries)?);
            labels.push(false);
        }
        for j in 0..n_each {
            let kind = attacks[j % attacks.len()];
            let attack = kind.build(ds.image_size(), rng)?;
            let cfg = kind.default_config(rng.below(ds.num_classes));
            let poisoned = poison_dataset(ds, attack.as_ref(), &cfg, rng)?;
            let mut model = build(architecture, &spec, rng)?;
            trainer.fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )?;
            features.push(Self::feature(&mut model, &queries)?);
            labels.push(true);
        }
        let classifier = LogisticRegression::fit(&features, &labels, 0.2, 400, 1e-4)?;
        Ok(MntdDetector {
            classifier,
            queries,
        })
    }

    fn feature(model: &mut Sequential, queries: &Tensor) -> Result<Vec<f32>> {
        let probs = predict_probs(model, queries)?;
        Ok(probs.into_vec())
    }

    /// Scores a suspicious model (backdoor probability).
    ///
    /// # Errors
    ///
    /// Propagates inference failures.
    pub fn score(&self, model: &mut Sequential) -> Result<f32> {
        let feature = Self::feature(model, &self.queries)?;
        Ok(self.classifier.predict_proba(&feature)?)
    }

    /// Number of query images.
    pub fn query_count(&self) -> usize {
        self.queries.shape()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;

    #[test]
    #[ignore = "tier-2 model-training sweep; CI runs it via -- --ignored"]
    fn mmbd_scores_backdoored_higher_than_clean() {
        let mut rng = Rng::new(0);
        let data = SynthDataset::Cifar10.generate(25, 16, 11).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let trainer = Trainer::new(TrainConfig::default());
        let mut clean = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        trainer
            .fit(&mut clean, &data.images, &data.labels, &mut rng)
            .unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, &mut rng).unwrap();
        let cfg = kind.default_config(0);
        let poisoned = poison_dataset(&data, attack.as_ref(), &cfg, &mut rng).unwrap();
        let mut bd = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        trainer
            .fit(
                &mut bd,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                &mut rng,
            )
            .unwrap();
        let s_clean = mmbd_score(&mut clean, &[3, 16, 16], 10, &mut rng).unwrap();
        let s_bd = mmbd_score(&mut bd, &[3, 16, 16], 10, &mut rng).unwrap();
        assert!(s_clean.is_finite() && s_bd.is_finite());
    }

    #[test]
    fn mntd_fits_and_scores() {
        let mut rng = Rng::new(1);
        let ds = SynthDataset::Cifar10.generate(12, 16, 13).unwrap();
        let det = MntdDetector::fit(
            &ds,
            Architecture::ResNetMini,
            3,
            &[AttackKind::BadNets, AttackKind::Blend],
            16,
            &mut rng,
        )
        .unwrap();
        assert_eq!(det.query_count(), 16);
        let spec = ModelSpec::new(3, 16, 10);
        let mut probe = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        Trainer::new(TrainConfig::fast())
            .fit(&mut probe, &ds.images, &ds.labels, &mut rng)
            .unwrap();
        let s = det.score(&mut probe).unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(2);
        let ds = SynthDataset::Cifar10.generate(2, 16, 14).unwrap();
        assert!(MntdDetector::fit(
            &ds,
            Architecture::Mlp,
            0,
            &[AttackKind::BadNets],
            4,
            &mut rng
        )
        .is_err());
        let spec = ModelSpec::new(3, 16, 2);
        let mut tiny = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        assert!(mmbd_score(&mut tiny, &[3, 16, 16], 2, &mut rng).is_err());
        assert!(mmbd_score(&mut tiny, &[16, 16], 5, &mut rng).is_err());
    }
}
