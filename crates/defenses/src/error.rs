use std::fmt;

/// Error type for defense computations.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseError {
    /// A model forward/backward pass failed.
    Model(String),
    /// A tensor operation failed.
    Tensor(String),
    /// A defense configuration or input is invalid.
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::Model(m) => write!(f, "model error: {m}"),
            DefenseError::Tensor(m) => write!(f, "tensor error: {m}"),
            DefenseError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for DefenseError {}

impl From<bprom_nn::NnError> for DefenseError {
    fn from(e: bprom_nn::NnError) -> Self {
        DefenseError::Model(e.to_string())
    }
}

impl From<bprom_tensor::TensorError> for DefenseError {
    fn from(e: bprom_tensor::TensorError) -> Self {
        DefenseError::Tensor(e.to_string())
    }
}

impl From<bprom_attacks::AttackError> for DefenseError {
    fn from(e: bprom_attacks::AttackError) -> Self {
        DefenseError::Model(e.to_string())
    }
}

impl From<bprom_meta::MetaError> for DefenseError {
    fn from(e: bprom_meta::MetaError) -> Self {
        DefenseError::Model(e.to_string())
    }
}

impl From<bprom_vp::VpError> for DefenseError {
    fn from(e: bprom_vp::VpError) -> Self {
        DefenseError::Model(e.to_string())
    }
}

impl From<bprom_data::DataError> for DefenseError {
    fn from(e: bprom_data::DataError) -> Self {
        DefenseError::Tensor(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DefenseError::InvalidInput {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }
}
