//! Gradient-free trigger inversion: a query-only Neural-Cleanse-style
//! baseline for *model-level* detection, built for budget-fair shootouts
//! against BPROM.
//!
//! For each candidate target class, a CMA-ES search (the same optimizer
//! BPROM uses for prompt tuning, `bprom_vp::CmaEs`) optimizes a small
//! patch trigger — a mask and a pattern, both sigmoid-parameterized —
//! stamped on the bottom-right corner of a clean probe batch, minimizing
//! `(1 − mean target probability) + λ · mean(mask)`. A backdoor target
//! admits a tiny high-ASR trigger; the model score is the MAD anomaly of
//! the largest per-class ASR, exactly as in AEVA ([`crate::aeva`]).
//!
//! Query accounting uses the *same* unit as BPROM's `InspectBudget`
//! (images submitted, metered through `bprom_vp::CountingOracle`), and
//! an optional hard budget stops the search at generation granularity —
//! the search never submits an image that would cross the budget, even
//! under hostile fault/retry stacks.

use crate::{DefenseError, Result};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{BlackBoxModel, CmaEs, CountingOracle, VpError};

/// Configuration of the trigger-inversion search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerInversionConfig {
    /// CMA-ES generations per candidate target class.
    pub generations: usize,
    /// CMA-ES population per generation (≥ 4).
    pub population: usize,
    /// Initial CMA-ES step size.
    pub sigma: f32,
    /// Side length of the square trigger patch (bottom-right corner).
    pub mask_size: usize,
    /// Mask-area regularizer λ: pressure toward small triggers, which is
    /// what distinguishes a backdoor shortcut from ordinary adversarial
    /// room.
    pub lambda_mask: f32,
    /// Hard cap on images submitted across the whole search (all classes
    /// combined), in the same unit as BPROM's `InspectBudget`. `None`
    /// runs to completion.
    pub query_budget: Option<u64>,
}

impl Default for TriggerInversionConfig {
    fn default() -> Self {
        TriggerInversionConfig {
            generations: 10,
            population: 8,
            sigma: 0.3,
            mask_size: 4,
            lambda_mask: 0.1,
            query_budget: None,
        }
    }
}

/// Result of the trigger-inversion analysis for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerInversionReport {
    /// Best stamped-batch attack success rate achieved per class (the
    /// fraction of probe images the inverted trigger flips to the class).
    pub class_asr: Vec<f32>,
    /// MAD-normalized anomaly of the largest per-class ASR (the model
    /// score).
    pub anomaly: f32,
    /// Class with the most extreme ASR (backdoor-target candidate).
    pub candidate_target: usize,
    /// Images submitted by the search (same unit as `InspectBudget`).
    pub queries: u64,
    /// Candidates whose evaluation faulted through the oracle stack and
    /// were scored `+∞` instead of retried forever.
    pub penalized_candidates: u64,
    /// Whether the search stopped early because the next generation
    /// would have crossed [`TriggerInversionConfig::query_budget`].
    pub budget_exhausted: bool,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Stamps the sigmoid-decoded (mask, pattern) candidate onto the
/// bottom-right `m × m` corner of every probe image.
fn stamp(images: &Tensor, theta: &[f32], mask_size: usize) -> Tensor {
    let [n, c, h, w] = [
        images.shape()[0],
        images.shape()[1],
        images.shape()[2],
        images.shape()[3],
    ];
    let m = mask_size;
    let mask = &theta[..m * m];
    let pattern = &theta[m * m..];
    let mut out = images.clone();
    let data = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            for i in 0..m {
                for j in 0..m {
                    let a = sigmoid(mask[i * m + j]);
                    let p = sigmoid(pattern[ch * m * m + i * m + j]);
                    let idx = ((img * c + ch) * h + (h - m + i)) * w + (w - m + j);
                    data[idx] = (1.0 - a) * data[idx] + a * p;
                }
            }
        }
    }
    out
}

/// Mean decoded mask activation of a candidate (the area penalty).
fn mask_area(theta: &[f32], mask_size: usize) -> f32 {
    let m2 = mask_size * mask_size;
    theta[..m2].iter().map(|&x| sigmoid(x)).sum::<f32>() / m2 as f32
}

/// Runs gradient-free trigger inversion against a black-box model.
///
/// # Errors
///
/// Propagates hard query failures (transient faults are absorbed as
/// penalized candidates); requires ≥3 classes, a non-empty probe batch,
/// and a patch that fits the images.
pub fn invert_trigger(
    oracle: &dyn BlackBoxModel,
    images: &Tensor,
    config: &TriggerInversionConfig,
    rng: &mut Rng,
) -> Result<TriggerInversionReport> {
    if images.rank() != 4 || images.shape()[0] == 0 {
        return Err(DefenseError::InvalidInput {
            reason: format!(
                "trigger inversion expects non-empty [n, c, h, w], got {:?}",
                images.shape()
            ),
        });
    }
    let [n, c, h, w] = [
        images.shape()[0],
        images.shape()[1],
        images.shape()[2],
        images.shape()[3],
    ];
    if config.mask_size == 0 || config.mask_size > h.min(w) {
        return Err(DefenseError::InvalidInput {
            reason: format!("mask size {} does not fit {h}x{w} images", config.mask_size),
        });
    }
    let num_classes = oracle.num_classes();
    if num_classes < 3 {
        return Err(DefenseError::InvalidInput {
            reason: "trigger inversion needs at least 3 classes".to_string(),
        });
    }
    let counting = CountingOracle::new(oracle);
    let m2 = config.mask_size * config.mask_size;
    let dim = m2 + c * m2;
    let per_generation = (config.population * n) as u64;
    let mut class_asr = vec![0.0f32; num_classes];
    let mut penalized_candidates = 0u64;
    let mut budget_exhausted = false;
    'classes: for class in 0..num_classes {
        let mut es = CmaEs::new(&vec![0.0f32; dim], config.sigma, config.population)
            .map_err(DefenseError::from)?;
        for _ in 0..config.generations {
            if let Some(budget) = config.query_budget {
                // Generation-granular budget fence: stop *before* the
                // first image that would cross the cap. Faulted attempts
                // bill nothing (no response was delivered), so the fence
                // is exact under hostile fault/retry stacks too.
                if counting.local_queries() + per_generation > budget {
                    budget_exhausted = true;
                    break 'classes;
                }
            }
            let candidates = es.ask(rng);
            let mut fitness = Vec::with_capacity(candidates.len());
            for theta in &candidates {
                let stamped = stamp(images, theta, config.mask_size);
                match counting.query(&stamped) {
                    Ok(probs) => {
                        let k = probs.shape()[1];
                        let mut mass = 0.0f32;
                        let mut flipped = 0usize;
                        for i in 0..n {
                            let row = &probs.data()[i * k..(i + 1) * k];
                            mass += row[class];
                            let argmax = row
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.total_cmp(b.1))
                                .map(|(idx, _)| idx)
                                .unwrap_or(0);
                            if argmax == class {
                                flipped += 1;
                            }
                        }
                        let asr = flipped as f32 / n as f32;
                        class_asr[class] = class_asr[class].max(asr);
                        fitness.push(
                            (1.0 - mass / n as f32)
                                + config.lambda_mask * mask_area(theta, config.mask_size),
                        );
                    }
                    Err(VpError::OracleFault { .. }) => {
                        // Same contract as BPROM's CMA-ES prompt search:
                        // a candidate whose evaluation faults is scored
                        // +∞ (CMA-ES tolerates infinite fitness) rather
                        // than retried forever.
                        penalized_candidates += 1;
                        fitness.push(f32::INFINITY);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            es.tell(&candidates, &fitness).map_err(DefenseError::from)?;
        }
    }
    let mut sorted = class_asr.clone();
    sorted.sort_by(f32::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f32> = class_asr.iter().map(|a| (a - median).abs()).collect();
    devs.sort_by(f32::total_cmp);
    let mad = devs[devs.len() / 2].max(1e-6);
    let (candidate_target, &max_asr) = class_asr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    Ok(TriggerInversionReport {
        anomaly: (max_asr - median) / mad,
        class_asr,
        candidate_target,
        queries: counting.local_queries(),
        penalized_candidates,
        budget_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_attacks::{poison_dataset, AttackKind};
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, Architecture, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::QueryOracle;

    fn backdoored_oracle(rng: &mut Rng) -> (QueryOracle, Tensor) {
        let data = SynthDataset::Cifar10.generate(25, 16, 41).unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, rng).unwrap();
        let cfg = kind.default_config(2);
        let poisoned = poison_dataset(&data, attack.as_ref(), &cfg, rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, rng).unwrap();
        Trainer::new(TrainConfig::default())
            .fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )
            .unwrap();
        let probes = data.subsample(0.04, rng).unwrap().images;
        (QueryOracle::new(model, 10), probes)
    }

    #[test]
    fn inversion_runs_and_flags_a_candidate() {
        let mut rng = Rng::new(0);
        let (oracle, probes) = backdoored_oracle(&mut rng);
        let config = TriggerInversionConfig {
            generations: 4,
            ..TriggerInversionConfig::default()
        };
        let report = invert_trigger(&oracle, &probes, &config, &mut rng).unwrap();
        assert_eq!(report.class_asr.len(), 10);
        assert!(report.class_asr.iter().all(|a| (0.0..=1.0).contains(a)));
        assert!(report.anomaly.is_finite());
        assert!(!report.budget_exhausted);
        assert_eq!(report.penalized_candidates, 0);
        // 10 classes × 4 generations × population × batch images.
        let n = probes.shape()[0] as u64;
        assert_eq!(report.queries, 10 * 4 * config.population as u64 * n);
        assert_eq!(oracle.queries_used(), report.queries);
    }

    #[test]
    fn budget_fence_is_exact_at_generation_granularity() {
        let mut rng = Rng::new(1);
        let (oracle, probes) = backdoored_oracle(&mut rng);
        let n = probes.shape()[0] as u64;
        let config = TriggerInversionConfig {
            generations: 4,
            ..TriggerInversionConfig::default()
        };
        let per_generation = config.population as u64 * n;
        // Budget allows exactly 3 generations plus half of a fourth: the
        // fourth must not start.
        let budget = 3 * per_generation + per_generation / 2;
        let capped = TriggerInversionConfig {
            query_budget: Some(budget),
            ..config
        };
        let report = invert_trigger(&oracle, &probes, &capped, &mut rng).unwrap();
        assert!(report.budget_exhausted);
        assert_eq!(report.queries, 3 * per_generation, "stops before the cap");
        assert!(report.queries <= budget);
    }

    #[test]
    fn inversion_is_deterministic() {
        let mut rng = Rng::new(2);
        let (oracle, probes) = backdoored_oracle(&mut rng);
        let config = TriggerInversionConfig {
            generations: 2,
            ..TriggerInversionConfig::default()
        };
        let a = invert_trigger(&oracle, &probes, &config, &mut Rng::new(5)).unwrap();
        let b = invert_trigger(&oracle, &probes, &config, &mut Rng::new(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        let mut rng = Rng::new(3);
        let spec = ModelSpec::new(3, 8, 2);
        let model = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 2);
        let imgs = Tensor::zeros(&[2, 3, 8, 8]);
        let config = TriggerInversionConfig::default();
        assert!(invert_trigger(&oracle, &imgs, &config, &mut rng).is_err());
        let spec = ModelSpec::new(3, 8, 10);
        let model = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        let oracle = QueryOracle::new(model, 10);
        let bad_mask = TriggerInversionConfig {
            mask_size: 99,
            ..TriggerInversionConfig::default()
        };
        assert!(invert_trigger(&oracle, &imgs, &bad_mask, &mut rng).is_err());
        assert!(invert_trigger(&oracle, &Tensor::zeros(&[0, 3, 8, 8]), &config, &mut rng).is_err());
    }
}
