//! Input-level defenses: score individual inputs as trigger/benign.
//! Higher score = more suspicious, for every detector here.

use crate::common::{argmax_rows, dct_features, predict_probs, row_entropies, Corruption};
use crate::{DefenseError, Result};
use bprom_meta::LogisticRegression;
use bprom_nn::loss::softmax_cross_entropy;
use bprom_nn::{Layer, Mode, Sequential};
use bprom_tensor::{Rng, Tensor};

fn check_batch(images: &Tensor) -> Result<(usize, usize)> {
    if images.rank() != 4 {
        return Err(DefenseError::InvalidInput {
            reason: format!("expected [n, c, h, w] inputs, got {:?}", images.shape()),
        });
    }
    Ok((images.shape()[0], images.shape()[1]))
}

/// STRIP (Gao et al., 2019): superimpose each input with `n_overlays`
/// random clean images; trigger inputs keep *low* prediction entropy
/// because the trigger survives blending. Score = negative mean entropy.
///
/// # Errors
///
/// Propagates model failures; rejects an empty overlay pool.
pub fn strip_scores(
    model: &mut Sequential,
    inputs: &Tensor,
    overlay_pool: &Tensor,
    n_overlays: usize,
    rng: &mut Rng,
) -> Result<Vec<f32>> {
    let (n, _) = check_batch(inputs)?;
    let pool = overlay_pool.shape()[0];
    if pool == 0 || n_overlays == 0 {
        return Err(DefenseError::InvalidInput {
            reason: "STRIP needs a non-empty overlay pool".to_string(),
        });
    }
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let x = inputs.sample(i)?;
        let mut blended = Vec::with_capacity(n_overlays);
        for _ in 0..n_overlays {
            let overlay = overlay_pool.sample(rng.below(pool))?;
            // 0.65/0.35 mix keeps enough trigger energy on small canvases
            // while still perturbing benign content.
            blended.push(x.zip_map(&overlay, |a, b| 0.65 * a + 0.35 * b)?);
        }
        let batch = Tensor::stack(&blended)?;
        let probs = predict_probs(model, &batch)?;
        let mean_entropy = row_entropies(&probs).iter().sum::<f32>() / n_overlays as f32;
        scores.push(-mean_entropy);
    }
    Ok(scores)
}

/// SCALE-UP (Guo et al., 2023): amplify pixel values by factors 2..=5;
/// trigger predictions survive amplification. Score = scaled prediction
/// consistency (fraction of amplified copies agreeing with the original).
///
/// # Errors
///
/// Propagates model failures.
pub fn scale_up_scores(model: &mut Sequential, inputs: &Tensor) -> Result<Vec<f32>> {
    let (n, _) = check_batch(inputs)?;
    let base = predict_probs(model, inputs)?;
    let base_pred = argmax_rows(&base);
    let mut agree = vec![0usize; n];
    let factors = [2.0f32, 3.0, 4.0, 5.0];
    for &f in &factors {
        let scaled = inputs.map(|v| (v * f).clamp(0.0, 1.0));
        let probs = predict_probs(model, &scaled)?;
        let preds = argmax_rows(&probs);
        for i in 0..n {
            if preds[i] == base_pred[i] {
                agree[i] += 1;
            }
        }
    }
    Ok(agree
        .iter()
        .map(|&a| a as f32 / factors.len() as f32)
        .collect())
}

/// TeCo (Liu et al., 2023): corruption-robustness consistency. For each
/// corruption family, find the smallest severity that flips the
/// prediction; clean inputs flip at similar severities across families,
/// trigger inputs deviate. Score = standard deviation of flip severities.
///
/// # Errors
///
/// Propagates model failures.
pub fn teco_scores(model: &mut Sequential, inputs: &Tensor, rng: &mut Rng) -> Result<Vec<f32>> {
    let (n, _) = check_batch(inputs)?;
    let base = predict_probs(model, inputs)?;
    let base_pred = argmax_rows(&base);
    // flip_severity[corruption][sample]
    let mut flips = vec![vec![6.0f32; n]; Corruption::ALL.len()];
    for (ci, corruption) in Corruption::ALL.iter().enumerate() {
        for severity in 1..=5usize {
            let mut corrupted = Vec::with_capacity(n);
            for i in 0..n {
                corrupted.push(corruption.apply(&inputs.sample(i)?, severity, rng));
            }
            let probs = predict_probs(model, &Tensor::stack(&corrupted)?)?;
            let preds = argmax_rows(&probs);
            for i in 0..n {
                if flips[ci][i] > 5.0 && preds[i] != base_pred[i] {
                    flips[ci][i] = severity as f32;
                }
            }
        }
    }
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let vals: Vec<f32> = flips.iter().map(|f| f[i]).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        scores.push(var.sqrt());
    }
    Ok(scores)
}

/// SentiNet (Chou et al., 2018): find the most decision-critical region by
/// occlusion, transplant it onto clean carrier images, and measure how
/// often the transplant hijacks the carrier's prediction. Triggers
/// transplant perfectly. Score = fooled fraction.
///
/// # Errors
///
/// Propagates model failures; rejects an empty carrier pool.
pub fn sentinet_scores(
    model: &mut Sequential,
    inputs: &Tensor,
    carriers: &Tensor,
    patch: usize,
) -> Result<Vec<f32>> {
    let (n, c) = check_batch(inputs)?;
    let (h, w) = (inputs.shape()[2], inputs.shape()[3]);
    let m = carriers.shape()[0];
    if m == 0 || patch == 0 || patch > h {
        return Err(DefenseError::InvalidInput {
            reason: "SentiNet needs carriers and a valid patch size".to_string(),
        });
    }
    let base = predict_probs(model, inputs)?;
    let base_pred = argmax_rows(&base);
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let x = inputs.sample(i)?;
        // Occlusion saliency: stride the occluder, find the region whose
        // masking drops the predicted-class probability most.
        let mut best_drop = f32::NEG_INFINITY;
        let mut best_pos = (0usize, 0usize);
        let stride = (patch / 2).max(1);
        let mut occluded = Vec::new();
        let mut positions = Vec::new();
        let mut y = 0;
        while y + patch <= h {
            let mut x0 = 0;
            while x0 + patch <= w {
                let mut occ = x.clone();
                for ch in 0..c {
                    for py in 0..patch {
                        for px in 0..patch {
                            occ.data_mut()[(ch * h + y + py) * w + x0 + px] = 0.5;
                        }
                    }
                }
                occluded.push(occ);
                positions.push((y, x0));
                x0 += stride;
            }
            y += stride;
        }
        let probs = predict_probs(model, &Tensor::stack(&occluded)?)?;
        let k = probs.shape()[1];
        for (row, &(py, px)) in positions.iter().enumerate() {
            let drop = base.at(&[i, base_pred[i]])? - probs.data()[row * k + base_pred[i]];
            if drop > best_drop {
                best_drop = drop;
                best_pos = (py, px);
            }
        }
        // Transplant the critical region onto carriers.
        let mut transplanted = Vec::with_capacity(m);
        for j in 0..m {
            let mut carrier = carriers.sample(j)?;
            for ch in 0..c {
                for py in 0..patch {
                    for px in 0..patch {
                        let idx = (ch * h + best_pos.0 + py) * w + best_pos.1 + px;
                        carrier.data_mut()[idx] = x.data()[idx];
                    }
                }
            }
            transplanted.push(carrier);
        }
        let tp = predict_probs(model, &Tensor::stack(&transplanted)?)?;
        let preds = argmax_rows(&tp);
        let fooled = preds.iter().filter(|&&p| p == base_pred[i]).count();
        scores.push(fooled as f32 / m as f32);
    }
    Ok(scores)
}

/// Frequency (Zeng et al., 2021): a binary classifier on DCT magnitude
/// features, trained to distinguish clean images from synthetically
/// perturbed ones (random patches / blends — the frequency artefacts
/// backdoor triggers leave). Score = classifier probability.
#[derive(Debug, Clone)]
pub struct FrequencyDetector {
    classifier: LogisticRegression,
}

impl FrequencyDetector {
    /// Trains the detector on a pool of clean images, generating the
    /// synthetic positive class internally.
    ///
    /// # Errors
    ///
    /// Propagates training failures; rejects an empty pool.
    pub fn fit(clean_pool: &Tensor, rng: &mut Rng) -> Result<Self> {
        let (n, c) = check_batch(clean_pool)?;
        if n == 0 {
            return Err(DefenseError::InvalidInput {
                reason: "Frequency detector needs clean images".to_string(),
            });
        }
        let (h, w) = (clean_pool.shape()[2], clean_pool.shape()[3]);
        let mut features = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for i in 0..n {
            let x = clean_pool.sample(i)?;
            features.push(dct_features(&x));
            labels.push(false);
            // Synthetic poison: random patch or global blend.
            let mut poisoned = x.clone();
            if rng.bernoulli(0.5) {
                let size = 2 + rng.below(3);
                let y0 = rng.below(h - size);
                let x0 = rng.below(w - size);
                for ch in 0..c {
                    for py in 0..size {
                        for px in 0..size {
                            poisoned.data_mut()[(ch * h + y0 + py) * w + x0 + px] =
                                if (py + px) % 2 == 0 { 1.0 } else { 0.0 };
                        }
                    }
                }
            } else {
                for v in poisoned.data_mut() {
                    *v = (*v * 0.7 + 0.3 * rng.uniform()).clamp(0.0, 1.0);
                }
            }
            features.push(dct_features(&poisoned));
            labels.push(true);
        }
        let classifier = LogisticRegression::fit(&features, &labels, 0.3, 800, 1e-4)?;
        Ok(FrequencyDetector { classifier })
    }

    /// Scores each input (probability of carrying frequency artefacts).
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn scores(&self, inputs: &Tensor) -> Result<Vec<f32>> {
        let (n, _) = check_batch(inputs)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(
                self.classifier
                    .predict_proba(&dct_features(&inputs.sample(i)?))?,
            );
        }
        Ok(out)
    }
}

/// TED (Mo et al., 2024): topological evolution dynamics. Benign inputs
/// follow reference trajectories through the layers; trigger inputs jump
/// between label neighbourhoods. Score = number of layers at which the
/// nearest reference (by activation distance) disagrees with the input's
/// final prediction.
///
/// # Errors
///
/// Propagates model failures; rejects an empty reference set.
pub fn ted_scores(
    model: &mut Sequential,
    inputs: &Tensor,
    references: &Tensor,
) -> Result<Vec<f32>> {
    let (n, _) = check_batch(inputs)?;
    let m = references.shape()[0];
    if m == 0 {
        return Err(DefenseError::InvalidInput {
            reason: "TED needs reference inputs".to_string(),
        });
    }
    // Reference trajectories and their final predictions.
    let ref_trace = model.forward_trace(references, Mode::Eval)?;
    let ref_preds = argmax_rows(ref_trace.last().ok_or_else(|| DefenseError::InvalidInput {
        reason: "model has no layers".to_string(),
    })?);
    let input_trace = model.forward_trace(inputs, Mode::Eval)?;
    let input_preds = argmax_rows(input_trace.last().expect("nonempty"));
    let layers = ref_trace.len();
    let mut scores = vec![0.0f32; n];
    for l in 0..layers {
        let rt = &ref_trace[l];
        let it = &input_trace[l];
        let d: usize = rt.shape()[1..].iter().product();
        for i in 0..n {
            let x = &it.data()[i * d..(i + 1) * d];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for j in 0..m {
                let r = &rt.data()[j * d..(j + 1) * d];
                let dist: f32 = x.iter().zip(r).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if dist < best_d {
                    best_d = dist;
                    best = j;
                }
            }
            if ref_preds[best] != input_preds[i] {
                scores[i] += 1.0;
            }
        }
    }
    Ok(scores)
}

/// CD — Cognitive Distillation (Huang et al., 2023): per input, optimize a
/// minimal mask that preserves the model's prediction; trigger inputs have
/// tiny cognitive patterns. Score = negative final mask L1 norm.
///
/// # Errors
///
/// Propagates model failures.
pub fn cd_scores(
    model: &mut Sequential,
    inputs: &Tensor,
    steps: usize,
    l1_weight: f32,
    rng: &mut Rng,
) -> Result<Vec<f32>> {
    let (n, _) = check_batch(inputs)?;
    let base = predict_probs(model, inputs)?;
    let base_pred = argmax_rows(&base);
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let x = inputs.sample(i)?;
        let dims = x.shape().to_vec();
        let mut batch_dims = vec![1usize];
        batch_dims.extend_from_slice(&dims);
        let baseline = Tensor::rand_uniform(&dims, 0.0, 1.0, rng);
        let mut mask = Tensor::full(&dims, 0.8);
        let lr = 0.1f32;
        for _ in 0..steps {
            // Forward through mask: x' = m*x + (1-m)*baseline.
            let mixed = mask
                .zip_map(&x, |m, xv| m * xv)?
                .zip_map(&mask.zip_map(&baseline, |m, b| (1.0 - m) * b)?, |a, b| {
                    a + b
                })?;
            let batch = mixed.reshape(&batch_dims)?;
            let logits = model.forward(&batch, Mode::Frozen)?;
            let (_, grad_logits) = softmax_cross_entropy(&logits, &[base_pred[i]])?;
            model.zero_grad();
            let grad_in = model.backward(&grad_logits)?.reshape(&dims)?;
            // dL/dm = grad_in * (x - baseline); plus L1 push toward 0.
            for ((mv, &g), (&xv, &bv)) in mask
                .data_mut()
                .iter_mut()
                .zip(grad_in.data())
                .zip(x.data().iter().zip(baseline.data()))
            {
                let grad_m = g * (xv - bv) + l1_weight;
                *mv = (*mv - lr * grad_m).clamp(0.0, 1.0);
            }
        }
        let l1: f32 = mask.data().iter().sum();
        scores.push(-l1 / mask.len() as f32);
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_attacks::{poison_dataset, AttackKind};
    use bprom_data::SynthDataset;
    use bprom_metrics::auroc;
    use bprom_nn::models::{build, Architecture, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};

    /// Shared fixture: a BadNets-infected model plus triggered/benign test
    /// inputs with ground-truth flags.
    fn infected_fixture(rng: &mut Rng) -> (Sequential, Tensor, Vec<bool>, Tensor) {
        let data = SynthDataset::Cifar10.generate(30, 16, 5).unwrap();
        let (train, test) = data.split(0.8, rng).unwrap();
        let kind = AttackKind::BadNets;
        let attack = kind.build(16, rng).unwrap();
        let cfg = kind.default_config(0);
        let poisoned = poison_dataset(&train, attack.as_ref(), &cfg, rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = build(Architecture::ResNetMini, &spec, rng).unwrap();
        Trainer::new(TrainConfig::default())
            .fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )
            .unwrap();
        // Build a half-triggered evaluation batch.
        let mut images = Vec::new();
        let mut is_trigger = Vec::new();
        for i in 0..24.min(test.len()) {
            let x = test.images.sample(i).unwrap();
            if i % 2 == 0 {
                images.push(attack.apply(&x, rng).unwrap());
                is_trigger.push(true);
            } else {
                images.push(x);
                is_trigger.push(false);
            }
        }
        let inputs = Tensor::stack(&images).unwrap();
        let clean_pool = test
            .select(&(24..test.len().min(48)).collect::<Vec<_>>())
            .unwrap()
            .images;
        (model, inputs, is_trigger, clean_pool)
    }

    #[test]
    fn strip_flags_triggered_inputs() {
        let mut rng = Rng::new(0);
        let (mut model, inputs, labels, pool) = infected_fixture(&mut rng);
        let scores = strip_scores(&mut model, &inputs, &pool, 8, &mut rng).unwrap();
        let auc = auroc(&scores, &labels).unwrap();
        assert!(auc > 0.6, "STRIP AUROC {auc}");
    }

    #[test]
    fn scale_up_flags_triggered_inputs() {
        let mut rng = Rng::new(1);
        let (mut model, inputs, labels, _) = infected_fixture(&mut rng);
        let scores = scale_up_scores(&mut model, &inputs).unwrap();
        let auc = auroc(&scores, &labels).unwrap();
        assert!(auc > 0.55, "SCALE-UP AUROC {auc}");
    }

    #[test]
    fn teco_produces_finite_scores() {
        let mut rng = Rng::new(2);
        let (mut model, inputs, labels, _) = infected_fixture(&mut rng);
        let scores = teco_scores(&mut model, &inputs, &mut rng).unwrap();
        assert_eq!(scores.len(), labels.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn sentinet_flags_patch_triggers() {
        let mut rng = Rng::new(3);
        let (mut model, inputs, labels, pool) = infected_fixture(&mut rng);
        let scores = sentinet_scores(&mut model, &inputs, &pool, 4).unwrap();
        let auc = auroc(&scores, &labels).unwrap();
        assert!(auc > 0.6, "SentiNet AUROC {auc}");
    }

    #[test]
    fn frequency_detector_flags_patches() {
        let mut rng = Rng::new(4);
        let (_, inputs, labels, pool) = infected_fixture(&mut rng);
        let det = FrequencyDetector::fit(&pool, &mut rng).unwrap();
        let scores = det.scores(&inputs).unwrap();
        let auc = auroc(&scores, &labels).unwrap();
        assert!(auc > 0.6, "Frequency AUROC {auc}");
    }

    #[test]
    fn ted_scores_have_expected_shape() {
        let mut rng = Rng::new(5);
        let (mut model, inputs, labels, pool) = infected_fixture(&mut rng);
        let scores = ted_scores(&mut model, &inputs, &pool).unwrap();
        assert_eq!(scores.len(), labels.len());
        assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn cd_scores_run_and_are_finite() {
        let mut rng = Rng::new(6);
        let (mut model, inputs, labels, _) = infected_fixture(&mut rng);
        // Subsample for speed.
        let small = inputs.reshape(inputs.shape()).unwrap();
        let scores = cd_scores(&mut model, &small, 10, 0.05, &mut rng).unwrap();
        assert_eq!(scores.len(), labels.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn input_validation() {
        let mut rng = Rng::new(7);
        let spec = ModelSpec::new(3, 8, 4);
        let mut model = build(Architecture::Mlp, &spec, &mut rng).unwrap();
        let bad = Tensor::zeros(&[3, 8, 8]);
        assert!(scale_up_scores(&mut model, &bad).is_err());
        let inputs = Tensor::zeros(&[2, 3, 8, 8]);
        let empty_pool = Tensor::zeros(&[2, 3, 8, 8]);
        assert!(strip_scores(&mut model, &inputs, &empty_pool, 0, &mut rng).is_err());
        assert!(sentinet_scores(&mut model, &inputs, &empty_pool, 0).is_err());
    }
}
