use crate::{Attack, AttackError, Result};
use bprom_tensor::{Rng, Tensor};

/// WaNet (Nguyen & Tran, 2021): an imperceptible elastic-warping backdoor.
///
/// A fixed smooth displacement field (bilinearly upsampled from a small
/// control grid, exactly like the original's `grid_rescale` construction)
/// warps every poisoned image; no pixels are pasted, so patch- and
/// saliency-based defenses see nothing.
#[derive(Debug, Clone)]
pub struct WaNet {
    /// Per-pixel displacement, `[2, h, w]` (dy then dx), in pixels.
    field: Tensor,
    image_size: usize,
}

impl WaNet {
    /// Creates the attack with the default warping strength (±5 px, scaled to the 16 px substrate).
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate image sizes (< 4 px).
    pub fn new(image_size: usize, rng: &mut Rng) -> Result<Self> {
        Self::with_strength(image_size, 5.0, rng)
    }

    /// Creates the attack with an explicit maximum displacement in pixels.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate image sizes (< 4 px).
    pub fn with_strength(image_size: usize, strength: f32, rng: &mut Rng) -> Result<Self> {
        if image_size < 4 {
            return Err(AttackError::InvalidConfig {
                reason: format!("WaNet requires image size >= 4, got {image_size}"),
            });
        }
        // Control grid of 16x16 random displacements — at the 16 px substrate
        // this yields per-pixel local scrambling, the texture signature conv
        // filters key on (the 32 px original uses a 4-point grid on much
        // richer natural texture).
        const GRID: usize = 16;
        let mut control = [[0.0f32; GRID]; GRID];
        let mut control_x = [[0.0f32; GRID]; GRID];
        for row in control.iter_mut() {
            for v in row.iter_mut() {
                *v = rng.uniform_in(-1.0, 1.0);
            }
        }
        for row in control_x.iter_mut() {
            for v in row.iter_mut() {
                *v = rng.uniform_in(-1.0, 1.0);
            }
        }
        let mut field = Tensor::zeros(&[2, image_size, image_size]);
        for y in 0..image_size {
            for x in 0..image_size {
                let gy = y as f32 / (image_size - 1) as f32 * (GRID - 1) as f32;
                let gx = x as f32 / (image_size - 1) as f32 * (GRID - 1) as f32;
                let (y0, x0) = (gy as usize, gx as usize);
                let (y1, x1) = ((y0 + 1).min(GRID - 1), (x0 + 1).min(GRID - 1));
                let (fy, fx) = (gy - y0 as f32, gx - x0 as f32);
                let lerp = |g: &[[f32; GRID]; GRID]| {
                    let top = g[y0][x0] * (1.0 - fx) + g[y0][x1] * fx;
                    let bot = g[y1][x0] * (1.0 - fx) + g[y1][x1] * fx;
                    top * (1.0 - fy) + bot * fy
                };
                field.data_mut()[y * image_size + x] = lerp(&control) * strength;
                field.data_mut()[image_size * image_size + y * image_size + x] =
                    lerp(&control_x) * strength;
            }
        }
        Ok(WaNet { field, image_size })
    }

    fn bilinear(image: &Tensor, c: usize, y: f32, x: f32, size: usize) -> f32 {
        let y = y.clamp(0.0, (size - 1) as f32);
        let x = x.clamp(0.0, (size - 1) as f32);
        let (y0, x0) = (y as usize, x as usize);
        let (y1, x1) = ((y0 + 1).min(size - 1), (x0 + 1).min(size - 1));
        let (fy, fx) = (y - y0 as f32, x - x0 as f32);
        let px = |yy: usize, xx: usize| image.data()[(c * size + yy) * size + xx];
        let top = px(y0, x0) * (1.0 - fx) + px(y0, x1) * fx;
        let bot = px(y1, x0) * (1.0 - fx) + px(y1, x1) * fx;
        top * (1.0 - fy) + bot * fy
    }
}

impl Attack for WaNet {
    fn name(&self) -> &'static str {
        "WaNet"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!("WaNet expects [3, {size}, {size}], got {:?}", image.shape()),
            });
        }
        let mut out = Tensor::zeros(image.shape());
        for c in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let dy = self.field.data()[y * size + x];
                    let dx = self.field.data()[size * size + y * size + x];
                    out.data_mut()[(c * size + y) * size + x] =
                        Self::bilinear(image, c, y as f32 + dy, x as f32 + dx, size);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_is_imperceptible_but_nonzero() {
        let mut rng = Rng::new(0);
        let attack = WaNet::new(16, &mut rng).unwrap();
        // Smooth gradient image: warping shifts values slightly.
        let mut img = Tensor::zeros(&[3, 16, 16]);
        for c in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    img.data_mut()[(c * 16 + y) * 16 + x] = (x as f32) / 16.0;
                }
            }
        }
        let out = attack.apply(&img, &mut rng).unwrap();
        assert_ne!(out, img);
        let max_shift = out
            .data()
            .iter()
            .zip(img.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // 5 px displacement over a 1/16-per-px gradient: |shift| <= 0.32.
        assert!(max_shift <= 0.35, "max_shift={max_shift}");
    }

    #[test]
    fn constant_image_unchanged() {
        let mut rng = Rng::new(1);
        let attack = WaNet::new(16, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        for v in out.data() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn field_is_fixed_per_attack_instance() {
        let mut rng = Rng::new(2);
        let attack = WaNet::new(16, &mut rng).unwrap();
        let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let a = attack.apply(&img, &mut rng).unwrap();
        let b = attack.apply(&img, &mut rng).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_small_image_rejected() {
        let mut rng = Rng::new(3);
        assert!(WaNet::new(2, &mut rng).is_err());
    }
}
