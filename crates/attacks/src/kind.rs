use crate::{
    AdapBlend, AdapPatch, AllToAll, Attack, BadNets, Blend, Bpp, Dynamic, LabelConsistent,
    PoisonConfig, PoisonInk, Refool, Result, Sig, Trojan, WaNet,
};
use bprom_tensor::Rng;

/// Enumeration of every implemented attack, for sweeps and configuration
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// BadNets corner patch (Gu et al., 2017).
    BadNets,
    /// Full-image blending (Chen et al., 2017).
    Blend,
    /// Reverse-engineered dense patch (Liu et al., 2018).
    Trojan,
    /// Elastic warping (Nguyen & Tran, 2021).
    WaNet,
    /// Sample-specific trigger (Nguyen & Tran, 2020).
    Dynamic,
    /// Adaptive blending with cover samples (Qi et al., 2023).
    AdapBlend,
    /// Adaptive multi-piece patch with cover samples (Qi et al., 2023).
    AdapPatch,
    /// Clean-label sinusoid (Barni et al., 2019).
    Sig,
    /// Clean-label perturb-then-patch (Turner et al., 2019).
    LabelConsistent,
    /// Reflection backdoor (Liu et al., 2020).
    Refool,
    /// Quantization/dithering backdoor (Wang et al., 2022).
    Bpp,
    /// Edge-ink backdoor (Zhang et al., 2022).
    PoisonInk,
    /// All-to-all label-shift variant (paper's limitation section).
    AllToAll,
}

impl AttackKind {
    /// The paper's main-table attack set (Table 5): 8 dirty-label attacks.
    pub const MAIN_TABLE: [AttackKind; 8] = [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::Trojan,
        AttackKind::Bpp,
        AttackKind::WaNet,
        AttackKind::Dynamic,
        AttackKind::AdapBlend,
        AttackKind::AdapPatch,
    ];

    /// Every implemented attack.
    pub const ALL: [AttackKind; 13] = [
        AttackKind::BadNets,
        AttackKind::Blend,
        AttackKind::Trojan,
        AttackKind::WaNet,
        AttackKind::Dynamic,
        AttackKind::AdapBlend,
        AttackKind::AdapPatch,
        AttackKind::Sig,
        AttackKind::LabelConsistent,
        AttackKind::Refool,
        AttackKind::Bpp,
        AttackKind::PoisonInk,
        AttackKind::AllToAll,
    ];

    /// Attack display name (matches the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::BadNets => "BadNets",
            AttackKind::Blend => "Blend",
            AttackKind::Trojan => "Trojan",
            AttackKind::WaNet => "WaNet",
            AttackKind::Dynamic => "Dynamic",
            AttackKind::AdapBlend => "Adap-Blend",
            AttackKind::AdapPatch => "Adap-Patch",
            AttackKind::Sig => "SIG",
            AttackKind::LabelConsistent => "LC",
            AttackKind::Refool => "Refool",
            AttackKind::Bpp => "BPP",
            AttackKind::PoisonInk => "Poison-Ink",
            AttackKind::AllToAll => "All-to-All",
        }
    }

    /// Builds the attack for a given image size. Attacks with random
    /// components (Blend pattern, WaNet field) draw them from `rng` once at
    /// construction, so one built attack is one fixed backdoor.
    ///
    /// # Errors
    ///
    /// Returns an error if the image size cannot accommodate the attack's
    /// trigger.
    pub fn build(self, image_size: usize, rng: &mut Rng) -> Result<Box<dyn Attack>> {
        Ok(match self {
            AttackKind::BadNets => Box::new(BadNets::new(image_size)?),
            AttackKind::Blend => Box::new(Blend::new(image_size, rng)?),
            AttackKind::Trojan => Box::new(Trojan::new(image_size)?),
            AttackKind::WaNet => Box::new(WaNet::new(image_size, rng)?),
            AttackKind::Dynamic => Box::new(Dynamic::new(image_size)?),
            AttackKind::AdapBlend => Box::new(AdapBlend::new(image_size, rng)?),
            AttackKind::AdapPatch => Box::new(AdapPatch::new(image_size)?),
            AttackKind::Sig => Box::new(Sig::new(image_size)?),
            AttackKind::LabelConsistent => Box::new(LabelConsistent::new(image_size)?),
            AttackKind::Refool => Box::new(Refool::new(image_size, rng)?),
            AttackKind::Bpp => Box::new(Bpp::default()),
            AttackKind::PoisonInk => Box::new(PoisonInk::new(image_size)?),
            AttackKind::AllToAll => Box::new(AllToAll::new(image_size)?),
        })
    }

    /// Default poisoning configuration for this attack (the scaled
    /// counterpart of the paper's Table 13; rates are higher than the
    /// paper's because our datasets are ~100× smaller, keeping the
    /// *absolute* number of poisoned samples in the effective range).
    pub fn default_config(self, target_class: usize) -> PoisonConfig {
        let (poison_rate, cover_rate) = match self {
            AttackKind::WaNet => (0.3, 0.05),
            AttackKind::AllToAll => (0.4, 0.0),
            AttackKind::Dynamic => (0.2, 0.0),
            AttackKind::AdapBlend => (0.15, 0.06),
            AttackKind::AdapPatch => (0.15, 0.06),
            // Clean-label attacks poison a large share of the target class
            // (the original papers poison 8-80 % of the target class).
            AttackKind::Sig | AttackKind::LabelConsistent => (0.7, 0.0),
            AttackKind::BadNets => (0.2, 0.0),
            AttackKind::Blend => (0.15, 0.0),
            AttackKind::Trojan => (0.15, 0.0),
            _ => (0.1, 0.0),
        };
        PoisonConfig::new(poison_rate, cover_rate, target_class)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_tensor::Tensor;

    #[test]
    fn every_attack_builds_and_applies() {
        let mut rng = Rng::new(0);
        let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        for kind in AttackKind::ALL {
            let attack = kind.build(16, &mut rng).unwrap();
            assert_eq!(attack.name(), kind.name());
            let out = attack.apply(&img, &mut rng).unwrap();
            assert_eq!(out.shape(), img.shape(), "{kind}");
            assert_ne!(out, img, "{kind} should modify the image");
            assert!(out.min() >= 0.0 && out.max() <= 1.0, "{kind}");
        }
    }

    #[test]
    fn clean_label_flags() {
        let mut rng = Rng::new(1);
        for kind in AttackKind::ALL {
            let attack = kind.build(16, &mut rng).unwrap();
            let expect = matches!(kind, AttackKind::Sig | AttackKind::LabelConsistent);
            assert_eq!(attack.is_clean_label(), expect, "{kind}");
        }
    }

    #[test]
    fn default_configs_have_sane_rates() {
        for kind in AttackKind::ALL {
            let cfg = kind.default_config(0);
            assert!(cfg.poison_rate > 0.0 && cfg.poison_rate <= 0.7, "{kind}");
            assert!(cfg.cover_rate >= 0.0 && cfg.cover_rate < 0.5, "{kind}");
        }
    }
}
