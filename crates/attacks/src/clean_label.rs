//! Clean-label adaptive attacks (paper Section 6.4, Table 12): SIG and
//! Label-Consistent. Both poison only images that *already* belong to the
//! target class and never change labels, making poisoning invisible to
//! label audits.

use crate::{Attack, AttackError, Result};
use bprom_tensor::{Rng, Tensor};

/// SIG (Barni et al., 2019): a horizontal sinusoidal luminance pattern
/// superimposed on target-class images.
#[derive(Debug, Clone)]
pub struct Sig {
    image_size: usize,
    /// Amplitude `Δ` of the sinusoid.
    delta: f32,
    /// Number of cycles across the image.
    freq: f32,
}

impl Sig {
    /// Creates the attack with substrate-scaled parameters (Δ=0.5, f=4 — f must not divide the pixel grid or the
    /// sampled sinusoid aliases to zero;
    /// the canonical Δ=0.08 is below the learnability threshold of the
    /// highly separable synthetic classes — see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate image sizes.
    pub fn new(image_size: usize) -> Result<Self> {
        if image_size == 0 {
            return Err(AttackError::InvalidConfig {
                reason: "SIG needs a positive image size".to_string(),
            });
        }
        Ok(Sig {
            image_size,
            delta: 0.5,
            freq: 4.0,
        })
    }
}

impl Attack for Sig {
    fn name(&self) -> &'static str {
        "SIG"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!("SIG expects [3, {size}, {size}], got {:?}", image.shape()),
            });
        }
        let mut out = image.clone();
        for c in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let v = self.delta
                        * (2.0 * std::f32::consts::PI * self.freq * x as f32 / size as f32).sin();
                    let idx = (c * size + y) * size + x;
                    out.data_mut()[idx] = (out.data()[idx] + v).clamp(0.0, 1.0);
                }
            }
        }
        Ok(out)
    }

    fn is_clean_label(&self) -> bool {
        true
    }
}

/// Label-Consistent (Turner et al., 2019): target-class images are first
/// perturbed toward featurelessness (the original uses adversarial
/// perturbations / GAN interpolation — we stand in with strong bounded
/// noise, which equally destroys the natural class signal), then a corner
/// patch is added. The model is forced to rely on the patch.
#[derive(Debug, Clone)]
pub struct LabelConsistent {
    image_size: usize,
    noise_eps: f32,
}

impl LabelConsistent {
    /// Creates the attack with the default perturbation budget (ε = 0.9,
    /// strong enough to erase the synthetic class signal as the original's
    /// adversarial perturbation erases natural class features).
    ///
    /// # Errors
    ///
    /// Returns an error for images smaller than 8 px.
    pub fn new(image_size: usize) -> Result<Self> {
        if image_size < 8 {
            return Err(AttackError::InvalidConfig {
                reason: format!("LC requires image size >= 8, got {image_size}"),
            });
        }
        Ok(LabelConsistent {
            image_size,
            noise_eps: 0.9,
        })
    }
}

impl Attack for LabelConsistent {
    fn name(&self) -> &'static str {
        "LC"
    }

    fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!("LC expects [3, {size}, {size}], got {:?}", image.shape()),
            });
        }
        // 1. Interpolate toward pure noise: erases the class signal the way
        //    the original's adversarial perturbation does.
        let mut out = image.map(|v| v);
        let w = self.noise_eps;
        for v in out.data_mut() {
            *v = ((1.0 - w) * *v + w * rng.uniform()).clamp(0.0, 1.0);
        }
        // 2. Corner checkerboard patches (all four corners, the original's
        //    configuration for robustness to cropping).
        let p = 2usize;
        for &(y0, x0) in &[
            (0usize, 0usize),
            (0, size - p),
            (size - p, 0),
            (size - p, size - p),
        ] {
            for py in 0..p {
                for px in 0..p {
                    let val = if (py + px) % 2 == 0 { 1.0 } else { 0.0 };
                    for c in 0..3 {
                        out.data_mut()[(c * size + y0 + py) * size + x0 + px] = val;
                    }
                }
            }
        }
        Ok(out)
    }

    fn is_clean_label(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_adds_sinusoid() {
        let mut rng = Rng::new(0);
        let attack = Sig::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        // Values oscillate around 0.5 with amplitude <= delta.
        assert!(out.max() <= 0.5 + 0.51);
        assert!(out.min() >= 0.5 - 0.51);
        assert_ne!(out, img);
    }

    #[test]
    fn sig_is_clean_label() {
        assert!(Sig::new(16).unwrap().is_clean_label());
        assert!(LabelConsistent::new(16).unwrap().is_clean_label());
        assert!(!crate::BadNets::new(16).unwrap().is_clean_label());
    }

    #[test]
    fn lc_patches_all_corners() {
        let mut rng = Rng::new(1);
        let attack = LabelConsistent::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        // Top-left corner pixel is exactly checkerboard 1.0.
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(out.at(&[0, 15, 15]).unwrap(), 1.0);
        assert_eq!(out.at(&[0, 15, 14]).unwrap(), 0.0);
    }

    #[test]
    fn lc_noise_is_per_sample() {
        let mut rng = Rng::new(2);
        let attack = LabelConsistent::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let a = attack.apply(&img, &mut rng).unwrap();
        let b = attack.apply(&img, &mut rng).unwrap();
        assert_ne!(a, b);
    }
}
