use crate::{Attack, Result, Trigger};
use bprom_tensor::{Rng, Tensor};

/// BadNets (Gu et al., 2017): a small checkerboard patch in the
/// bottom-right corner, fully replacing the underlying pixels.
#[derive(Debug, Clone)]
pub struct BadNets {
    trigger: Trigger,
}

impl BadNets {
    /// Creates the attack for `image_size`-pixel images with the default
    /// 3×3 patch (scaled counterpart of the paper's 32-pixel setup).
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn new(image_size: usize) -> Result<Self> {
        Self::with_patch_size(image_size, 3)
    }

    /// Creates the attack with an explicit square patch side (used by the
    /// trigger-size sweeps of Tables 3 and 8).
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn with_patch_size(image_size: usize, patch: usize) -> Result<Self> {
        let offset = image_size.saturating_sub(patch + 1);
        let trigger = Trigger::patch(3, image_size, patch, offset, offset, |py, px| {
            // Black/white checkerboard, the canonical BadNets pattern.
            if (py + px) % 2 == 0 {
                1.0
            } else {
                0.0
            }
        })?;
        Ok(BadNets { trigger })
    }
}

impl Attack for BadNets {
    fn name(&self) -> &'static str {
        "BadNets"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        self.trigger.apply(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_lands_bottom_right() {
        let mut rng = Rng::new(0);
        let attack = BadNets::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        // Top-left untouched, bottom-right patched with 0/1 checker.
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 0.5);
        let v = out.at(&[0, 13, 13]).unwrap();
        assert!(v == 0.0 || v == 1.0);
    }

    #[test]
    fn deterministic() {
        let mut rng = Rng::new(0);
        let attack = BadNets::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.3);
        let a = attack.apply(&img, &mut rng).unwrap();
        let b = attack.apply(&img, &mut rng).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn patch_size_sweep() {
        for patch in [2usize, 4, 8] {
            let attack = BadNets::with_patch_size(16, patch).unwrap();
            let mut rng = Rng::new(0);
            let img = Tensor::zeros(&[3, 16, 16]);
            let out = attack.apply(&img, &mut rng).unwrap();
            let changed = out.data().iter().filter(|&&v| v != 0.0).count();
            // Half the checkerboard cells are 1.0, over 3 channels.
            assert_eq!(changed, 3 * patch * patch / 2 + 3 * (patch * patch % 2));
        }
    }
}
