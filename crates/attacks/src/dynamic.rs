use crate::{Attack, AttackError, Result};
use bprom_tensor::{Rng, Tensor};

/// Dynamic / Input-Aware backdoor (Nguyen & Tran, 2020): the trigger is
/// *sample-specific* — its location and colour are a deterministic function
/// of the image content, standing in for the original's trigger-generator
/// network. Every poisoned image therefore carries a different trigger,
/// which defeats defenses that look for one repeated pattern.
#[derive(Debug, Clone)]
pub struct Dynamic {
    image_size: usize,
    patch: usize,
}

impl Dynamic {
    /// Creates the attack with a 4×4 content-placed patch.
    ///
    /// # Errors
    ///
    /// Returns an error for images smaller than 8 px.
    pub fn new(image_size: usize) -> Result<Self> {
        if image_size < 8 {
            return Err(AttackError::InvalidConfig {
                reason: format!("Dynamic requires image size >= 8, got {image_size}"),
            });
        }
        Ok(Dynamic {
            image_size,
            patch: 4,
        })
    }

    /// Content hash driving trigger placement and colour.
    fn content_key(image: &Tensor) -> u64 {
        // Quantize a few fixed probe pixels; robust to float noise.
        let mut key = 0xcbf2_9ce4_8422_2325u64;
        let n = image.len();
        for i in [0usize, n / 7, n / 3, n / 2, 2 * n / 3, n - 1] {
            let q = (image.data()[i] * 8.0) as u64;
            key = (key ^ q).wrapping_mul(0x1000_0000_01b3);
        }
        key
    }
}

impl Attack for Dynamic {
    fn name(&self) -> &'static str {
        "Dynamic"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "Dynamic expects [3, {size}, {size}], got {:?}",
                    image.shape()
                ),
            });
        }
        let key = Self::content_key(image);
        // Positions confined to the border band, so the trigger moves per
        // sample but never occludes the central class content.
        let band = 2usize;
        let side = (key % 4) as usize;
        let span = (size - self.patch) as u64;
        let along = ((key >> 16) % span) as usize;
        let (y, x) = match side {
            0 => (0, along),
            1 => (size - self.patch, along),
            2 => (along, 0),
            _ => (along, size - self.patch),
        };
        let _ = band;
        // Fixed magenta/green checker pattern; only the *position* is
        // sample-specific, as in the original's generated triggers.
        let mut out = image.clone();
        for py in 0..self.patch {
            for px in 0..self.patch {
                let checker = (py + px) % 2 == 0;
                let rgb = if checker {
                    [1.0, 0.0, 1.0]
                } else {
                    [0.0, 1.0, 0.0]
                };
                for c in 0..3 {
                    out.data_mut()[(c * size + y + py) * size + x + px] = rgb[c];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_moves_with_content() {
        let mut rng = Rng::new(0);
        let attack = Dynamic::new(16).unwrap();
        let a_img = Tensor::full(&[3, 16, 16], 0.2);
        let b_img = Tensor::full(&[3, 16, 16], 0.7);
        let a = attack.apply(&a_img, &mut rng).unwrap();
        let b = attack.apply(&b_img, &mut rng).unwrap();
        // Find patched pixels (exact 0.0/1.0 values) in each.
        let patched = |t: &Tensor, base: f32| -> Vec<usize> {
            t.data()
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != base)
                .map(|(i, _)| i)
                .collect()
        };
        assert_ne!(patched(&a, 0.2), patched(&b, 0.7));
    }

    #[test]
    fn same_content_same_trigger() {
        let mut rng = Rng::new(1);
        let attack = Dynamic::new(16).unwrap();
        let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let a = attack.apply(&img, &mut rng).unwrap();
        let b = attack.apply(&img, &mut rng).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn patch_footprint_is_bounded() {
        let mut rng = Rng::new(2);
        let attack = Dynamic::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        let changed = out.data().iter().filter(|&&v| v != 0.5).count();
        assert_eq!(changed, 3 * 16);
    }
}
