use crate::{Attack, AttackError, Result, Trigger};
use bprom_tensor::{Rng, Tensor};

/// Blend (Chen et al., 2017): a fixed random pattern blended over the whole
/// image with high transparency (the paper's "hello kitty" blending).
///
/// An optional patch restriction supports the trigger-size sweeps of
/// Tables 3 and 8, where the blended region is confined to a square.
#[derive(Debug, Clone)]
pub struct Blend {
    trigger: Trigger,
}

impl Blend {
    /// Creates the attack with full-image blending at the default
    /// transparency (`α = 0.6`, i.e. 40 % trigger — scaled up from the paper's
    /// 20 % because the synthetic classes are far more separable than
    /// natural images; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns an error only for degenerate image sizes.
    pub fn new(image_size: usize, rng: &mut Rng) -> Result<Self> {
        let trigger = Trigger::blended(3, image_size, 0.6, rng)?;
        Ok(Blend { trigger })
    }

    /// Creates a patch-restricted blend of side `patch` (for trigger-size
    /// sweeps); the blended region fully mixes at `α = 0.5`.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn with_patch_size(image_size: usize, patch: usize, rng: &mut Rng) -> Result<Self> {
        if patch > image_size || patch == 0 {
            return Err(AttackError::InvalidConfig {
                reason: format!("blend patch {patch} invalid for image {image_size}"),
            });
        }
        let offset = (image_size - patch) / 2;
        let shape = [3, image_size, image_size];
        let mut mask = Tensor::zeros(&shape);
        for c in 0..3 {
            for y in 0..patch {
                for x in 0..patch {
                    mask.data_mut()[(c * image_size + offset + y) * image_size + offset + x] = 1.0;
                }
            }
        }
        let pattern = Tensor::rand_uniform(&shape, 0.0, 1.0, rng);
        let trigger = Trigger::new(mask, pattern, 0.5)?;
        Ok(Blend { trigger })
    }
}

impl Attack for Blend {
    fn name(&self) -> &'static str {
        "Blend"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        self.trigger.apply(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blending_changes_every_pixel_slightly() {
        let mut rng = Rng::new(0);
        let attack = Blend::new(16, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        let max_shift = out
            .data()
            .iter()
            .zip(img.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // 40 % opacity bounds the per-pixel shift by 0.4 * |t - x| <= 0.4.
        assert!(max_shift <= 0.4 + 1e-5);
        assert!(max_shift > 0.0);
    }

    #[test]
    fn patch_restricted_blend_leaves_outside_untouched() {
        let mut rng = Rng::new(1);
        let attack = Blend::with_patch_size(16, 4, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 0.5);
        assert_ne!(out.at(&[0, 8, 8]).unwrap(), 0.5);
    }

    #[test]
    fn invalid_patch_rejected() {
        let mut rng = Rng::new(2);
        assert!(Blend::with_patch_size(16, 0, &mut rng).is_err());
        assert!(Blend::with_patch_size(16, 17, &mut rng).is_err());
    }
}
