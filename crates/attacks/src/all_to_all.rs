use crate::{Attack, BadNets, Result};
use bprom_tensor::{Rng, Tensor};

/// All-to-all backdoor: the trigger maps each class `y` to `(y + 1) mod K`
/// instead of one fixed target. The paper's limitation section notes BPROM
/// struggles against this variant because the feature-space distortion is
/// spread over every class; this implementation exists to reproduce that
/// negative result.
#[derive(Debug, Clone)]
pub struct AllToAll {
    inner: BadNets,
}

impl AllToAll {
    /// Creates the attack with a BadNets-style patch trigger.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn new(image_size: usize) -> Result<Self> {
        Ok(AllToAll {
            inner: BadNets::with_patch_size(image_size, 4)?,
        })
    }
}

impl Attack for AllToAll {
    fn name(&self) -> &'static str {
        "All-to-All"
    }

    fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        self.inner.apply(image, rng)
    }

    fn poisoned_label(&self, original: usize, _target: usize, num_classes: usize) -> usize {
        (original + 1) % num_classes.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_shifts_by_one() {
        let attack = AllToAll::new(16).unwrap();
        assert_eq!(attack.poisoned_label(0, 7, 10), 1);
        assert_eq!(attack.poisoned_label(9, 7, 10), 0);
    }

    #[test]
    fn all_to_one_attacks_ignore_original_label() {
        let attack = BadNets::new(16).unwrap();
        assert_eq!(attack.poisoned_label(3, 7, 10), 7);
        assert_eq!(attack.poisoned_label(9, 7, 10), 7);
    }
}
