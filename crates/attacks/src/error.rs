use bprom_tensor::TensorError;
use std::fmt;

/// Error type for attack construction and application.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A dataset operation failed while poisoning.
    Data(String),
    /// An attack parameter is invalid (rate outside `[0, 1]`, trigger
    /// larger than the image, ...).
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::Data(msg) => write!(f, "dataset error: {msg}"),
            AttackError::InvalidConfig { reason } => write!(f, "invalid attack config: {reason}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

impl From<bprom_data::DataError> for AttackError {
    fn from(e: bprom_data::DataError) -> Self {
        AttackError::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AttackError = TensorError::InvalidParameter { reason: "x".into() }.into();
        assert!(e.to_string().contains("tensor"));
        let c = AttackError::InvalidConfig {
            reason: "rate".into(),
        };
        assert!(c.to_string().contains("rate"));
    }
}
