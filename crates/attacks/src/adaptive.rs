//! Adaptive attacks of Qi et al. (2023): Adap-Blend and Adap-Patch.
//!
//! Both weaken the latent separation between poisoned and clean samples by
//! (a) applying the trigger at reduced opacity / with randomly dropped
//! pieces and (b) relying on *cover* samples — triggered images that keep
//! their true label — planted by the poisoning driver
//! ([`crate::poison_dataset`] honours `cover_rate`).

use crate::{Attack, Result, Trigger};
use bprom_tensor::{Rng, Tensor};

/// Adap-Blend: full-image blending at reduced, per-sample-randomized
/// opacity.
#[derive(Debug, Clone)]
pub struct AdapBlend {
    pattern: Tensor,
    base_alpha: f32,
    image_size: usize,
}

impl AdapBlend {
    /// Creates the attack with the paper's reduced default opacity.
    ///
    /// # Errors
    ///
    /// Never fails for positive image sizes; kept fallible for signature
    /// uniformity with the other attacks.
    pub fn new(image_size: usize, rng: &mut Rng) -> Result<Self> {
        Ok(AdapBlend {
            pattern: Tensor::rand_uniform(&[3, image_size, image_size], 0.0, 1.0, rng),
            base_alpha: 0.55,
            image_size,
        })
    }

    /// Creates a patch-restricted variant for trigger-size sweeps.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn with_patch_size(image_size: usize, patch: usize, rng: &mut Rng) -> Result<Self> {
        let mut pattern = Tensor::zeros(&[3, image_size, image_size]);
        let offset = (image_size.saturating_sub(patch)) / 2;
        if patch == 0 || patch > image_size {
            return Err(crate::AttackError::InvalidConfig {
                reason: format!("adap-blend patch {patch} invalid for image {image_size}"),
            });
        }
        for c in 0..3 {
            for y in 0..patch {
                for x in 0..patch {
                    pattern.data_mut()[(c * image_size + offset + y) * image_size + offset + x] =
                        rng.uniform();
                }
            }
        }
        Ok(AdapBlend {
            pattern,
            base_alpha: 0.5,
            image_size,
        })
    }
}

impl Attack for AdapBlend {
    fn name(&self) -> &'static str {
        "Adap-Blend"
    }

    fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        // Per-sample opacity jitter: the adaptive ingredient that blurs the
        // latent cluster of poisoned samples.
        let alpha = (self.base_alpha + rng.uniform_in(-0.05, 0.05)).clamp(0.0, 1.0);
        let mask = Tensor::ones(&[3, self.image_size, self.image_size]);
        Trigger::new(mask, self.pattern.clone(), alpha)?.apply(image)
    }
}

/// Adap-Patch: four small corner patches of which a random subset is
/// dropped per sample (trigger-piece dropout).
#[derive(Debug, Clone)]
pub struct AdapPatch {
    image_size: usize,
    patch: usize,
}

impl AdapPatch {
    /// Creates the attack with 3×3 corner pieces.
    ///
    /// # Errors
    ///
    /// Returns an error for images smaller than 8 px.
    pub fn new(image_size: usize) -> Result<Self> {
        if image_size < 8 {
            return Err(crate::AttackError::InvalidConfig {
                reason: format!("Adap-Patch requires image size >= 8, got {image_size}"),
            });
        }
        Ok(AdapPatch {
            image_size,
            patch: 3,
        })
    }

    fn corners(&self) -> [(usize, usize); 4] {
        let far = self.image_size - self.patch - 1;
        [(1, 1), (1, far), (far, 1), (far, far)]
    }
}

impl Attack for AdapPatch {
    fn name(&self) -> &'static str {
        "Adap-Patch"
    }

    fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(crate::AttackError::InvalidConfig {
                reason: format!(
                    "Adap-Patch expects [3, {size}, {size}], got {:?}",
                    image.shape()
                ),
            });
        }
        let mut out = image.clone();
        // Keep each of the 4 pieces with probability 0.85, but always keep
        // at least two so the backdoor signal survives.
        let mut kept: Vec<usize> = (0..4).filter(|_| rng.bernoulli(0.85)).collect();
        while kept.len() < 2 {
            let extra = rng.below(4);
            if !kept.contains(&extra) {
                kept.push(extra);
            }
        }
        for &ci in &kept {
            let (y, x) = self.corners()[ci];
            for py in 0..self.patch {
                for px in 0..self.patch {
                    for c in 0..3 {
                        let val = if c == ci % 3 { 1.0 } else { 0.0 };
                        out.data_mut()[(c * size + y + py) * size + x + px] = val;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adap_blend_changes_whole_image() {
        let mut rng = Rng::new(0);
        let attack = AdapBlend::new(16, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        let changed = out
            .data()
            .iter()
            .zip(img.data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 700);
    }

    #[test]
    fn adap_blend_opacity_varies_per_sample() {
        let mut rng = Rng::new(1);
        let attack = AdapBlend::new(16, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let a = attack.apply(&img, &mut rng).unwrap();
        let b = attack.apply(&img, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn adap_patch_keeps_at_least_two_pieces() {
        let mut rng = Rng::new(2);
        let attack = AdapPatch::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        for _ in 0..20 {
            let out = attack.apply(&img, &mut rng).unwrap();
            let changed = out.data().iter().filter(|&&v| v == 1.0 || v == 0.0).count();
            // Each 3x3 piece rewrites 9 px x 3 ch = 27 values.
            assert!(changed >= 54, "changed={changed}");
        }
    }

    #[test]
    fn adap_patch_pieces_vary() {
        let mut rng = Rng::new(3);
        let attack = AdapPatch::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let outs: Vec<Tensor> = (0..8)
            .map(|_| attack.apply(&img, &mut rng).unwrap())
            .collect();
        assert!(outs.windows(2).any(|w| w[0] != w[1]));
    }
}
