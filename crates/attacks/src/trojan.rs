use crate::{Attack, Result, Trigger};
use bprom_tensor::{Rng, Tensor};

/// Trojan (Liu et al., 2018): a reverse-engineered structured patch. The
/// original derives the trigger by maximizing selected neuron activations;
/// we stand in with a fixed high-contrast concentric pattern, which has the
/// same role — a dense, high-saliency patch the network latches onto.
#[derive(Debug, Clone)]
pub struct Trojan {
    trigger: Trigger,
}

impl Trojan {
    /// Creates the attack with a 4×4 concentric patch in the bottom-left
    /// corner.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch does not fit the image.
    pub fn new(image_size: usize) -> Result<Self> {
        let patch = 4usize.min(image_size / 2);
        let y = image_size - patch - 1;
        // Black/white horizontal stripes: achromatic high-contrast patches
        // sit far outside the saturated synthetic palette, standing in for
        // the high-saliency reverse-engineered trigger. (Distinct from the
        // BadNets checkerboard in both pattern and corner.)
        let trigger = Trigger::patch(3, image_size, patch, y, 1, |py, _px| {
            if py % 2 == 0 {
                1.0
            } else {
                0.0
            }
        })?;
        Ok(Trojan { trigger })
    }
}

impl Attack for Trojan {
    fn name(&self) -> &'static str {
        "Trojan"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        self.trigger.apply(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_in_bottom_left() {
        let mut rng = Rng::new(0);
        let attack = Trojan::new(16).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        assert_eq!(out.at(&[0, 0, 15]).unwrap(), 0.5);
        assert_ne!(out.at(&[0, 13, 2]).unwrap(), 0.5);
    }

    #[test]
    fn different_from_badnets_footprint() {
        let mut rng = Rng::new(0);
        let trojan = Trojan::new(16).unwrap();
        let badnets = crate::BadNets::new(16).unwrap();
        let img = Tensor::zeros(&[3, 16, 16]);
        let a = trojan.apply(&img, &mut rng).unwrap();
        let b = badnets.apply(&img, &mut rng).unwrap();
        assert_ne!(a, b);
    }
}
