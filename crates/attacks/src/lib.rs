//! Backdoor poisoning attacks for the BPROM reproduction.
//!
//! Implements the nine attacks of the paper's main evaluation (BadNets,
//! Blend, Trojan, WaNet, Dynamic, Adap-Blend, Adap-Patch plus the BPP
//! feature-space attack), the clean-label adaptive attacks (SIG, LC), the
//! remaining feature-space attacks (Refool, Poison-Ink), and the
//! all-to-all variant from the paper's limitation section.
//!
//! Every attack follows the paper's trigger algebra (Section 5.2, Step 2):
//!
//! ```text
//! x' = (1 - m) ⊙ x + m ⊙ ((1 - α) t + α x),   y' = y_t
//! ```
//!
//! where `m` is the trigger mask, `t` the trigger pattern and `α` the
//! blending intensity. Warping attacks (WaNet) and quantization attacks
//! (BPP) transform `x` directly, which corresponds to a sample-dependent
//! `t`.
//!
//! # Example
//!
//! ```
//! use bprom_attacks::{AttackKind, PoisonConfig, poison_dataset};
//! use bprom_data::SynthDataset;
//! use bprom_tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::new(0);
//! let clean = SynthDataset::Cifar10.generate(10, 16, 1)?;
//! let attack = AttackKind::BadNets.build(16, &mut rng)?;
//! let cfg = PoisonConfig::new(0.1, 0.0, 0);
//! let poisoned = poison_dataset(&clean, attack.as_ref(), &cfg, &mut rng)?;
//! assert_eq!(poisoned.dataset.len(), clean.len());
//! assert!(!poisoned.poisoned_idx.is_empty());
//! # Ok(())
//! # }
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod adaptive;
mod all_to_all;
mod badnets;
mod blend;
mod clean_label;
mod dynamic;
mod error;
mod feature;
mod kind;
mod poison;
mod trigger;
mod trojan;
mod wanet;

pub use adaptive::{AdapBlend, AdapPatch};
pub use all_to_all::AllToAll;
pub use badnets::BadNets;
pub use blend::Blend;
pub use clean_label::{LabelConsistent, Sig};
pub use dynamic::Dynamic;
pub use error::AttackError;
pub use feature::{Bpp, PoisonInk, Refool};
pub use kind::AttackKind;
pub use poison::{attack_success_rate, poison_dataset, PoisonConfig, PoisonedDataset};
pub use trigger::Trigger;
pub use trojan::Trojan;
pub use wanet::WaNet;

use bprom_tensor::{Rng, Tensor};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, AttackError>;

/// A backdoor attack: a way of planting a trigger into a single image.
///
/// Implementations must be deterministic given the `Rng` stream, so
/// poisoned datasets are reproducible.
pub trait Attack {
    /// Short attack name used in reports (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Applies the trigger to one `[c, h, w]` image. Sample-specific
    /// attacks may consult `rng` or the image content.
    ///
    /// # Errors
    ///
    /// Returns an error if the image shape is incompatible with the
    /// attack's trigger.
    fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor>;

    /// Whether the attack is clean-label: it only poisons samples that
    /// *already* belong to the target class and never relabels.
    fn is_clean_label(&self) -> bool {
        false
    }

    /// Label assigned to a poisoned sample (all-to-one attacks return the
    /// fixed target; all-to-all attacks derive it from the original label).
    fn poisoned_label(&self, original: usize, target: usize, num_classes: usize) -> usize {
        let _ = (original, num_classes);
        target
    }
}
