//! Feature-space backdoors (paper Table 22): Refool, BPP and Poison-Ink.
//! These avoid pasting a fixed pixel patch; the trigger lives in global
//! image statistics (reflections, quantization artefacts, edge ink).

use crate::{Attack, AttackError, Result};
use bprom_tensor::{Rng, Tensor};

/// Refool (Liu et al., 2020): a reflection backdoor. A fixed "reflection
/// image" is ghosted over the input with spatial offset and decay, the way
/// a pane of glass reflects a second scene.
#[derive(Debug, Clone)]
pub struct Refool {
    reflection: Tensor,
    image_size: usize,
    strength: f32,
}

impl Refool {
    /// Creates the attack with a fixed random reflection scene.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate image sizes.
    pub fn new(image_size: usize, rng: &mut Rng) -> Result<Self> {
        if image_size < 4 {
            return Err(AttackError::InvalidConfig {
                reason: format!("Refool requires image size >= 4, got {image_size}"),
            });
        }
        // Smooth low-frequency reflection scene: random gradient blobs.
        let mut reflection = Tensor::zeros(&[3, image_size, image_size]);
        let (ay, ax) = (rng.uniform_in(0.0, 1.0), rng.uniform_in(0.0, 1.0));
        for c in 0..3 {
            let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
            for y in 0..image_size {
                for x in 0..image_size {
                    let u = y as f32 / image_size as f32 - ay;
                    let v = x as f32 / image_size as f32 - ax;
                    let val = 0.5
                        + 0.5
                            * (3.0 * (u * u + v * v).sqrt() * std::f32::consts::TAU + phase).sin();
                    reflection.data_mut()[(c * image_size + y) * image_size + x] = val;
                }
            }
        }
        Ok(Refool {
            reflection,
            image_size,
            strength: 0.45,
        })
    }
}

impl Attack for Refool {
    fn name(&self) -> &'static str {
        "Refool"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "Refool expects [3, {size}, {size}], got {:?}",
                    image.shape()
                ),
            });
        }
        // Ghosting: reflection + a shifted copy at half strength.
        let mut out = image.clone();
        for c in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let idx = (c * size + y) * size + x;
                    let r1 = self.reflection.data()[idx];
                    let sy = (y + 1).min(size - 1);
                    let sx = (x + 1).min(size - 1);
                    let r2 = self.reflection.data()[(c * size + sy) * size + sx];
                    let ghost = 0.67 * r1 + 0.33 * r2;
                    out.data_mut()[idx] = ((1.0 - self.strength) * out.data()[idx]
                        + self.strength * ghost)
                        .clamp(0.0, 1.0);
                }
            }
        }
        Ok(out)
    }
}

/// BPP (Wang et al., 2022): image quantization plus dithering. The trigger
/// is the global colour-depth-reduction artefact itself.
#[derive(Debug, Clone)]
pub struct Bpp {
    levels: u32,
}

impl Bpp {
    /// Creates the attack quantizing to `levels` intensity levels
    /// (original uses low bit depths; default 3).
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than 2 levels.
    pub fn new(levels: u32) -> Result<Self> {
        if levels < 2 {
            return Err(AttackError::InvalidConfig {
                reason: format!("BPP needs at least 2 quantization levels, got {levels}"),
            });
        }
        Ok(Bpp { levels })
    }
}

impl Default for Bpp {
    fn default() -> Self {
        Bpp { levels: 3 }
    }
}

impl Attack for Bpp {
    fn name(&self) -> &'static str {
        "BPP"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let q = (self.levels - 1) as f32;
        // Floyd–Steinberg-style error diffusion along rows, per channel.
        if image.rank() != 3 {
            return Err(AttackError::InvalidConfig {
                reason: format!("BPP expects [c, h, w], got {:?}", image.shape()),
            });
        }
        let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
        let mut out = image.clone();
        for ci in 0..c {
            for y in 0..h {
                let mut err = 0.0f32;
                for x in 0..w {
                    let idx = (ci * h + y) * w + x;
                    let v = out.data()[idx] + err;
                    let quantized = (v * q).round() / q;
                    err = v - quantized;
                    out.data_mut()[idx] = quantized.clamp(0.0, 1.0);
                }
            }
        }
        Ok(out)
    }
}

/// Poison-Ink (Zhang et al., 2022): coloured "ink" drawn along image edges,
/// so the trigger follows each image's own structure.
#[derive(Debug, Clone)]
pub struct PoisonInk {
    image_size: usize,
    ink: [f32; 3],
    threshold: f32,
}

impl PoisonInk {
    /// Creates the attack with magenta ink on strong luminance edges.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate image sizes.
    pub fn new(image_size: usize) -> Result<Self> {
        if image_size < 4 {
            return Err(AttackError::InvalidConfig {
                reason: format!("Poison-Ink requires image size >= 4, got {image_size}"),
            });
        }
        Ok(PoisonInk {
            image_size,
            ink: [1.0, 0.1, 0.9],
            threshold: 0.08,
        })
    }

    fn luminance(image: &Tensor, y: usize, x: usize, size: usize) -> f32 {
        let px = |c: usize| image.data()[(c * size + y) * size + x];
        0.299 * px(0) + 0.587 * px(1) + 0.114 * px(2)
    }
}

impl Attack for PoisonInk {
    fn name(&self) -> &'static str {
        "Poison-Ink"
    }

    fn apply(&self, image: &Tensor, _rng: &mut Rng) -> Result<Tensor> {
        let size = self.image_size;
        if image.shape() != [3, size, size] {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "Poison-Ink expects [3, {size}, {size}], got {:?}",
                    image.shape()
                ),
            });
        }
        let mut out = image.clone();
        for y in 0..size.saturating_sub(1) {
            for x in 0..size.saturating_sub(1) {
                let here = Self::luminance(image, y, x, size);
                let right = Self::luminance(image, y, x + 1, size);
                let down = Self::luminance(image, y + 1, x, size);
                let grad = (here - right).abs() + (here - down).abs();
                if grad > self.threshold {
                    for c in 0..3 {
                        let idx = (c * size + y) * size + x;
                        out.data_mut()[idx] = 0.2 * out.data()[idx] + 0.8 * self.ink[c];
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refool_ghosts_entire_image() {
        let mut rng = Rng::new(0);
        let attack = Refool::new(16, &mut rng).unwrap();
        let img = Tensor::full(&[3, 16, 16], 0.5);
        let out = attack.apply(&img, &mut rng).unwrap();
        let changed = out
            .data()
            .iter()
            .filter(|&&v| (v - 0.5).abs() > 1e-6)
            .count();
        assert!(changed > 600, "changed={changed}");
        // Bounded perturbation.
        let max = out
            .data()
            .iter()
            .map(|v| (v - 0.5).abs())
            .fold(0.0f32, f32::max);
        assert!(max <= 0.46);
    }

    #[test]
    fn bpp_quantizes_values() {
        let mut rng = Rng::new(1);
        let attack = Bpp::new(3).unwrap();
        let img = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng);
        let out = attack.apply(&img, &mut rng).unwrap();
        for &v in out.data() {
            // All outputs on the 3-level lattice {0, 0.5, 1}.
            let nearest = (v * 2.0).round() / 2.0;
            assert!((v - nearest).abs() < 1e-6, "v={v}");
        }
        assert!(Bpp::new(1).is_err());
    }

    #[test]
    fn poison_ink_follows_edges() {
        let mut rng = Rng::new(2);
        let attack = PoisonInk::new(16).unwrap();
        // Flat image: no edges, no ink.
        let flat = Tensor::full(&[3, 16, 16], 0.5);
        let out_flat = attack.apply(&flat, &mut rng).unwrap();
        assert_eq!(out_flat, flat);
        // Hard vertical edge: ink along the boundary column.
        let mut edged = Tensor::zeros(&[3, 16, 16]);
        for c in 0..3 {
            for y in 0..16 {
                for x in 8..16 {
                    edged.data_mut()[(c * 16 + y) * 16 + x] = 1.0;
                }
            }
        }
        let out_edge = attack.apply(&edged, &mut rng).unwrap();
        assert_ne!(out_edge, edged);
        // Ink appears at the boundary (column 7), not far from it.
        assert_ne!(
            out_edge.at(&[0, 8, 7]).unwrap(),
            edged.at(&[0, 8, 7]).unwrap()
        );
        assert_eq!(
            out_edge.at(&[0, 8, 2]).unwrap(),
            edged.at(&[0, 8, 2]).unwrap()
        );
    }
}
