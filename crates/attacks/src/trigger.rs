//! The paper's trigger algebra: mask, pattern and intensity.

use crate::{AttackError, Result};
use bprom_tensor::{Rng, Tensor};

/// A static trigger `(m, t, α)` applied as
/// `x' = (1-m)⊙x + m⊙((1-α)t + αx)` (paper Section 5.2, Step 2).
///
/// `α = 0` replaces masked pixels entirely with the pattern (patch
/// triggers); `α` close to 1 blends the pattern in faintly (blended
/// triggers).
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    mask: Tensor,
    pattern: Tensor,
    alpha: f32,
}

impl Trigger {
    /// Creates a trigger from a mask and pattern of identical `[c, h, w]`
    /// shape and an intensity `α ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] on shape mismatch or
    /// out-of-range `α`.
    pub fn new(mask: Tensor, pattern: Tensor, alpha: f32) -> Result<Self> {
        if mask.shape() != pattern.shape() {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "mask shape {:?} != pattern shape {:?}",
                    mask.shape(),
                    pattern.shape()
                ),
            });
        }
        if !(0.0..=1.0).contains(&alpha) {
            return Err(AttackError::InvalidConfig {
                reason: format!("alpha must be in [0, 1], got {alpha}"),
            });
        }
        Ok(Trigger {
            mask,
            pattern,
            alpha,
        })
    }

    /// A square patch trigger of side `size` at offset `(y, x)`, filled
    /// with `pattern_fn(py, px)` colours, fully replacing pixels (`α = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] if the patch exceeds the
    /// image bounds.
    pub fn patch(
        channels: usize,
        image_size: usize,
        size: usize,
        y: usize,
        x: usize,
        mut pattern_fn: impl FnMut(usize, usize) -> f32,
    ) -> Result<Self> {
        if y + size > image_size || x + size > image_size || size == 0 {
            return Err(AttackError::InvalidConfig {
                reason: format!("patch {size}x{size} at ({y}, {x}) exceeds {image_size}px image"),
            });
        }
        let mut mask = Tensor::zeros(&[channels, image_size, image_size]);
        let mut pattern = Tensor::zeros(&[channels, image_size, image_size]);
        for c in 0..channels {
            for py in 0..size {
                for px in 0..size {
                    let idx = (c * image_size + y + py) * image_size + x + px;
                    mask.data_mut()[idx] = 1.0;
                    pattern.data_mut()[idx] = pattern_fn(py, px);
                }
            }
        }
        Trigger::new(mask, pattern, 0.0)
    }

    /// A full-image blended trigger with a fixed random pattern:
    /// `x' = (1-blend) t + blend x` where `blend = α`.
    pub fn blended(channels: usize, image_size: usize, alpha: f32, rng: &mut Rng) -> Result<Self> {
        let shape = [channels, image_size, image_size];
        let mask = Tensor::ones(&shape);
        let pattern = Tensor::rand_uniform(&shape, 0.0, 1.0, rng);
        Trigger::new(mask, pattern, alpha)
    }

    /// Applies the trigger to one `[c, h, w]` image.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] if the image shape differs
    /// from the trigger's.
    pub fn apply(&self, image: &Tensor) -> Result<Tensor> {
        if image.shape() != self.mask.shape() {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "image shape {:?} != trigger shape {:?}",
                    image.shape(),
                    self.mask.shape()
                ),
            });
        }
        let mut out = image.clone();
        let a = self.alpha;
        for ((o, &m), &t) in out
            .data_mut()
            .iter_mut()
            .zip(self.mask.data())
            .zip(self.pattern.data())
        {
            *o = (1.0 - m) * *o + m * ((1.0 - a) * t + a * *o);
        }
        out.clamp_in_place(0.0, 1.0);
        Ok(out)
    }

    /// Number of masked (affected) pixels per channel.
    pub fn footprint(&self) -> usize {
        self.mask.data().iter().filter(|&&m| m > 0.0).count() / self.mask.shape()[0]
    }

    /// Blending intensity `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_replaces_pixels() {
        let trig = Trigger::patch(1, 8, 2, 6, 6, |_, _| 1.0).unwrap();
        let img = Tensor::zeros(&[1, 8, 8]);
        let out = trig.apply(&img).unwrap();
        assert_eq!(out.at(&[0, 7, 7]).unwrap(), 1.0);
        assert_eq!(out.at(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(trig.footprint(), 4);
    }

    #[test]
    fn blended_mixes_pattern() {
        let mut rng = Rng::new(0);
        let trig = Trigger::blended(1, 4, 0.8, &mut rng).unwrap();
        let img = Tensor::ones(&[1, 4, 4]);
        let out = trig.apply(&img).unwrap();
        // x' = 0.2 t + 0.8 x, so with x = 1 and t in [0, 1], x' in [0.8, 1].
        assert!(out.min() >= 0.8 - 1e-6);
        assert!(out.max() <= 1.0 + 1e-6);
        // But not identical to the input.
        assert_ne!(out, img);
    }

    #[test]
    fn alpha_zero_fully_replaces() {
        let mask = Tensor::ones(&[1, 2, 2]);
        let pattern = Tensor::full(&[1, 2, 2], 0.5);
        let trig = Trigger::new(mask, pattern, 0.0).unwrap();
        let img = Tensor::zeros(&[1, 2, 2]);
        let out = trig.apply(&img).unwrap();
        assert!(out.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Trigger::new(Tensor::zeros(&[1, 2, 2]), Tensor::zeros(&[1, 3, 3]), 0.0).is_err());
        assert!(Trigger::new(Tensor::zeros(&[1, 2, 2]), Tensor::zeros(&[1, 2, 2]), 1.5).is_err());
        assert!(Trigger::patch(1, 8, 4, 6, 6, |_, _| 1.0).is_err());
        assert!(Trigger::patch(1, 8, 0, 0, 0, |_, _| 1.0).is_err());
    }

    #[test]
    fn apply_validates_image_shape() {
        let trig = Trigger::patch(3, 8, 2, 0, 0, |_, _| 1.0).unwrap();
        assert!(trig.apply(&Tensor::zeros(&[1, 8, 8])).is_err());
    }

    #[test]
    fn output_stays_in_unit_range() {
        let mut rng = Rng::new(1);
        let trig = Trigger::blended(3, 8, 0.5, &mut rng).unwrap();
        let img = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng);
        let out = trig.apply(&img).unwrap();
        assert!(out.min() >= 0.0 && out.max() <= 1.0);
    }
}
