//! Dataset poisoning driver and attack-success-rate evaluation.

use crate::{Attack, AttackError, Result};
use bprom_data::Dataset;
use bprom_nn::{Layer, Mode, Sequential};
use bprom_tensor::{Rng, Tensor};

/// Poisoning parameters `(p, cover, y_t)` — the paper's Section 5.2 plus
/// the adaptive attacks' cover rate (Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonConfig {
    /// Fraction of the dataset to poison (for clean-label attacks:
    /// fraction of the *target class*).
    pub poison_rate: f32,
    /// Fraction of the dataset to convert into cover samples — triggered
    /// images that keep their true label (adaptive attacks).
    pub cover_rate: f32,
    /// The attacker-specified target class `y_t`.
    pub target_class: usize,
}

impl PoisonConfig {
    /// Creates a poisoning configuration.
    pub fn new(poison_rate: f32, cover_rate: f32, target_class: usize) -> Self {
        PoisonConfig {
            poison_rate,
            cover_rate,
            target_class,
        }
    }
}

/// A poisoned dataset plus bookkeeping about which samples were altered.
#[derive(Debug, Clone)]
pub struct PoisonedDataset {
    /// The dataset with triggers planted and labels rewritten.
    pub dataset: Dataset,
    /// Indices (into `dataset`) of poisoned samples (label changed for
    /// dirty-label attacks).
    pub poisoned_idx: Vec<usize>,
    /// Indices of cover samples (trigger planted, label kept).
    pub cover_idx: Vec<usize>,
}

/// Poisons a clean dataset according to the paper's three-step recipe
/// (Section 5.2): extract `D_E`, transform with the trigger, reinsert.
///
/// Dirty-label attacks draw victims from non-target classes and relabel
/// them via [`Attack::poisoned_label`]; clean-label attacks draw victims
/// from the target class and keep labels. Cover samples (if
/// `cover_rate > 0`) are drawn from the remaining samples and keep labels.
///
/// # Errors
///
/// Returns [`AttackError::InvalidConfig`] for out-of-range rates, a target
/// class outside the label space, or rates that select zero samples.
pub fn poison_dataset(
    clean: &Dataset,
    attack: &dyn Attack,
    cfg: &PoisonConfig,
    rng: &mut Rng,
) -> Result<PoisonedDataset> {
    if !(0.0..=1.0).contains(&cfg.poison_rate) || !(0.0..=1.0).contains(&cfg.cover_rate) {
        return Err(AttackError::InvalidConfig {
            reason: format!(
                "rates must be in [0, 1]: poison={}, cover={}",
                cfg.poison_rate, cfg.cover_rate
            ),
        });
    }
    if cfg.target_class >= clean.num_classes {
        return Err(AttackError::InvalidConfig {
            reason: format!(
                "target class {} out of range for {} classes",
                cfg.target_class, clean.num_classes
            ),
        });
    }
    let n = clean.len();
    let clean_label = attack.is_clean_label();
    // Victim pool: target-class samples for clean-label attacks, everything
    // else for dirty-label attacks.
    let mut pool: Vec<usize> = (0..n)
        .filter(|&i| (clean.labels[i] == cfg.target_class) == clean_label)
        .collect();
    let n_poison = if clean_label {
        ((pool.len() as f32 * cfg.poison_rate).round() as usize).min(pool.len())
    } else {
        ((n as f32 * cfg.poison_rate).round() as usize).min(pool.len())
    };
    if n_poison == 0 {
        return Err(AttackError::InvalidConfig {
            reason: format!(
                "poison rate {} selects zero samples (pool size {})",
                cfg.poison_rate,
                pool.len()
            ),
        });
    }
    rng.shuffle(&mut pool);
    let poisoned_idx: Vec<usize> = pool[..n_poison].to_vec();

    // Cover pool: anything not already poisoned.
    let n_cover = (n as f32 * cfg.cover_rate).round() as usize;
    let mut cover_pool: Vec<usize> = (0..n).filter(|i| !poisoned_idx.contains(i)).collect();
    rng.shuffle(&mut cover_pool);
    let cover_idx: Vec<usize> = cover_pool[..n_cover.min(cover_pool.len())].to_vec();

    let mut images = clean.images.clone();
    let mut labels = clean.labels.clone();
    let inner: usize = images.shape()[1..].iter().product();
    for &i in &poisoned_idx {
        let img = clean.images.sample(i)?;
        let trig = attack.apply(&img, rng)?;
        images.data_mut()[i * inner..(i + 1) * inner].copy_from_slice(trig.data());
        if !clean_label {
            labels[i] = attack.poisoned_label(clean.labels[i], cfg.target_class, clean.num_classes);
        }
    }
    for &i in &cover_idx {
        let img = clean.images.sample(i)?;
        let trig = attack.apply(&img, rng)?;
        images.data_mut()[i * inner..(i + 1) * inner].copy_from_slice(trig.data());
        // Labels intentionally untouched: covers suppress latent separation.
    }
    let dataset = Dataset::new(
        images,
        labels,
        clean.num_classes,
        format!("{}+{}", clean.name, attack.name()),
    )?;
    Ok(PoisonedDataset {
        dataset,
        poisoned_idx,
        cover_idx,
    })
}

/// Attack success rate: the fraction of triggered non-target test images
/// the model classifies as the attacker's intended label.
///
/// # Errors
///
/// Returns an error if the trigger cannot be applied to the test images or
/// the model rejects the batch shape.
pub fn attack_success_rate(
    model: &mut Sequential,
    attack: &dyn Attack,
    test: &Dataset,
    cfg: &PoisonConfig,
    rng: &mut Rng,
) -> Result<f32> {
    let mut total = 0usize;
    let mut hits = 0usize;
    let mut batch: Vec<Tensor> = Vec::new();
    let mut wanted: Vec<usize> = Vec::new();
    let mut flush =
        |batch: &mut Vec<Tensor>, wanted: &mut Vec<usize>, hits: &mut usize| -> Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let x = Tensor::stack(batch)?;
            let logits = model
                .forward(&x, Mode::Eval)
                .map_err(|e| AttackError::Data(e.to_string()))?;
            let k = logits.shape()[1];
            for (row, &want) in wanted.iter().enumerate() {
                let slice = &logits.data()[row * k..(row + 1) * k];
                let mut best = 0usize;
                for j in 1..k {
                    if slice[j] > slice[best] {
                        best = j;
                    }
                }
                if best == want {
                    *hits += 1;
                }
            }
            batch.clear();
            wanted.clear();
            Ok(())
        };
    for i in 0..test.len() {
        let label = test.labels[i];
        let intended = attack.poisoned_label(label, cfg.target_class, test.num_classes);
        if label == intended {
            continue; // already the target; not an attack success case
        }
        let img = test.images.sample(i)?;
        batch.push(attack.apply(&img, rng)?);
        wanted.push(intended);
        total += 1;
        if batch.len() == 64 {
            flush(&mut batch, &mut wanted, &mut hits)?;
        }
    }
    flush(&mut batch, &mut wanted, &mut hits)?;
    if total == 0 {
        return Err(AttackError::InvalidConfig {
            reason: "no non-target samples to evaluate ASR on".to_string(),
        });
    }
    Ok(hits as f32 / total as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackKind, BadNets};
    use bprom_data::SynthDataset;

    #[test]
    fn dirty_label_poisoning_relabels() {
        let mut rng = Rng::new(0);
        let clean = SynthDataset::Cifar10.generate(10, 16, 1).unwrap();
        let attack = BadNets::new(16).unwrap();
        let cfg = PoisonConfig::new(0.2, 0.0, 3);
        let poisoned = poison_dataset(&clean, &attack, &cfg, &mut rng).unwrap();
        assert_eq!(poisoned.poisoned_idx.len(), 20);
        for &i in &poisoned.poisoned_idx {
            assert_eq!(poisoned.dataset.labels[i], 3);
            assert_ne!(clean.labels[i], 3, "victims drawn from non-target classes");
            // Image actually modified.
            assert_ne!(
                poisoned.dataset.images.sample(i).unwrap(),
                clean.images.sample(i).unwrap()
            );
        }
        // Untouched samples identical.
        let untouched = (0..clean.len())
            .find(|i| !poisoned.poisoned_idx.contains(i))
            .unwrap();
        assert_eq!(
            poisoned.dataset.images.sample(untouched).unwrap(),
            clean.images.sample(untouched).unwrap()
        );
    }

    #[test]
    fn clean_label_poisoning_keeps_labels() {
        let mut rng = Rng::new(1);
        let clean = SynthDataset::Cifar10.generate(10, 16, 2).unwrap();
        let attack = AttackKind::Sig.build(16, &mut rng).unwrap();
        let cfg = PoisonConfig::new(0.5, 0.0, 2);
        let poisoned = poison_dataset(&clean, attack.as_ref(), &cfg, &mut rng).unwrap();
        // Half the target class (10 samples) poisoned.
        assert_eq!(poisoned.poisoned_idx.len(), 5);
        for &i in &poisoned.poisoned_idx {
            assert_eq!(poisoned.dataset.labels[i], 2);
            assert_eq!(clean.labels[i], 2);
        }
    }

    #[test]
    fn cover_samples_keep_labels_but_get_triggers() {
        let mut rng = Rng::new(2);
        let clean = SynthDataset::Cifar10.generate(10, 16, 3).unwrap();
        let attack = AttackKind::AdapBlend.build(16, &mut rng).unwrap();
        let cfg = PoisonConfig::new(0.1, 0.05, 0);
        let poisoned = poison_dataset(&clean, attack.as_ref(), &cfg, &mut rng).unwrap();
        assert_eq!(poisoned.cover_idx.len(), 5);
        for &i in &poisoned.cover_idx {
            assert_eq!(poisoned.dataset.labels[i], clean.labels[i]);
            assert_ne!(
                poisoned.dataset.images.sample(i).unwrap(),
                clean.images.sample(i).unwrap()
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = Rng::new(3);
        let clean = SynthDataset::Cifar10.generate(5, 16, 4).unwrap();
        let attack = BadNets::new(16).unwrap();
        assert!(
            poison_dataset(&clean, &attack, &PoisonConfig::new(1.5, 0.0, 0), &mut rng).is_err()
        );
        assert!(
            poison_dataset(&clean, &attack, &PoisonConfig::new(0.1, 0.0, 99), &mut rng).is_err()
        );
        assert!(poison_dataset(
            &clean,
            &attack,
            &PoisonConfig::new(0.0001, 0.0, 0),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn poisoning_is_deterministic_given_seed() {
        let clean = SynthDataset::Cifar10.generate(8, 16, 5).unwrap();
        let attack = BadNets::new(16).unwrap();
        let cfg = PoisonConfig::new(0.1, 0.0, 1);
        let a = poison_dataset(&clean, &attack, &cfg, &mut Rng::new(9)).unwrap();
        let b = poison_dataset(&clean, &attack, &cfg, &mut Rng::new(9)).unwrap();
        assert_eq!(a.dataset.images, b.dataset.images);
        assert_eq!(a.poisoned_idx, b.poisoned_idx);
    }
}
