//! Hostile-oracle fault injection for the BPROM black-box boundary.
//!
//! BPROM's threat model is a *remote* MLaaS classifier queried for
//! confidence vectors — and real endpoints drop requests, rate-limit,
//! quantize probabilities, truncate to top-k, or refuse to return
//! anything but a label. This crate makes that regime reproducible:
//!
//! * **[`FaultyOracle`]** decorates any [`BlackBoxModel`] with a seeded,
//!   composable [`FaultPlan`] — [`Transient`] drops, [`RateLimit`]
//!   windows, [`Quantize`]d / [`TopK`]-truncated / [`LabelOnly`] /
//!   [`Jitter`]ed responses, or a [`Stack`] of several.
//! * **[`RetryingOracle`]** absorbs the transient faults with bounded
//!   exponential backoff on a *virtual* clock ([`RetryPolicy`]): no
//!   wall-time is ever slept, but the would-be latency is accounted in
//!   [`bprom_vp::OracleStats`] and telemetry.
//! * **[`AdaptiveOracle`]** models the *adaptive attacker* tier: an
//!   endpoint that runs query-pattern tests (duplicate-rate, batch
//!   cross-row similarity) and answers fabricated-but-consistent
//!   confidences once it suspects it is being probed, tallied as
//!   `evasive_responses` (verdict rule B012).
//! * **Determinism.** Fault draws are keyed on the *content* of each
//!   query (plus a per-content attempt counter), never on arrival order,
//!   so an inspection under fault injection is byte-identical at any
//!   `BPROM_THREADS` setting — the same contract `bprom-par` enforces
//!   for RNG streams. ([`RateLimit`] is the documented exception.)
//!
//! Consumers never deal with faults directly: the plain
//! [`BlackBoxModel::query`] path retries transparently, and a query that
//! exhausts its budget surfaces as the typed
//! [`bprom_vp::VpError::OracleFault`], which CMA-ES candidate evaluation
//! converts into an infinite skip-penalty instead of aborting.
//!
//! # Example
//!
//! ```
//! use bprom_faults::{FaultyOracle, RetryingOracle, RetryPolicy, Stack, Transient, Quantize};
//! use bprom_vp::{BlackBoxModel, QueryOracle};
//! use bprom_nn::models::{mlp, ModelSpec};
//! use bprom_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), bprom_vp::VpError> {
//! let mut rng = Rng::new(0);
//! let oracle = QueryOracle::new(mlp(&ModelSpec::new(3, 8, 5), &mut rng)?, 5);
//! // A hostile endpoint: 20 % request drops, 2-decimal responses.
//! let plan = Stack(vec![
//!     Box::new(Transient { rate: 0.2 }),
//!     Box::new(Quantize { decimals: 2 }),
//! ]);
//! let faulty = FaultyOracle::new(&oracle, plan, 0xBAD);
//! let client = RetryingOracle::new(&faulty, RetryPolicy::default());
//! let batch = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let probs = client.query(&batch)?; // retried transparently
//! assert_eq!(probs.shape(), &[4, 5]);
//! # Ok(())
//! # }
//! ```

mod adaptive;
mod faulty;
mod plan;
mod retry;

pub use adaptive::{AdaptiveConfig, AdaptiveOracle};
pub use faulty::FaultyOracle;
pub use plan::{
    FaultPlan, FaultProfile, Jitter, LabelOnly, Quantize, RateLimit, Stack, TopK, Transient,
};
pub use retry::{RetryPolicy, RetryingOracle};

use bprom_vp::BlackBoxModel;

/// Runs `f` against `oracle` wrapped according to the env-selected
/// [`FaultProfile`] (`BPROM_FAULT_PROFILE`): under `hostile`, the oracle
/// goes behind the profile's fault plan and retry policy; otherwise `f`
/// sees it untouched. This is the hook the integration-test helpers use
/// so the whole suite can run against hostile oracles in CI.
pub fn with_env_profile<R>(
    oracle: &dyn BlackBoxModel,
    seed: u64,
    f: impl FnOnce(&dyn BlackBoxModel) -> R,
) -> R {
    let profile = FaultProfile::from_env();
    match profile {
        FaultProfile::Off => f(oracle),
        FaultProfile::Hostile => {
            let faulty = FaultyOracle::new(oracle, profile.plan(), seed);
            let retrying = RetryingOracle::new(&faulty, profile.retry_policy());
            f(&retrying)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::{Rng, Tensor};
    use bprom_vp::QueryOracle;

    #[test]
    fn env_profile_off_is_passthrough() {
        // BPROM_FAULT_PROFILE is not set inside unit tests (the hostile
        // CI job exercises the other arm end to end); either way the
        // wrapped call must deliver the same confidence matrix.
        let mut rng = Rng::new(0);
        let oracle = QueryOracle::new(mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap(), 5);
        let batch = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let direct = oracle.query(&batch).unwrap();
        let via = with_env_profile(&oracle, 42, |o| o.query(&batch).unwrap());
        if FaultProfile::from_env() == FaultProfile::Off {
            assert_eq!(via, direct);
        } else {
            // Hostile: quantized to 3 decimals but still row-normalized
            // to within quantization error.
            assert_eq!(via.shape(), direct.shape());
            for (v, d) in via.data().iter().zip(direct.data()) {
                assert!((v - d).abs() < 1e-3, "{v} vs {d}");
            }
        }
    }
}
