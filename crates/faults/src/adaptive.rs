//! The adaptive-attacker oracle: a backdoored vendor that notices it is
//! being probed and answers evasively.
//!
//! A real evasive endpoint runs *query-pattern tests* on incoming
//! traffic — duplicate-rate tracking, per-client rate shaping, and
//! similarity checks that catch prompt-perturbation probes — and, once
//! suspicious, serves fabricated-but-plausible confidences instead of
//! the truth. The similarity test keys on *pad-style* visual prompting
//! (every row of a batch carries the same verbatim border pixels);
//! overlay-style prompts add `θ` onto image pixels, leave no bit-shared
//! positions, and are invisible to any per-batch test — a stealth
//! asymmetry the regime benchmarks quantify. [`AdaptiveOracle`]
//! reproduces that behaviour while
//! honoring the repo-wide determinism contract: every decision and every
//! fabricated response is a pure function of the *query content* (plus
//! the per-content attempt counter), never of arrival order, so
//! inspections under an adaptive attacker stay byte-identical at any
//! `BPROM_THREADS` / `BPROM_QCACHE` setting.

use crate::faulty::{attempt_seed, content_key};
use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{BlackBoxModel, OracleStats, QueryOutcome, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Domain-separation salt for the evasive-response RNG stream (keeps
/// fabricated confidences decorrelated from any fault plan sharing the
/// same seed).
const EVADE_SALT: u64 = 0xADA9_7A11_AC4E_0001;

/// Thresholds for the attacker's probe-detection tests.
///
/// Defaults model a cautious vendor: a handful of exact resubmissions of
/// the same content, or any decently-sized batch whose rows share a
/// quarter of their pixels (the visual-prompt border signature), reads
/// as probing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Submissions of one exact content at which the duplicate-rate test
    /// trips (the `duplicate_threshold`-th submission and every later
    /// one are answered evasively). This is the content-keyed stand-in
    /// for per-client rate shaping: resubmission *count*, not arrival
    /// rate, so the test is schedule-invariant.
    pub duplicate_threshold: u64,
    /// Fraction of per-row pixel positions that must be bit-identical
    /// across *all* rows of a batch for the prompt-perturbation
    /// similarity test to trip. Pad-style prompted batches share their
    /// entire border (≈ 1 − (interior/canvas)² of the pixels); natural
    /// batches — and overlay-style prompted ones, whose border is
    /// `image + θ` and thus per-row unique — share almost nothing.
    pub similarity_threshold: f32,
    /// Minimum batch rows before the similarity test applies (tiny
    /// batches carry no cross-row evidence).
    pub min_rows: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            duplicate_threshold: 4,
            similarity_threshold: 0.25,
            min_rows: 4,
        }
    }
}

/// Fraction of per-row positions whose f32 bits agree across all rows.
fn shared_fraction(batch: &Tensor) -> f32 {
    let rows = batch.shape()[0];
    if rows < 2 {
        return 0.0;
    }
    let span = batch.data().len() / rows;
    if span == 0 {
        return 0.0;
    }
    let data = batch.data();
    let mut shared = 0usize;
    'positions: for p in 0..span {
        let first = data[p].to_bits();
        for row in 1..rows {
            if data[row * span + p].to_bits() != first {
                continue 'positions;
            }
        }
        shared += 1;
    }
    shared as f32 / span as f32
}

/// A [`BlackBoxModel`] decorator modelling an *adaptive attacker*: the
/// endpoint answers honestly until its query-pattern tests flag the
/// caller as a prober, then serves fabricated confidences.
///
/// **Determinism contract.** The probe-detector state is content-keyed,
/// never call-order-keyed: the duplicate test reads the per-content
/// attempt counter (the same mechanism as [`crate::FaultyOracle`]), the
/// similarity test is a pure function of the batch bytes, and a
/// fabricated response is drawn from `Rng::new(mix(seed ⊕ salt, key))` —
/// attempt-*independent*, so the attacker lies *consistently*: the same
/// probe always receives the same fabricated answer (an inconsistent
/// liar would be trivially detectable, and attempt-dependent responses
/// would let concurrent duplicate submissions race). Stack this wrapper
/// *above* the query cache so it sees every logical query at any
/// `BPROM_QCACHE` mode.
///
/// Fabricated responses never reach the wrapped model, but they *are*
/// answered queries: [`AdaptiveOracle::queries_used`] adds the evaded
/// rows to the inner oracle's count, keeping budgets honest, and each
/// evaded batch is tallied as `evasive_responses` in
/// [`OracleStats`] (which rule `B012` keys on).
pub struct AdaptiveOracle<'a> {
    inner: &'a dyn BlackBoxModel,
    config: AdaptiveConfig,
    seed: u64,
    /// Times each content key has been submitted (duplicate-rate test).
    attempts: Mutex<HashMap<u64, u64>>,
    evasions: AtomicU64,
    evaded_rows: AtomicU64,
}

impl std::fmt::Debug for AdaptiveOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveOracle")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("evasions", &self.evasions.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'a> AdaptiveOracle<'a> {
    /// Wraps `inner` as an adaptive attacker with the given thresholds.
    pub fn new(inner: &'a dyn BlackBoxModel, config: AdaptiveConfig, seed: u64) -> Self {
        AdaptiveOracle {
            inner,
            config,
            seed,
            attempts: Mutex::new(HashMap::new()),
            evasions: AtomicU64::new(0),
            evaded_rows: AtomicU64::new(0),
        }
    }

    /// Batches answered evasively so far.
    pub fn evasions(&self) -> u64 {
        self.evasions.load(Ordering::Relaxed)
    }

    /// Whether this batch trips the attacker's tests at the given
    /// (0-based) attempt number.
    fn is_probe(&self, batch: &Tensor, attempt: u64) -> bool {
        if attempt + 1 >= self.config.duplicate_threshold {
            return true;
        }
        batch.shape()[0] >= self.config.min_rows
            && shared_fraction(batch) >= self.config.similarity_threshold
    }

    /// The consistent lie for this content: plausible confidences drawn
    /// from a content-keyed stream (positive, row-normalized).
    fn fabricate(&self, key: u64, rows: usize) -> Tensor {
        let k = self.inner.num_classes();
        let mut rng = Rng::new(attempt_seed(self.seed ^ EVADE_SALT, key, 0));
        let mut data = Vec::with_capacity(rows * k);
        for _ in 0..rows {
            let mut row: Vec<f32> = (0..k).map(|_| rng.uniform().max(1e-3)).collect();
            let sum: f32 = row.iter().sum();
            for p in &mut row {
                *p /= sum;
            }
            data.extend_from_slice(&row);
        }
        Tensor::from_vec(data, &[rows, k]).expect("fabricated shape is consistent")
    }
}

impl BlackBoxModel for AdaptiveOracle<'_> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        match self.try_query_batch(batch)? {
            Ok(probs) => Ok(probs),
            Err(fault) => Err(bprom_vp::VpError::OracleFault { fault, attempts: 1 }),
        }
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        let key = content_key(batch);
        let attempt = {
            let mut attempts = self.attempts.lock().expect("attempt map poisoned");
            let slot = attempts.entry(key).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        if self.is_probe(batch, attempt) {
            let rows = batch.shape()[0];
            self.evasions.fetch_add(1, Ordering::Relaxed);
            self.evaded_rows.fetch_add(rows as u64, Ordering::Relaxed);
            bprom_obs::counter_add("oracle.evasions", 1);
            return Ok(Ok(self.fabricate(key, rows)));
        }
        self.inner.try_query_batch(batch)
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn queries_used(&self) -> u64 {
        // Evaded queries never reach the inner model but were answered
        // (and billed) by the endpoint.
        self.inner.queries_used() + self.evaded_rows.load(Ordering::Relaxed)
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats().merged(&OracleStats {
            evasive_responses: self.evasions.load(Ordering::Relaxed),
            ..OracleStats::default()
        })
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.inner.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.inner.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_vp::QueryOracle;

    fn oracle() -> QueryOracle {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        QueryOracle::new(model, 5)
    }

    fn natural_batch(seed: u64, rows: usize) -> Tensor {
        let mut rng = Rng::new(seed);
        Tensor::rand_uniform(&[rows, 3, 8, 8], 0.0, 1.0, &mut rng)
    }

    /// A batch with the visual-prompting signature: every row shares the
    /// same 2-pixel border, interiors differ.
    fn prompted_batch(seed: u64, rows: usize) -> Tensor {
        let mut rng = Rng::new(seed);
        let border = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut Rng::new(0xB0D8));
        let mut batch = Tensor::rand_uniform(&[rows, 3, 8, 8], 0.0, 1.0, &mut rng);
        let span = 3 * 8 * 8;
        for row in 0..rows {
            for c in 0..3 {
                for h in 0..8 {
                    for w in 0..8 {
                        if !(2..6).contains(&h) || !(2..6).contains(&w) {
                            let p = c * 64 + h * 8 + w;
                            batch.data_mut()[row * span + p] = border.data()[p];
                        }
                    }
                }
            }
        }
        batch
    }

    #[test]
    fn shared_fraction_separates_prompted_from_natural() {
        // 8x8 canvas with a 2-pixel border: 48 of 64 positions shared.
        let prompted = prompted_batch(1, 6);
        assert!(shared_fraction(&prompted) >= 0.75 - 1e-6);
        assert!(shared_fraction(&natural_batch(1, 6)) < 0.05);
        assert_eq!(shared_fraction(&natural_batch(1, 1)), 0.0);
    }

    #[test]
    fn honest_until_tests_trip() {
        let inner = oracle();
        let adaptive = AdaptiveOracle::new(&inner, AdaptiveConfig::default(), 7);
        // Distinct natural batches below min_rows: answered honestly.
        for i in 0..3 {
            let batch = natural_batch(i, 2);
            let via = adaptive.query(&batch).unwrap();
            assert_eq!(via, inner.query(&batch).unwrap());
        }
        assert_eq!(adaptive.evasions(), 0);
        assert_eq!(adaptive.oracle_stats().evasive_responses, 0);
    }

    #[test]
    fn prompt_probes_are_answered_evasively_and_consistently() {
        let inner = oracle();
        let adaptive = AdaptiveOracle::new(&inner, AdaptiveConfig::default(), 7);
        let probe = prompted_batch(2, 6);
        let honest = inner.query(&probe).unwrap();
        let served_before = inner.queries_used();
        let first = adaptive.query(&probe).unwrap();
        assert_ne!(first, honest, "probe must be answered evasively");
        assert_eq!(first.shape(), &[6, 5]);
        for row in 0..6 {
            let sum: f32 = first.data()[row * 5..(row + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "fabricated rows stay normalized");
        }
        // The lie is consistent across resubmissions (attempt-invariant).
        let second = adaptive.query(&probe).unwrap();
        assert_eq!(first, second);
        // The inner model never saw the probe; the endpoint still billed it.
        assert_eq!(inner.queries_used(), served_before);
        assert_eq!(adaptive.queries_used(), inner.queries_used() + 12);
        assert_eq!(adaptive.evasions(), 2);
        assert_eq!(adaptive.oracle_stats().evasive_responses, 2);
    }

    #[test]
    fn duplicate_rate_trips_per_content() {
        let inner = oracle();
        let adaptive = AdaptiveOracle::new(
            &inner,
            AdaptiveConfig {
                duplicate_threshold: 3,
                ..AdaptiveConfig::default()
            },
            9,
        );
        let batch = natural_batch(5, 2);
        let honest = inner.query(&batch).unwrap();
        // Attempts 0 and 1 are honest; attempt 2 (the 3rd submission)
        // trips the duplicate test, as does every later one.
        assert_eq!(adaptive.query(&batch).unwrap(), honest);
        assert_eq!(adaptive.query(&batch).unwrap(), honest);
        let evasive = adaptive.query(&batch).unwrap();
        assert_ne!(evasive, honest);
        assert_eq!(adaptive.query(&batch).unwrap(), evasive);
        // A different content starts its own counter.
        let other = natural_batch(6, 2);
        assert_eq!(
            adaptive.query(&other).unwrap(),
            inner.query(&other).unwrap()
        );
        assert_eq!(adaptive.evasions(), 2);
    }

    #[test]
    fn decisions_are_schedule_invariant() {
        // The same query multiset in two different orders must produce
        // the same per-content (attempt -> response) mapping.
        let inner = oracle();
        let responses = |order: &[u64]| -> Vec<(u64, Vec<u32>)> {
            let adaptive = AdaptiveOracle::new(&inner, AdaptiveConfig::default(), 21);
            let mut out: Vec<(u64, Vec<u32>)> = order
                .iter()
                .map(|&i| {
                    let probs = adaptive.query(&prompted_batch(i, 6)).unwrap();
                    (i, probs.data().iter().map(|p| p.to_bits()).collect())
                })
                .collect();
            out.sort_unstable();
            out
        };
        let forward: Vec<u64> = (0..8).collect();
        let backward: Vec<u64> = (0..8).rev().collect();
        assert_eq!(responses(&forward), responses(&backward));
    }
}
