//! The fault-injecting oracle decorator.

use crate::FaultPlan;
use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{BlackBoxModel, OracleStats, QueryOutcome, Result, VpError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a over the batch's shape and raw f32 bits: a stable fingerprint
/// of the query *content*, independent of when or on which thread it is
/// submitted.
pub(crate) fn content_key(batch: &Tensor) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for &d in batch.shape() {
        eat(&(d as u64).to_le_bytes());
    }
    for &v in batch.data() {
        eat(&v.to_bits().to_le_bytes());
    }
    h
}

/// Mixes the plan seed, content key and attempt number into one child
/// seed (SplitMix64-style finalization over the xor-combined words).
pub(crate) fn attempt_seed(seed: u64, key: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(key.rotate_left(17))
        .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`BlackBoxModel`] decorator that makes the wrapped oracle behave
/// like a hostile remote endpoint, per a seeded [`FaultPlan`].
///
/// **Determinism contract.** Each query attempt's random draws come from
/// `Rng::new(mix(seed, content_key(batch), attempt))`: a pure function
/// of the plan seed, the batch *content*, and how many times this exact
/// content has been submitted before. Concurrent workers therefore see
/// the same faults for the same queries regardless of scheduling, which
/// is what lets `Bprom::inspect` stay byte-identical across
/// `BPROM_THREADS` settings even under fault injection (the per-content
/// attempt counter plays the role of the per-work-unit forked RNG
/// streams in `bprom-par`). The one deliberate exception is
/// [`crate::RateLimit`], whose window budget is arrival-ordered.
///
/// Rejected attempts never reach the wrapped model: the inner oracle's
/// `queries_used` counts only *delivered* queries, exactly like a remote
/// endpoint that never saw the dropped packet.
pub struct FaultyOracle<'a, F: FaultPlan> {
    inner: &'a dyn BlackBoxModel,
    plan: F,
    seed: u64,
    /// Times each content key has been submitted (drives per-attempt
    /// fault draws so a retried query re-rolls its fate).
    attempts: Mutex<HashMap<u64, u64>>,
    faults_injected: AtomicU64,
    degraded: AtomicU64,
}

impl<F: FaultPlan> std::fmt::Debug for FaultyOracle<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyOracle")
            .field("plan", &self.plan.name())
            .field("seed", &self.seed)
            .field(
                "faults_injected",
                &self.faults_injected.load(Ordering::Relaxed),
            )
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'a, F: FaultPlan> FaultyOracle<'a, F> {
    /// Wraps `inner` with the given plan and fault seed.
    pub fn new(inner: &'a dyn BlackBoxModel, plan: F, seed: u64) -> Self {
        FaultyOracle {
            inner,
            plan,
            seed,
            attempts: Mutex::new(HashMap::new()),
            faults_injected: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Transient faults injected so far (this wrapper only).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Delivered-but-degraded responses so far (this wrapper only).
    pub fn degraded_responses(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &F {
        &self.plan
    }
}

impl<F: FaultPlan> BlackBoxModel for FaultyOracle<'_, F> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        match self.try_query_batch(batch)? {
            Ok(probs) => Ok(probs),
            Err(fault) => Err(VpError::OracleFault { fault, attempts: 1 }),
        }
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        let key = content_key(batch);
        let attempt = {
            let mut attempts = self.attempts.lock().expect("attempt map poisoned");
            let slot = attempts.entry(key).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        let mut rng = Rng::new(attempt_seed(self.seed, key, attempt));
        if let Some(fault) = self.plan.admit(&mut rng) {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            bprom_obs::counter_add("oracle.faults_injected", 1);
            return Ok(Err(fault));
        }
        let mut probs = self.inner.query(batch)?;
        if self.plan.degrade(&mut rng, &mut probs) {
            self.degraded.fetch_add(1, Ordering::Relaxed);
            bprom_obs::counter_add("oracle.degraded", 1);
        }
        Ok(Ok(probs))
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn queries_used(&self) -> u64 {
        self.inner.queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats().merged(&OracleStats {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            degraded_responses: self.degraded.load(Ordering::Relaxed),
            ..OracleStats::default()
        })
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.inner.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.inner.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LabelOnly, Quantize, Transient};
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_vp::{QueryFault, QueryOracle};

    fn oracle() -> QueryOracle {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        QueryOracle::new(model, 5)
    }

    fn batch(seed: u64) -> Tensor {
        let mut rng = Rng::new(seed);
        Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn content_key_is_content_only() {
        let a = batch(1);
        let b = batch(1);
        let c = batch(2);
        assert_eq!(content_key(&a), content_key(&b));
        assert_ne!(content_key(&a), content_key(&c));
    }

    #[test]
    fn faults_are_reproducible_per_seed_and_reroll_per_attempt() {
        let inner = oracle();
        let run = |seed: u64| -> Vec<bool> {
            let faulty = FaultyOracle::new(&inner, Transient { rate: 0.5 }, seed);
            (0..32)
                .map(|i| faulty.try_query_batch(&batch(i)).unwrap().is_err())
                .collect()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        // Resubmitting the same content re-rolls: at rate 0.5, 16
        // attempts on one batch cannot all agree (p = 2^-15 per seed,
        // and the draw is deterministic for this fixed seed).
        let faulty = FaultyOracle::new(&inner, Transient { rate: 0.5 }, 7);
        let fates: Vec<bool> = (0..16)
            .map(|_| faulty.try_query_batch(&batch(0)).unwrap().is_err())
            .collect();
        assert!(fates.iter().any(|&f| f) && fates.iter().any(|&f| !f));
    }

    #[test]
    fn rejected_attempts_never_reach_the_model() {
        let inner = oracle();
        let faulty = FaultyOracle::new(&inner, Transient { rate: 1.0 }, 3);
        for i in 0..5 {
            assert_eq!(
                faulty.try_query_batch(&batch(i)).unwrap(),
                Err(QueryFault::Dropped)
            );
        }
        assert_eq!(inner.queries_used(), 0);
        assert_eq!(faulty.faults_injected(), 5);
        assert_eq!(faulty.oracle_stats().faults_injected, 5);
        // The infallible path surfaces the fault as a typed error.
        match faulty.query(&batch(0)) {
            Err(VpError::OracleFault { fault, attempts }) => {
                assert_eq!(fault, QueryFault::Dropped);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected OracleFault, got {other:?}"),
        }
    }

    #[test]
    fn degradation_counts_and_mangles() {
        let inner = oracle();
        let faulty = FaultyOracle::new(&inner, Quantize { decimals: 1 }, 5);
        let probs = faulty.query(&batch(0)).unwrap();
        for &p in probs.data() {
            assert!((p * 10.0 - (p * 10.0).round()).abs() < 1e-6, "p={p}");
        }
        assert_eq!(faulty.degraded_responses(), 1);
        assert_eq!(faulty.oracle_stats().degraded_responses, 1);
        // Label-only responses stay valid one-hot confidence vectors.
        let faulty = FaultyOracle::new(&inner, LabelOnly, 5);
        let probs = faulty.query(&batch(0)).unwrap();
        for row in 0..2 {
            let slice = &probs.data()[row * 5..(row + 1) * 5];
            assert_eq!(slice.iter().filter(|&&p| p == 1.0).count(), 1);
            assert_eq!(slice.iter().filter(|&&p| p == 0.0).count(), 4);
        }
    }

    #[test]
    fn hard_errors_propagate_unchanged() {
        let inner = oracle();
        let faulty = FaultyOracle::new(&inner, Transient { rate: 0.0 }, 0);
        assert!(matches!(
            faulty.query(&Tensor::zeros(&[3, 8, 8])),
            Err(VpError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fault_draws_are_schedule_invariant() {
        // The same 16 queries, submitted in two different orders, must
        // receive the same per-content fates.
        let inner = oracle();
        let fates = |order: &[u64]| -> Vec<(u64, bool)> {
            let faulty = FaultyOracle::new(&inner, Transient { rate: 0.5 }, 21);
            let mut out: Vec<(u64, bool)> = order
                .iter()
                .map(|&i| (i, faulty.try_query_batch(&batch(i)).unwrap().is_err()))
                .collect();
            out.sort_unstable();
            out
        };
        let forward: Vec<u64> = (0..16).collect();
        let backward: Vec<u64> = (0..16).rev().collect();
        assert_eq!(fates(&forward), fates(&backward));
    }
}
