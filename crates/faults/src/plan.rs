//! Fault plans: the composable "what can go wrong" vocabulary of a
//! hostile oracle.
//!
//! A [`FaultPlan`] makes two decisions per query attempt, both driven by
//! a deterministic per-attempt [`Rng`] handed in by [`FaultyOracle`]:
//! whether to *admit* the request at all ([`FaultPlan::admit`] — a
//! rejection is a retryable [`QueryFault`]), and how to *degrade* the
//! delivered confidence matrix ([`FaultPlan::degrade`] — quantization,
//! top-k truncation, label-only responses, jitter).
//!
//! [`FaultyOracle`]: crate::FaultyOracle

use bprom_tensor::{Rng, Tensor};
use bprom_vp::QueryFault;
use std::sync::atomic::{AtomicU64, Ordering};

/// One layer of hostile-endpoint behaviour.
///
/// Implementations must be deterministic in the supplied `rng` (drawn
/// from the plan seed, the query *content*, and the attempt number — see
/// [`crate::FaultyOracle`]); the only sanctioned exception is
/// [`RateLimit`], whose window budget is inherently arrival-ordered.
pub trait FaultPlan: Send + Sync {
    /// Short stable identifier (used in telemetry and reports).
    fn name(&self) -> &'static str;

    /// Admission decision for one query attempt. `Some(fault)` drops the
    /// request before it reaches the model.
    fn admit(&self, rng: &mut Rng) -> Option<QueryFault> {
        let _ = rng;
        None
    }

    /// Degrades a delivered `[n, k]` confidence matrix in place.
    /// Returns `true` if the response was changed.
    fn degrade(&self, rng: &mut Rng, probs: &mut Tensor) -> bool {
        let _ = (rng, probs);
        false
    }
}

/// Drops each query attempt independently with probability `rate`
/// (network transients, server hiccups). The dropped request succeeds on
/// retry with the same independence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transient {
    /// Per-attempt drop probability in `[0, 1)`.
    pub rate: f32,
}

impl FaultPlan for Transient {
    fn name(&self) -> &'static str {
        "transient"
    }

    fn admit(&self, rng: &mut Rng) -> Option<QueryFault> {
        (rng.uniform() < self.rate).then_some(QueryFault::Dropped)
    }
}

/// Token-bucket rate limiting: every window of `budget_per_window`
/// admitted requests is followed by one rejected request, after which the
/// window resets (the retried request lands in the fresh window).
///
/// The budget is consumed in *arrival order* — the one plan whose
/// decisions depend on scheduling rather than on query content, exactly
/// like a real endpoint's limiter. Exclude it from cross-thread
/// determinism tests (see DESIGN.md §5d).
#[derive(Debug)]
pub struct RateLimit {
    /// Requests admitted per window before one is rejected.
    pub budget_per_window: u64,
    arrivals: AtomicU64,
}

impl RateLimit {
    /// A limiter admitting `budget_per_window` requests per window.
    pub fn new(budget_per_window: u64) -> Self {
        RateLimit {
            budget_per_window: budget_per_window.max(1),
            arrivals: AtomicU64::new(0),
        }
    }
}

impl FaultPlan for RateLimit {
    fn name(&self) -> &'static str {
        "rate_limit"
    }

    fn admit(&self, _rng: &mut Rng) -> Option<QueryFault> {
        let seq = self.arrivals.fetch_add(1, Ordering::Relaxed);
        // Positions budget, 2*(budget+1)-1, ... of the arrival sequence
        // are rejected: `budget` admits, one reject, window resets.
        (seq % (self.budget_per_window + 1) == self.budget_per_window)
            .then_some(QueryFault::RateLimited)
    }
}

/// Rounds every probability to `decimals` decimal places — the precision
/// a JSON-serializing MLaaS API typically returns. Rows are *not*
/// renormalized: the consumer sees exactly what the wire carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantize {
    /// Decimal places kept (0 collapses everything to 0/1).
    pub decimals: u32,
}

impl FaultPlan for Quantize {
    fn name(&self) -> &'static str {
        "quantize"
    }

    fn degrade(&self, _rng: &mut Rng, probs: &mut Tensor) -> bool {
        let scale = 10f32.powi(self.decimals as i32);
        for p in probs.data_mut() {
            // `+ 0.0` collapses IEEE `-0.0` (which `round` preserves) to
            // `+0.0`: consumers hash response *bits* (qcache digests,
            // regime feature extraction), so the sign of zero must never
            // depend on the upstream rounding path.
            *p = (*p * scale).round() / scale + 0.0;
        }
        true
    }
}

/// Keeps only each row's `k` largest probabilities and zeroes the rest
/// (APIs that return top-k scores). Ties break toward the lower class
/// index, so the truncation is content-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopK {
    /// Classes kept per row.
    pub k: usize,
}

impl FaultPlan for TopK {
    fn name(&self) -> &'static str {
        "top_k"
    }

    fn degrade(&self, _rng: &mut Rng, probs: &mut Tensor) -> bool {
        let k_classes = probs.shape()[1];
        if self.k >= k_classes {
            return false;
        }
        let rows = probs.shape()[0];
        let data = probs.data_mut();
        for row in 0..rows {
            let slice = &mut data[row * k_classes..(row + 1) * k_classes];
            let mut order: Vec<usize> = (0..k_classes).collect();
            // Stable sort by descending probability: equal values keep
            // index order, making the kept set content-deterministic.
            order.sort_by(|&a, &b| slice[b].total_cmp(&slice[a]));
            for &c in &order[self.k..] {
                slice[c] = 0.0;
            }
        }
        true
    }
}

/// The label-only regime (AEVA's threat model): the response collapses
/// to a one-hot vector at the argmax class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelOnly;

impl FaultPlan for LabelOnly {
    fn name(&self) -> &'static str {
        "label_only"
    }

    fn degrade(&self, _rng: &mut Rng, probs: &mut Tensor) -> bool {
        let k = probs.shape()[1];
        let rows = probs.shape()[0];
        let data = probs.data_mut();
        for row in 0..rows {
            let slice = &mut data[row * k..(row + 1) * k];
            let mut best = 0usize;
            for c in 1..k {
                if slice[c] > slice[best] {
                    best = c;
                }
            }
            slice.fill(0.0);
            slice[best] = 1.0;
        }
        true
    }
}

/// Adds zero-mean Gaussian noise (`sigma`) to every probability, clamps
/// at zero and renormalizes each row — a model serving nondeterministic
/// hardware or an endpoint deliberately fuzzing its confidences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Noise standard deviation.
    pub sigma: f32,
}

impl FaultPlan for Jitter {
    fn name(&self) -> &'static str {
        "jitter"
    }

    fn degrade(&self, rng: &mut Rng, probs: &mut Tensor) -> bool {
        let k = probs.shape()[1];
        let rows = probs.shape()[0];
        let data = probs.data_mut();
        for row in 0..rows {
            let slice = &mut data[row * k..(row + 1) * k];
            let mut sum = 0.0f32;
            for p in slice.iter_mut() {
                *p = (*p + rng.normal() * self.sigma).max(0.0);
                sum += *p;
            }
            if sum > 0.0 {
                for p in slice.iter_mut() {
                    *p /= sum;
                }
            } else {
                slice.fill(1.0 / k as f32);
            }
        }
        true
    }
}

/// Composition of fault plans: admission short-circuits on the first
/// rejecting layer, degradations apply in order (e.g. jitter, then
/// quantize — the wire format is the outermost mangling).
pub struct Stack(pub Vec<Box<dyn FaultPlan>>);

impl Stack {
    /// An empty (fault-free, pass-through) stack.
    pub fn passthrough() -> Self {
        Stack(Vec::new())
    }
}

impl FaultPlan for Stack {
    fn name(&self) -> &'static str {
        "stack"
    }

    fn admit(&self, rng: &mut Rng) -> Option<QueryFault> {
        self.0.iter().find_map(|plan| plan.admit(rng))
    }

    fn degrade(&self, rng: &mut Rng, probs: &mut Tensor) -> bool {
        let mut changed = false;
        for plan in &self.0 {
            changed |= plan.degrade(rng, probs);
        }
        changed
    }
}

/// Env-selected default plan for test suites and CI (`BPROM_FAULT_PROFILE`).
///
/// `hostile` wraps every profile-honoring oracle in a realistically
/// unpleasant endpoint: 10 % transient drops plus 3-decimal quantization.
/// Anything else (or unset) is a pass-through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults: profile-honoring helpers behave as if unwrapped.
    Off,
    /// Transient drops (10 %) + 3-decimal quantization, with retries.
    Hostile,
}

impl FaultProfile {
    /// Reads `BPROM_FAULT_PROFILE` (`"hostile"` selects
    /// [`FaultProfile::Hostile`]; everything else is [`FaultProfile::Off`]).
    pub fn from_env() -> Self {
        match std::env::var("BPROM_FAULT_PROFILE") {
            Ok(v) if v.eq_ignore_ascii_case("hostile") => FaultProfile::Hostile,
            _ => FaultProfile::Off,
        }
    }

    /// The profile's fault plan ([`Stack::passthrough`] when off).
    pub fn plan(&self) -> Stack {
        match self {
            FaultProfile::Off => Stack::passthrough(),
            FaultProfile::Hostile => Stack(vec![
                Box::new(Transient { rate: 0.10 }),
                Box::new(Quantize { decimals: 3 }),
            ]),
        }
    }

    /// The retry policy paired with this profile.
    pub fn retry_policy(&self) -> crate::RetryPolicy {
        crate::RetryPolicy::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_matrix(rows: &[&[f32]]) -> Tensor {
        let k = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, &[rows.len(), k]).unwrap()
    }

    #[test]
    fn transient_rate_bounds() {
        let mut rng = Rng::new(0);
        let always = Transient { rate: 1.0 };
        let never = Transient { rate: 0.0 };
        for _ in 0..100 {
            assert_eq!(always.admit(&mut rng), Some(QueryFault::Dropped));
            assert_eq!(never.admit(&mut rng), None);
        }
    }

    #[test]
    fn rate_limit_rejects_every_window_boundary() {
        let plan = RateLimit::new(3);
        let mut rng = Rng::new(0);
        let outcomes: Vec<bool> = (0..12).map(|_| plan.admit(&mut rng).is_some()).collect();
        // 3 admits, 1 reject, repeating.
        assert_eq!(
            outcomes,
            vec![false, false, false, true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn quantize_rounds_to_decimals() {
        let mut probs = row_matrix(&[&[0.12345, 0.87655], &[0.5004, 0.4996]]);
        let mut rng = Rng::new(0);
        assert!(Quantize { decimals: 2 }.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.12, 0.88, 0.5, 0.5]);
    }

    #[test]
    fn quantize_zero_decimals_collapses_to_indicator() {
        // `decimals: 0` is the documented degenerate regime: every
        // probability rounds to exactly 0.0 or 1.0 (half away from zero).
        let mut probs = row_matrix(&[&[0.49, 0.51], &[0.5, 0.499999]]);
        let mut rng = Rng::new(0);
        assert!(Quantize { decimals: 0 }.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.0, 1.0, 1.0, 0.0]);
        for &p in probs.data() {
            assert!(p == 0.0 || p == 1.0);
        }
    }

    #[test]
    fn quantize_normalizes_negative_zero() {
        // `-0.0` inputs (and small values rounding down to zero) must
        // leave with a clear sign bit: downstream consumers digest the
        // raw f32 bits of responses.
        let mut probs = row_matrix(&[&[-0.0, 0.0004, 0.9996]]);
        let mut rng = Rng::new(0);
        assert!(Quantize { decimals: 3 }.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.0, 0.0, 1.0]);
        for &p in probs.data() {
            assert_eq!(p.to_bits() & 0x8000_0000, 0, "sign bit must be clear");
        }
    }

    #[test]
    fn top_k_keeps_largest_and_breaks_ties_low() {
        let mut probs = row_matrix(&[&[0.1, 0.4, 0.2, 0.3], &[0.25, 0.25, 0.25, 0.25]]);
        let mut rng = Rng::new(0);
        assert!(TopK { k: 2 }.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.0, 0.4, 0.0, 0.3, 0.25, 0.25, 0.0, 0.0]);
        // k >= classes is a no-op.
        let mut probs = row_matrix(&[&[0.6, 0.4]]);
        assert!(!TopK { k: 5 }.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.6, 0.4]);
    }

    #[test]
    fn label_only_is_one_hot_at_argmax() {
        let mut probs = row_matrix(&[&[0.1, 0.7, 0.2], &[0.5, 0.1, 0.4]]);
        let mut rng = Rng::new(0);
        assert!(LabelOnly.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn jitter_keeps_rows_normalized_and_nonnegative() {
        let mut probs = row_matrix(&[&[0.2, 0.3, 0.5], &[0.9, 0.05, 0.05]]);
        let mut rng = Rng::new(7);
        assert!(Jitter { sigma: 0.1 }.degrade(&mut rng, &mut probs));
        for row in 0..2 {
            let slice = &probs.data()[row * 3..(row + 1) * 3];
            assert!(slice.iter().all(|&p| p >= 0.0));
            let sum: f32 = slice.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {row} sums to {sum}");
        }
    }

    #[test]
    fn stack_composes_admission_and_degradation() {
        let stack = Stack(vec![
            Box::new(Transient { rate: 0.0 }),
            Box::new(Quantize { decimals: 1 }),
            Box::new(TopK { k: 1 }),
        ]);
        let mut rng = Rng::new(0);
        assert_eq!(stack.admit(&mut rng), None);
        let mut probs = row_matrix(&[&[0.61, 0.29, 0.1]]);
        assert!(stack.degrade(&mut rng, &mut probs));
        assert_eq!(probs.data(), &[0.6, 0.0, 0.0]);
        // A rejecting layer short-circuits admission.
        let stack = Stack(vec![
            Box::new(Transient { rate: 1.0 }),
            Box::new(Transient { rate: 0.0 }),
        ]);
        assert_eq!(stack.admit(&mut rng), Some(QueryFault::Dropped));
    }

    #[test]
    fn profile_resolution() {
        // Not set in the test environment unless CI exported it; both
        // arms must at least produce a usable plan.
        let profile = FaultProfile::from_env();
        let _ = profile.plan();
        assert_eq!(FaultProfile::Off.plan().0.len(), 0);
        assert_eq!(FaultProfile::Hostile.plan().0.len(), 2);
    }
}
