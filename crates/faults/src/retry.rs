//! Bounded-retry decorator with virtual-clock exponential backoff.

use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::Tensor;
use bprom_vp::{BlackBoxModel, OracleStats, QueryOutcome, Result, VpError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Backoff schedule for [`RetryingOracle`].
///
/// The clock is *virtual*: instead of sleeping, the would-be backoff
/// milliseconds accumulate into [`OracleStats::backoff_virtual_ms`] (and
/// the `oracle.backoff_ms` histogram). Detection pipelines stay exactly
/// as fast as the hardware allows while tests and reports still see the
/// latency a real client would have paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per query (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in (virtual) milliseconds.
    pub base_delay_ms: u64,
    /// Cap on a single backoff step, in (virtual) milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff after the `retry`-th failed attempt (1-based):
    /// `base * 2^(retry-1)`, capped at `max_delay_ms`.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let doubled = self
            .base_delay_ms
            .saturating_mul(1u64 << (retry - 1).min(62));
        doubled.min(self.max_delay_ms)
    }
}

/// A [`BlackBoxModel`] decorator that absorbs transient faults from its
/// inner oracle by retrying with bounded exponential backoff.
///
/// On the plain [`BlackBoxModel::query`] path, a query whose retry
/// budget runs out surfaces as [`VpError::OracleFault`] with the full
/// attempt count — the typed signal consumers use to degrade gracefully
/// (CMA-ES skips-and-penalizes the candidate) instead of aborting.
pub struct RetryingOracle<'a> {
    inner: &'a dyn BlackBoxModel,
    policy: RetryPolicy,
    retries: AtomicU64,
    exhausted: AtomicU64,
    backoff_ms: AtomicU64,
}

impl std::fmt::Debug for RetryingOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingOracle")
            .field("policy", &self.policy)
            .field("retries", &self.retries.load(Ordering::Relaxed))
            .field("exhausted", &self.exhausted.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'a> RetryingOracle<'a> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: &'a dyn BlackBoxModel, policy: RetryPolicy) -> Self {
        RetryingOracle {
            inner,
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// Retry attempts performed so far (this wrapper only).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Queries that ran out of attempts (this wrapper only).
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Virtual milliseconds spent backing off (this wrapper only).
    pub fn backoff_virtual_ms(&self) -> u64 {
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }
}

impl BlackBoxModel for RetryingOracle<'_> {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        match self.try_query_batch(batch)? {
            Ok(probs) => Ok(probs),
            Err(fault) => Err(VpError::OracleFault {
                fault,
                attempts: self.policy.max_attempts,
            }),
        }
    }

    fn try_query_batch(&self, batch: &Tensor) -> Result<QueryOutcome> {
        let mut failed_attempts = 0u32;
        loop {
            match self.inner.try_query_batch(batch)? {
                Ok(probs) => return Ok(Ok(probs)),
                Err(fault) => {
                    failed_attempts += 1;
                    if failed_attempts >= self.policy.max_attempts {
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                        bprom_obs::counter_add("oracle.retry_exhausted", 1);
                        bprom_obs::log_event(
                            "oracle.retry_exhausted",
                            [("attempts", u64::from(self.policy.max_attempts).into())],
                        );
                        return Ok(Err(fault));
                    }
                    let delay = self.policy.delay_ms(failed_attempts);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff_ms.fetch_add(delay, Ordering::Relaxed);
                    bprom_obs::counter_add("oracle.retries", 1);
                    bprom_obs::observe("oracle.backoff_ms", delay);
                }
            }
        }
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn queries_used(&self) -> u64 {
        self.inner.queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        self.inner.oracle_stats().merged(&OracleStats {
            retries: self.retries.load(Ordering::Relaxed),
            retry_exhausted: self.exhausted.load(Ordering::Relaxed),
            backoff_virtual_ms: self.backoff_ms.load(Ordering::Relaxed),
            ..OracleStats::default()
        })
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.inner.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.inner.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyOracle, Transient};
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::Rng;
    use bprom_vp::{QueryFault, QueryOracle};

    fn oracle() -> QueryOracle {
        let mut rng = Rng::new(0);
        let model = mlp(&ModelSpec::new(3, 8, 5), &mut rng).unwrap();
        QueryOracle::new(model, 5)
    }

    fn batch(seed: u64) -> Tensor {
        let mut rng = Rng::new(seed);
        Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 50,
            max_delay_ms: 300,
        };
        assert_eq!(policy.delay_ms(1), 50);
        assert_eq!(policy.delay_ms(2), 100);
        assert_eq!(policy.delay_ms(3), 200);
        assert_eq!(policy.delay_ms(4), 300);
        assert_eq!(policy.delay_ms(40), 300);
    }

    #[test]
    fn retries_absorb_transient_faults() {
        let inner = oracle();
        let faulty = FaultyOracle::new(&inner, Transient { rate: 0.3 }, 13);
        let policy = RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        };
        let retrying = RetryingOracle::new(&faulty, policy);
        let reference = inner.query(&batch(0)).unwrap();
        for i in 0..32 {
            let probs = retrying.query(&batch(i)).unwrap();
            if i == 0 {
                // Transient faults drop requests but never corrupt the
                // responses that do get through.
                assert_eq!(probs, reference);
            }
        }
        let stats = retrying.oracle_stats();
        assert!(stats.retries > 0, "rate 0.3 over 32 queries must retry");
        assert_eq!(stats.retries, stats.faults_injected);
        assert_eq!(stats.retry_exhausted, 0);
        assert_eq!(stats.backoff_virtual_ms, retrying.backoff_virtual_ms());
        assert!(stats.backoff_virtual_ms >= stats.retries * 50);
    }

    #[test]
    fn exhaustion_surfaces_typed_fault() {
        let inner = oracle();
        let faulty = FaultyOracle::new(&inner, Transient { rate: 1.0 }, 1);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
        };
        let retrying = RetryingOracle::new(&faulty, policy);
        match retrying.query(&batch(0)) {
            Err(VpError::OracleFault { fault, attempts }) => {
                assert_eq!(fault, QueryFault::Dropped);
                assert_eq!(attempts, 4);
            }
            other => panic!("expected OracleFault, got {other:?}"),
        }
        // 4 attempts: 3 backed-off retries, then exhaustion.
        assert_eq!(retrying.retries(), 3);
        assert_eq!(retrying.exhausted(), 1);
        assert_eq!(retrying.backoff_virtual_ms(), 10 + 20 + 40);
        assert_eq!(faulty.faults_injected(), 4);
        assert_eq!(inner.queries_used(), 0);
    }

    #[test]
    fn fault_free_stack_is_transparent() {
        let inner = oracle();
        let retrying = RetryingOracle::new(&inner, RetryPolicy::default());
        let direct = inner.query(&batch(3)).unwrap();
        let through = retrying.query(&batch(3)).unwrap();
        assert_eq!(direct, through);
        assert_eq!(retrying.retries(), 0);
        assert_eq!(retrying.oracle_stats(), OracleStats::default());
    }
}
