//! 2-D max/average pooling (forward and backward) on NCHW tensors.

use crate::{Tensor, TensorError};

fn pool_dims(
    t: &Tensor,
    k: usize,
    stride: usize,
) -> Result<(usize, usize, usize, usize, usize, usize), TensorError> {
    if t.rank() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("pooling requires rank-4 input, got {:?}", t.shape()),
        });
    }
    if stride == 0 || k == 0 {
        return Err(TensorError::InvalidParameter {
            reason: "pool kernel and stride must be positive".to_string(),
        });
    }
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    if h < k || w < k {
        return Err(TensorError::InvalidShape {
            reason: format!("pool kernel {k} larger than input {h}x{w}"),
        });
    }
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    Ok((n, c, h, w, oh, ow))
}

/// Max pooling. Returns `(output, argmax_indices)`; the indices are flat
/// offsets into the input buffer, consumed by [`maxpool2d_backward`].
///
/// # Errors
///
/// Returns an error for non-rank-4 input, zero kernel/stride, or a kernel
/// larger than the input.
pub fn maxpool2d(
    input: &Tensor,
    k: usize,
    stride: usize,
) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (n, c, h, w, oh, ow) = pool_dims(input, k, stride)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    let src = input.data();
    let dst = out.data_mut();
    let mut di = 0;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ki in 0..k {
                        for kj in 0..kw_range(k) {
                            let idx = plane + (oi * stride + ki) * w + oj * stride + kj;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    dst[di] = best;
                    arg[di] = best_idx;
                    di += 1;
                }
            }
        }
    }
    Ok((out, arg))
}

// Square kernels only; helper keeps the loop symmetric and readable.
fn kw_range(k: usize) -> usize {
    k
}

/// Backward pass of max pooling: routes each output gradient to the input
/// element that won the forward max.
///
/// # Errors
///
/// Returns [`TensorError::ElementCountMismatch`] if `grad_output` and the
/// saved `argmax` disagree in length.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor, TensorError> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::ElementCountMismatch {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (&g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average pooling.
///
/// # Errors
///
/// Same conditions as [`maxpool2d`].
pub fn avgpool2d(input: &Tensor, k: usize, stride: usize) -> Result<Tensor, TensorError> {
    let (n, c, h, w, oh, ow) = pool_dims(input, k, stride)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    let src = input.data();
    let dst = out.data_mut();
    let mut di = 0;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for ki in 0..k {
                        let row = plane + (oi * stride + ki) * w + oj * stride;
                        for kj in 0..k {
                            acc += src[row + kj];
                        }
                    }
                    dst[di] = acc * inv;
                    di += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of average pooling: spreads each output gradient uniformly
/// over its input window.
///
/// # Errors
///
/// Returns an error if `grad_output`'s shape is inconsistent with
/// `input_shape` under the given kernel/stride.
pub fn avgpool2d_backward(
    grad_output: &Tensor,
    input_shape: &[usize],
    k: usize,
    stride: usize,
) -> Result<Tensor, TensorError> {
    let mut grad_in = Tensor::zeros(input_shape);
    let (n, c, h, w, oh, ow) = pool_dims(&grad_in, k, stride)?;
    if grad_output.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, oh, ow],
            actual: grad_output.shape().to_vec(),
        });
    }
    let inv = 1.0 / (k * k) as f32;
    let go = grad_output.data();
    let gi = grad_in.data_mut();
    let mut si = 0;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = go[si] * inv;
                    si += 1;
                    for ki in 0..k {
                        let row = plane + (oi * stride + ki) * w + oj * stride;
                        for kj in 0..k {
                            gi[row + kj] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn maxpool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, arg) = maxpool2d(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]).unwrap();
        let (out, arg) = maxpool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[3.0]);
        let g = maxpool2d_backward(&Tensor::ones(&[1, 1, 1, 1]), &arg, &[1, 1, 2, 2]).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_known_values() {
        let input = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap();
        let out = avgpool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[5.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let g = avgpool2d_backward(
            &Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap(),
            &[1, 1, 2, 2],
            2,
            2,
        )
        .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_gradient_finite_difference() {
        let mut rng = Rng::new(6);
        let mut input = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let out = avgpool2d(&input, 2, 2).unwrap();
        let grad = avgpool2d_backward(&Tensor::ones(out.shape()), &[1, 2, 4, 4], 2, 2).unwrap();
        let eps = 1e-2;
        for &flat in &[0usize, 5, 17, 31] {
            let orig = input.data()[flat];
            input.data_mut()[flat] = orig + eps;
            let lp = avgpool2d(&input, 2, 2).unwrap().sum();
            input.data_mut()[flat] = orig - eps;
            let lm = avgpool2d(&input, 2, 2).unwrap().sum();
            input.data_mut()[flat] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn pooling_preserves_total_via_stride1_avg() {
        let mut rng = Rng::new(7);
        let input = Tensor::randn(&[1, 1, 3, 3], &mut rng);
        let out = avgpool2d(&input, 1, 1).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn invalid_parameters() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool2d(&t, 0, 1).is_err());
        assert!(maxpool2d(&t, 2, 0).is_err());
        assert!(maxpool2d(&t, 3, 1).is_err());
        assert!(maxpool2d(&Tensor::zeros(&[2, 2]), 1, 1).is_err());
    }
}
