use std::fmt;

/// Error type for every fallible tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expected shape) disagree.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape it actually received.
        actual: Vec<usize>,
    },
    /// A shape is structurally invalid for the requested operation
    /// (wrong rank, zero dimension where one is not allowed, ...).
    InvalidShape {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// The number of provided elements does not match the shape product.
    ElementCountMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// An index is out of bounds for the tensor it addresses.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// Shape of the tensor being indexed.
        shape: Vec<usize>,
    },
    /// A numeric parameter is out of its valid range (e.g. zero stride).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            TensorError::ElementCountMismatch { expected, actual } => {
                write!(
                    f,
                    "element count mismatch: shape implies {expected}, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
        };
        let msg = err.to_string();
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
