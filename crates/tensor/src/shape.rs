use crate::TensorError;

/// Returns the number of elements implied by a dimension list.
///
/// An empty dimension list describes a scalar and has product 1.
///
/// ```
/// assert_eq!(bprom_tensor::dims_product(&[2, 3, 4]), 24);
/// assert_eq!(bprom_tensor::dims_product(&[]), 1);
/// ```
pub fn dims_product(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// A validated tensor shape: row-major dimensions plus cached strides.
///
/// `Shape` is cheap to clone and guarantees that strides are consistent
/// with the dimensions (contiguous row-major layout).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimensions, computing row-major strides.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if any dimension is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.contains(&0) {
            return Err(TensorError::InvalidShape {
                reason: format!("zero-sized dimension in {dims:?}"),
            });
        }
        Ok(Self::new_unchecked(dims))
    }

    pub(crate) fn new_unchecked(dims: &[usize]) -> Self {
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Shape {
            dims: dims.to_vec(),
            strides,
        }
    }

    /// Dimensions of the shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        dims_product(&self.dims)
    }

    /// Whether the shape contains no elements. Always `false` for shapes
    /// built through [`Shape::new`], which rejects zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(index.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(matches!(
            Shape::new(&[2, 0]),
            Err(TensorError::InvalidShape { .. })
        ));
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[3, 5]).unwrap();
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 7);
        assert_eq!(s.offset(&[2, 4]).unwrap(), 14);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[3, 5]).unwrap();
        assert!(s.offset(&[3, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }
}
