//! Matrix multiplication for rank-2 tensors.
//!
//! All three transpose flavours are thin shape-checking wrappers over the
//! packed, cache-blocked GEMM driver in [`crate::kernels`]; the packing
//! step absorbs the transposes, so nothing is ever materialized. The
//! driver keeps the historical accumulation contract — each output
//! element sums its products in strictly increasing `k` order — so all
//! three are bit-identical to the retained scalar reference
//! ([`crate::reference::matmul_reference`]) and thread-count invariant.
//!
//! The pre-kernel `matmul_tn` carried a zero-skip branch on its left
//! operand (post-ReLU activations are ~half zeros). The packed kernel
//! deleted it: a data-dependent branch cannot live inside the vectorized
//! microkernel, and the uniform driver is what keeps all three flavours
//! bit-identical and threadable. The skip's one remaining win is tiny
//! half-zero squares (~20 % at 64×64, where pack overhead dominates);
//! on the pipeline's GEMM-shaped products the packed path wins outright
//! — see the `matmul_tn_*` micro-benches in
//! `crates/bench/benches/micro.rs`, which keep the old loop around for
//! re-measurement.

use crate::kernels::gemm;
use crate::pack::Trans;
use crate::{Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if either operand is not rank 2
    /// and [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::InvalidShape {
                reason: format!(
                    "matmul requires rank-2 operands, got {:?} and {:?}",
                    self.shape(),
                    other.shape()
                ),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(
            m,
            n,
            k,
            self.data(),
            Trans::N,
            other.data(),
            Trans::N,
            &mut out,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T × other` without materializing the transpose:
    /// `[k, m]ᵀ × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for non-rank-2 operands and
    /// [`TensorError::ShapeMismatch`] if the leading dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::InvalidShape {
                reason: "matmul_tn requires rank-2 operands".to_string(),
            });
        }
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(
            m,
            n,
            k,
            self.data(),
            Trans::T,
            other.data(),
            Trans::N,
            &mut out,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// `self × other^T` without materializing the transpose:
    /// `[m, k] × [n, k]ᵀ → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for non-rank-2 operands and
    /// [`TensorError::ShapeMismatch`] if the trailing dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::InvalidShape {
                reason: "matmul_nt requires rank-2 operands".to_string(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n, k],
                actual: vec![n, k2],
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(
            m,
            n,
            k,
            self.data(),
            Trans::N,
            other.data(),
            Trans::T,
            &mut out,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `self` is not rank 2 or `v`
    /// not rank 1, and [`TensorError::ShapeMismatch`] on inner-dimension
    /// disagreement.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || v.rank() != 1 {
            return Err(TensorError::InvalidShape {
                reason: "matvec requires rank-2 matrix and rank-1 vector".to_string(),
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if v.len() != k {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k],
                actual: vec![v.len()],
            });
        }
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().to_vec(),
                actual: other.shape().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_close(&a.matmul(&eye).unwrap(), &a, 1e-6);
        assert_close(&eye.matmul(&a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_reference() {
        let mut rng = Rng::new(11);
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (33, 65, 17), (64, 64, 64)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let packed = a.matmul(&b).unwrap();
            let reference = crate::reference::matmul_reference(&a, &b).unwrap();
            assert_eq!(packed.data(), reference.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().unwrap().matmul(&b).unwrap();
        assert_close(&fast, &slow, 1e-4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[4, 3], &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_close(&fast, &slow, 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[6, 3], &mut rng);
        let v = Tensor::randn(&[3], &mut rng);
        let mv = a.matvec(&v).unwrap();
        let mm = a.matmul(&v.reshape(&[3, 1]).unwrap()).unwrap();
        assert_close(&mv, &mm.reshape(&[6]).unwrap(), 1e-5);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matvec(&Tensor::zeros(&[4])).is_err());
        assert!(Tensor::zeros(&[2]).matmul(&a).is_err());
    }
}
