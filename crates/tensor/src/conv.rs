//! 2-D convolution primitives (forward and backward) via batched im2col.
//!
//! Layout conventions: inputs are NCHW `[n, c, h, w]`, weights are OIHW
//! `[out_ch, in_ch, kh, kw]`. All functions take `stride` and symmetric
//! zero `padding`.
//!
//! Each direction lowers the whole batch onto **one** column matrix of
//! shape `[c·kh·kw, n·oh·ow]` (columns grouped sample-major) and runs a
//! single packed GEMM against it, instead of the pre-kernel per-sample
//! im2col → small-matmul loop (retained in [`crate::reference`]). The
//! column matrix is *virtual*: a [`BPacker`] synthesizes each requested
//! block straight from the padded input (or the NCHW gradient) into the
//! GEMM's packed-strip layout, so the `[k, n·oh·ow]` matrix is never
//! materialized or re-read. The forward and backward-input passes keep
//! the reference accumulation order bit-exactly; backward-weight reduces
//! over the flat `n·oh·ow` axis — see the determinism notes in
//! [`crate::kernels`].

use crate::kernels::{gemm_with_b, BPacker, NR};
use crate::pack::Trans;
use crate::workspace::{with_scratch, with_zeroed_scratch};
use crate::{Tensor, TensorError};

pub(crate) fn out_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidParameter {
            reason: "stride must be positive".to_string(),
        });
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return Err(TensorError::InvalidShape {
            reason: format!("kernel {kernel} larger than padded input {padded}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

fn check_rank4(t: &Tensor, what: &str) -> Result<(), TensorError> {
    if t.rank() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("{what} must be rank 4 (got {:?})", t.shape()),
        });
    }
    Ok(())
}

/// Zero-pads the spatial dimensions of an NCHW tensor by `pad` on each side.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not rank 4.
pub fn pad2d(input: &Tensor, pad: usize) -> Result<Tensor, TensorError> {
    check_rank4(input, "pad2d input")?;
    if pad == 0 {
        return Ok(input.clone());
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, hp, wp]);
    let src = input.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s0 = ((ni * c + ci) * h + hi) * w;
                let d0 = ((ni * c + ci) * hp + hi + pad) * wp + pad;
                dst[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
            }
        }
    }
    Ok(out)
}

/// Inverse of [`pad2d`]: crops `pad` pixels from each spatial side.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not rank 4 or is too
/// small to crop.
pub fn unpad2d(input: &Tensor, pad: usize) -> Result<Tensor, TensorError> {
    check_rank4(input, "unpad2d input")?;
    if pad == 0 {
        return Ok(input.clone());
    }
    let (n, c, hp, wp) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if hp <= 2 * pad || wp <= 2 * pad {
        return Err(TensorError::InvalidShape {
            reason: format!("cannot crop {pad} from spatial dims {hp}x{wp}"),
        });
    }
    let (h, w) = (hp - 2 * pad, wp - 2 * pad);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = input.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s0 = ((ni * c + ci) * hp + hi + pad) * wp + pad;
                let d0 = ((ni * c + ci) * h + hi) * w;
                dst[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
            }
        }
    }
    Ok(out)
}

/// col2im: scatter-add one sample's column block (at row stride
/// `row_stride`, column offset `col0`) straight into an **unpadded**
/// `[c, h, w]` sample buffer, dropping contributions that land in the
/// padding ring. Each destination element still receives its adds in
/// increasing `(ci, ki, kj, oi, oj)` order — the same order the
/// pad-then-unpad formulation produced — so results stay bit-identical
/// while skipping the padded buffer's zero-fill and copy-out.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn col2im_sample(
    col: &[f32],
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    row_stride: usize,
    col0: usize,
) {
    if stride == 1 {
        // Gather formulation: build each output row once in a hot row
        // buffer from its ≤ kh·kw contributing column-row slivers, then
        // store it — instead of read-modify-writing the output kh·kw
        // times. The buffer is extended to `ow + kw - 1` cells (indexed
        // by `x + pad = oj + kj`) so every sliver is a full, unclipped
        // `ow`-wide add: contributions that would land in the padding
        // ring fall into border cells that are simply not copied out.
        // Per kept element the adds still arrive in increasing
        // `(ki, kj)` order, matching the scatter path below, so the
        // result is bit-identical.
        let mut ext = vec![0.0f32; ow + kw - 1];
        for ci in 0..c {
            for y in 0..h {
                ext.fill(0.0);
                for ki in 0..kh {
                    // y = oi + ki - pad  ⇒  oi = y + pad - ki ∈ [0, oh).
                    if y + pad < ki || y + pad - ki >= oh {
                        continue;
                    }
                    let oi = y + pad - ki;
                    let base = (ci * kh + ki) * kw * row_stride + col0 + oi * ow;
                    for kj in 0..kw {
                        let src = &col[base + kj * row_stride..][..ow];
                        let dst = &mut ext[kj..kj + ow];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
                out[(ci * h + y) * w..(ci * h + y) * w + w].copy_from_slice(&ext[pad..pad + w]);
            }
        }
        return;
    }
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * row_stride + col0;
                for oi in 0..oh {
                    let y = (oi * stride + ki) as isize - pad as isize;
                    if y < 0 || y >= h as isize {
                        continue;
                    }
                    let dst0 = (ci * h + y as usize) * w;
                    let src0 = base + oi * ow;
                    for oj in 0..ow {
                        let x = (oj * stride + kj) as isize - pad as isize;
                        if x < 0 || x >= w as isize {
                            continue;
                        }
                        out[dst0 + x as usize] += col[src0 + oj];
                    }
                }
            }
        }
    }
}

/// Shared shape bookkeeping for the three conv directions.
struct ConvDims {
    n: usize,
    c: usize,
    o: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    /// Padded spatial dims.
    hp: usize,
    wp: usize,
    /// GEMM reduction depth `c·kh·kw`.
    k: usize,
    /// Spatial size of one output sample, `oh·ow`.
    spat: usize,
}

impl ConvDims {
    fn resolve(
        input_shape: &[usize],
        o: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let (kh, kw) = kernel;
        let oh = out_dim(h, kh, stride, padding)?;
        let ow = out_dim(w, kw, stride, padding)?;
        Ok(ConvDims {
            n,
            c,
            o,
            kh,
            kw,
            oh,
            ow,
            hp: h + 2 * padding,
            wp: w + 2 * padding,
            k: c * kh * kw,
            spat: oh * ow,
        })
    }
}

/// Offset of virtual column `j` (output position, sample-major) inside
/// the padded batch: the element for k-row `p` is
/// `padded[col_base(j) + k_off(p)]`.
fn col_base(d: &ConvDims, stride: usize, j: usize) -> usize {
    let sample = j / d.spat;
    let r = j % d.spat;
    let (oy, ox) = (r / d.ow, r % d.ow);
    (sample * d.c * d.hp + oy * stride) * d.wp + ox * stride
}

/// Offset of k-row `p = (c, ki, kj)` relative to a column's base.
fn k_off(d: &ConvDims, p: usize) -> usize {
    let ci = p / (d.kh * d.kw);
    let r = p % (d.kh * d.kw);
    (ci * d.hp + r / d.kw) * d.wp + r % d.kw
}

/// Virtual im2col B operand for the forward pass:
/// `B_op[p][j] = col[p][j]`, synthesized from the padded input.
struct ColPacker<'s> {
    padded: &'s [f32],
    d: &'s ConvDims,
    stride: usize,
}

impl BPacker for ColPacker<'_> {
    fn pack(&self, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
        let strips = nc.div_ceil(NR);
        buf.clear();
        buf.resize(strips * kc * NR, 0.0);
        let offs: Vec<usize> = (p0..p0 + kc).map(|p| k_off(self.d, p)).collect();
        let bases: Vec<usize> = (j0..j0 + nc)
            .map(|j| col_base(self.d, self.stride, j))
            .collect();
        for (t, strip) in buf.chunks_exact_mut(kc * NR).enumerate() {
            let cols = NR.min(nc - t * NR);
            let b = &bases[t * NR..t * NR + cols];
            // Column bases increase monotonically, so spanning exactly
            // `cols` positions means they are consecutive (one stride-1
            // output row) and the sliver is a straight copy.
            if cols == NR && b[NR - 1] == b[0] + NR - 1 {
                let b0 = b[0];
                for (row, &off) in strip.chunks_exact_mut(NR).zip(&offs) {
                    row.copy_from_slice(&self.padded[b0 + off..b0 + off + NR]);
                }
            } else {
                for (row, &off) in strip.chunks_exact_mut(NR).zip(&offs) {
                    for (dv, &base) in row.iter_mut().zip(b) {
                        *dv = self.padded[base + off];
                    }
                }
            }
        }
    }
}

/// Virtual transposed im2col for backward-weight:
/// `B_op[p][j] = col[j][p]` (reduction runs over output positions).
struct ColTPacker<'s> {
    padded: &'s [f32],
    d: &'s ConvDims,
    stride: usize,
}

impl BPacker for ColTPacker<'_> {
    fn pack(&self, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
        let strips = nc.div_ceil(NR);
        buf.clear();
        buf.resize(strips * kc * NR, 0.0);
        let bases: Vec<usize> = (p0..p0 + kc)
            .map(|p| col_base(self.d, self.stride, p))
            .collect();
        let offs: Vec<usize> = (j0..j0 + nc).map(|j| k_off(self.d, j)).collect();
        for (t, strip) in buf.chunks_exact_mut(kc * NR).enumerate() {
            let cols = NR.min(nc - t * NR);
            let o = &offs[t * NR..t * NR + cols];
            for (row, &base) in strip.chunks_exact_mut(NR).zip(&bases) {
                for (dv, &off) in row.iter_mut().zip(o) {
                    *dv = self.padded[base + off];
                }
            }
        }
    }
}

/// Virtual B operand for the deep-`o` backward-input GEMM:
/// `B_op[p][ni·spat + j] = grad[ni][p][j]` — the `[n, o, oh·ow]`
/// gradient presented as `[o, n·oh·ow]` without materializing the
/// regrouped matrix.
struct GradRowsPacker<'s> {
    grad: &'s [f32],
    d: &'s ConvDims,
}

impl BPacker for GradRowsPacker<'_> {
    fn pack(&self, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
        let strips = nc.div_ceil(NR);
        buf.clear();
        buf.resize(strips * kc * NR, 0.0);
        let (spat, o) = (self.d.spat, self.d.o);
        for (t, strip) in buf.chunks_exact_mut(kc * NR).enumerate() {
            let c0 = j0 + t * NR;
            let cols = NR.min(nc - t * NR);
            let (ni, j) = (c0 / spat, c0 % spat);
            if cols == NR && j + NR <= spat {
                // Strip stays inside one sample: straight copies.
                for (r, row) in strip.chunks_exact_mut(NR).enumerate() {
                    let s0 = (ni * o + p0 + r) * spat + j;
                    row.copy_from_slice(&self.grad[s0..s0 + NR]);
                }
            } else {
                for (r, row) in strip.chunks_exact_mut(NR).enumerate() {
                    for (u, dv) in row.iter_mut().enumerate().take(cols) {
                        let col = c0 + u;
                        let (ni, j) = (col / spat, col % spat);
                        *dv = self.grad[(ni * o + p0 + r) * spat + j];
                    }
                }
            }
        }
    }
}

/// Regroups NCHW `grad_output` `[n, o, oh, ow]` into the GEMM-facing
/// `[o, n·oh·ow]` layout (columns sample-major, matching the virtual
/// column matrix of [`ColPacker`]). Writes every element of `rows`.
fn grad_to_rows_into(grad_output: &Tensor, d: &ConvDims, rows: &mut [f32]) {
    let cols = d.n * d.spat;
    let src = grad_output.data();
    for ni in 0..d.n {
        for oi in 0..d.o {
            let s0 = (ni * d.o + oi) * d.spat;
            let r0 = oi * cols + ni * d.spat;
            rows[r0..r0 + d.spat].copy_from_slice(&src[s0..s0 + d.spat]);
        }
    }
}

/// Writes `input` `[n, c, h, w]` into a pre-zeroed padded
/// `[n, c, h+2p, w+2p]` scratch buffer (the slice-borne twin of
/// [`pad2d`], so the conv drivers can stage padding in reused scratch
/// instead of a fresh tensor).
fn pad_into(input: &Tensor, pad: usize, dst: &mut [f32]) {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let src = input.data();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let d0 = ((ni * c + ci) * hp + hi + pad) * wp + pad;
                let s0 = ((ni * c + ci) * h + hi) * w;
                dst[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
            }
        }
    }
}

/// 2-D convolution forward pass.
///
/// `input` is `[n, c, h, w]`, `weight` is `[o, c, kh, kw]`, output is
/// `[n, o, oh, ow]` with `oh = (h + 2p - kh) / s + 1`.
///
/// The batch is lowered through the virtual-im2col [`ColPacker`] into a
/// single `[o, k] × [k, n·oh·ow]` GEMM; results are bit-identical to the
/// per-sample reference ([`crate::reference::conv2d_reference`]).
///
/// # Errors
///
/// Returns an error if the operands are not rank 4, the channel counts
/// disagree, the stride is zero, or the kernel exceeds the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d input")?;
    check_rank4(weight, "conv2d weight")?;
    let (o, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc != input.shape()[1] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![o, input.shape()[1], kh, kw],
            actual: weight.shape().to_vec(),
        });
    }
    let d = ConvDims::resolve(input.shape(), o, (kh, kw), stride, padding)?;
    let cols = d.n * d.spat;
    let mut out = Tensor::zeros(&[d.n, d.o, d.oh, d.ow]);
    let run = |padded: &[f32], out: &mut Tensor| {
        // [o, k] x [k, n*oh*ow] -> [o, n*oh*ow], columns packed on the
        // fly; the product is fully overwritten, so plain scratch is
        // fine.
        with_scratch(d.o * cols, |prod| {
            gemm_with_b(
                d.o,
                cols,
                d.k,
                weight.data(),
                Trans::N,
                &ColPacker {
                    padded,
                    d: &d,
                    stride,
                },
                prod,
            );
            // Regroup [o, n*oh*ow] -> NCHW [n, o, oh, ow].
            let dst = out.data_mut();
            for ni in 0..d.n {
                for oi in 0..d.o {
                    let s0 = oi * cols + ni * d.spat;
                    let d0 = (ni * d.o + oi) * d.spat;
                    dst[d0..d0 + d.spat].copy_from_slice(&prod[s0..s0 + d.spat]);
                }
            }
        });
    };
    if padding == 0 {
        run(input.data(), &mut out);
    } else {
        with_zeroed_scratch(d.n * d.c * d.hp * d.wp, |padded| {
            pad_into(input, padding, padded);
            run(padded, &mut out);
        });
    }
    Ok(out)
}

/// Gradient of a convolution with respect to its weights.
///
/// `grad_output` is `[n, o, oh, ow]`; returns `[o, c, kh, kw]`.
///
/// One `[o, n·oh·ow] × [k, n·oh·ow]ᵀ` GEMM over the whole-batch column
/// matrix. Each weight gradient is reduced over the flat `n·oh·ow` axis
/// in one fixed order (thread-count invariant), which differs from the
/// pre-kernel per-sample partial sums by rounding only — see
/// [`crate::reference::conv2d_backward_weight_reference`].
///
/// # Errors
///
/// Returns an error under the same conditions as [`conv2d`], or when
/// `grad_output`'s shape is inconsistent with the forward pass.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_output: &Tensor,
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d input")?;
    check_rank4(grad_output, "conv2d grad_output")?;
    let o = grad_output.shape()[1];
    let d = ConvDims::resolve(input.shape(), o, kernel, stride, padding)?;
    if grad_output.shape() != [d.n, d.o, d.oh, d.ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d.n, d.o, d.oh, d.ow],
            actual: grad_output.shape().to_vec(),
        });
    }
    let cols = d.n * d.spat;
    let mut grad_w = vec![0.0f32; d.o * d.k];
    let run = |padded: &[f32], grad_w: &mut [f32]| {
        // [o, n*oh*ow] x [k, n*oh*ow]^T = [o, k], columns packed on the
        // fly from the padded input.
        with_scratch(d.o * cols, |go| {
            grad_to_rows_into(grad_output, &d, go);
            gemm_with_b(
                d.o,
                d.k,
                cols,
                go,
                Trans::N,
                &ColTPacker {
                    padded,
                    d: &d,
                    stride,
                },
                grad_w,
            );
        });
    };
    if padding == 0 {
        run(input.data(), &mut grad_w);
    } else {
        with_zeroed_scratch(d.n * d.c * d.hp * d.wp, |padded| {
            pad_into(input, padding, padded);
            run(padded, &mut grad_w);
        });
    }
    Tensor::from_vec(grad_w, &[d.o, d.c, d.kh, d.kw])
}

/// Fused per-sample backward-input kernel for a chunk of samples.
///
/// For each sample and each input channel `ci`, combines just that
/// channel's `kh·kw` column-gradient rows (`acc[t] = Σ_p w[p, ci·kh·kw+t]
/// · grad[p]`, a few KB — L1-resident) and immediately scatters them with
/// [`col2im_sample`] as a single-channel block, so not even a per-sample
/// `[k, oh·ow]` column block is materialized, let alone the whole-batch
/// `[k, n·oh·ow]` gradient.
///
/// Each column element accumulates over `p = 0..o` in increasing order
/// starting from `0.0`, one separate multiply and add per step, and the
/// scatter still visits `(ci, ki, kj)` in increasing order — bit-identical
/// to the per-sample reference at any thread count (threads split
/// samples, never a reduction).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn bwd_input_samples_body(
    w: &[f32],
    grad: &[f32],
    d: &ConvDims,
    h: usize,
    width: usize,
    stride: usize,
    pad: usize,
    ni0: usize,
    out_chunk: &mut [f32],
) {
    let spat = d.spat;
    let khw = d.kh * d.kw;
    let sample_in = d.c * h * width;
    let chan = h * width;
    let mut acc = vec![0.0f32; khw * spat];
    for (s, out_s) in out_chunk.chunks_exact_mut(sample_in).enumerate() {
        let ni = ni0 + s;
        let gs = &grad[ni * d.o * spat..][..d.o * spat];
        for ci in 0..d.c {
            for t in 0..khw {
                let i = ci * khw + t;
                let dst = &mut acc[t * spat..][..spat];
                // Block 4 output channels per sweep so the accumulator
                // row is loaded/stored once per block instead of once
                // per channel; the first sweep starts each element at
                // the literal `0.0`, so no fill pass is needed. Per
                // element the adds still happen in increasing `p`
                // order, one separate multiply and add each — the same
                // value sequence as a plain `p` loop over a zeroed row.
                let mut p = 0;
                while p + 4 <= d.o {
                    let a0 = w[p * d.k + i];
                    let a1 = w[(p + 1) * d.k + i];
                    let a2 = w[(p + 2) * d.k + i];
                    let a3 = w[(p + 3) * d.k + i];
                    let s0 = &gs[p * spat..][..spat];
                    let s1 = &gs[(p + 1) * spat..][..spat];
                    let s2 = &gs[(p + 2) * spat..][..spat];
                    let s3 = &gs[(p + 3) * spat..][..spat];
                    let first = p == 0;
                    for (j, dv) in dst.iter_mut().enumerate() {
                        let mut v = if first { 0.0 } else { *dv };
                        v += a0 * s0[j];
                        v += a1 * s1[j];
                        v += a2 * s2[j];
                        v += a3 * s3[j];
                        *dv = v;
                    }
                    p += 4;
                }
                if p == 0 {
                    dst.fill(0.0);
                }
                while p < d.o {
                    let a_ip = w[p * d.k + i];
                    let src = &gs[p * spat..][..spat];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += a_ip * sv;
                    }
                    p += 1;
                }
            }
            col2im_sample(
                &acc,
                &mut out_s[ci * chan..][..chan],
                1,
                h,
                width,
                d.kh,
                d.kw,
                stride,
                pad,
                d.oh,
                d.ow,
                spat,
                0,
            );
        }
    }
}

/// Argument bundle + dispatch for [`bwd_input_samples_body`].
type BwdInputFn = fn(&[f32], &[f32], &ConvDims, usize, usize, usize, usize, usize, &mut [f32]);

#[allow(clippy::too_many_arguments)]
fn bwd_input_samples_generic(
    w: &[f32],
    grad: &[f32],
    d: &ConvDims,
    h: usize,
    width: usize,
    stride: usize,
    pad: usize,
    ni0: usize,
    out_chunk: &mut [f32],
) {
    bwd_input_samples_body(w, grad, d, h, width, stride, pad, ni0, out_chunk);
}

/// AVX2 instantiation — wider madd lanes, still one separate multiply
/// and add per step (Rust never contracts to FMA), so the values are
/// bit-identical to [`bwd_input_samples_generic`].
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
fn bwd_input_samples_avx2(
    w: &[f32],
    grad: &[f32],
    d: &ConvDims,
    h: usize,
    width: usize,
    stride: usize,
    pad: usize,
    ni0: usize,
    out_chunk: &mut [f32],
) {
    bwd_input_samples_body(w, grad, d, h, width, stride, pad, ni0, out_chunk);
}

/// AVX-512VL instantiation — same body again, with EVEX embedded
/// broadcasts and the larger register file available. Lanewise separate
/// multiply and add as ever, so bits are unchanged.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512vl")]
fn bwd_input_samples_avx512(
    w: &[f32],
    grad: &[f32],
    d: &ConvDims,
    h: usize,
    width: usize,
    stride: usize,
    pad: usize,
    ni0: usize,
    out_chunk: &mut [f32],
) {
    bwd_input_samples_body(w, grad, d, h, width, stride, pad, ni0, out_chunk);
}

fn select_bwd_input() -> BwdInputFn {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: reached only after runtime AVX-512F+VL detection.
            return |w, grad, d, h, width, stride, pad, ni0, out| unsafe {
                bwd_input_samples_avx512(w, grad, d, h, width, stride, pad, ni0, out)
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: `bwd_input_samples_avx2` only requires AVX2,
            // which the detection above just confirmed.
            return |w, grad, d, h, width, stride, pad, ni0, out| unsafe {
                bwd_input_samples_avx2(w, grad, d, h, width, stride, pad, ni0, out)
            };
        }
    }
    bwd_input_samples_generic
}

/// Gradient of a convolution with respect to its input.
///
/// Each sample's `[o, k]ᵀ × [o, oh·ow]` column gradient is combined in
/// cache and scattered back with [`col2im_sample`] in one fused pass;
/// bit-identical to the per-sample reference.
///
/// # Errors
///
/// Returns an error under the same conditions as [`conv2d`], or when
/// `grad_output`'s shape is inconsistent with the forward pass.
pub fn conv2d_backward_input(
    weight: &Tensor,
    grad_output: &Tensor,
    input_shape: &[usize],
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(weight, "conv2d weight")?;
    check_rank4(grad_output, "conv2d grad_output")?;
    if input_shape.len() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("input_shape must be rank 4, got {input_shape:?}"),
        });
    }
    let (o, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let d = ConvDims::resolve(input_shape, o, (kh, kw), stride, padding)?;
    if grad_output.shape() != [d.n, d.o, d.oh, d.ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d.n, d.o, d.oh, d.ow],
            actual: grad_output.shape().to_vec(),
        });
    }
    let (h, w) = (input_shape[2], input_shape[3]);
    let sample_in = d.c * h * w;
    let wd = weight.data();
    let go = grad_output.data();
    let mut grad = Tensor::zeros(input_shape);
    // Deep-`o` layers amortize the packed driver's overhead across a
    // long reduction and run ~3x faster through the whole-batch GEMM;
    // shallow-`o` layers are the opposite (packing overhead dominates an
    // 8-deep reduction), so they take the fused per-channel path below.
    // The split depends only on the shape, and both paths accumulate
    // over `p` in increasing order from 0.0 with separate multiply and
    // add — bit-identical either way, at any thread count.
    const GEMM_MIN_O: usize = 16;
    if d.o >= GEMM_MIN_O {
        let cols = d.n * d.spat;
        with_scratch(d.k * cols, |col_grad| {
            gemm_with_b(
                d.k,
                cols,
                d.o,
                wd,
                Trans::T,
                &GradRowsPacker { grad: go, d: &d },
                col_grad,
            );
            for (ni, out_s) in grad.data_mut().chunks_exact_mut(sample_in).enumerate() {
                col2im_sample(
                    col_grad,
                    out_s,
                    d.c,
                    h,
                    w,
                    d.kh,
                    d.kw,
                    stride,
                    padding,
                    d.oh,
                    d.ow,
                    cols,
                    ni * d.spat,
                );
            }
        });
        return Ok(grad);
    }
    let kernel = select_bwd_input();
    let run = |ni0: usize, out_chunk: &mut [f32]| {
        kernel(wd, go, &d, h, w, stride, padding, ni0, out_chunk)
    };
    let threads = bprom_par::thread_count();
    let flops = 2usize
        .saturating_mul(d.k)
        .saturating_mul(d.o)
        .saturating_mul(d.n * d.spat);
    if threads <= 1 || flops < crate::kernels::PAR_MIN_FLOPS || bprom_par::in_parallel_worker() {
        run(0, grad.data_mut());
    } else {
        // Split the batch: samples are independent, so partitioning
        // cannot change any value.
        let chunks = threads.min(d.n);
        let per = d.n.div_ceil(chunks);
        let tasks = d.n.div_ceil(per);
        let blocks = bprom_par::par_map_indexed(tasks, |t| {
            let ni0 = t * per;
            let nb = per.min(d.n - ni0);
            let mut buf = vec![0.0f32; nb * sample_in];
            run(ni0, &mut buf);
            buf
        });
        for (t, buf) in blocks.iter().enumerate() {
            let ni0 = t * per;
            grad.data_mut()[ni0 * sample_in..ni0 * sample_in + buf.len()].copy_from_slice(buf);
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_naive;
    use crate::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::new(1);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1), (2, 0)] {
            let input = Tensor::randn(&[2, 3, 8, 8], &mut rng);
            let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
            let fast = conv2d(&input, &weight, stride, pad).unwrap();
            let slow = conv2d_naive(&input, &weight, stride, pad);
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn pad_unpad_round_trip() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let p = pad2d(&t, 2).unwrap();
        assert_eq!(p.shape(), &[1, 2, 9, 9]);
        let u = unpad2d(&p, 2).unwrap();
        assert_close(&u, &t, 1e-7);
        // Padding with zero is the identity.
        assert_eq!(pad2d(&t, 0).unwrap(), t);
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = Rng::new(3);
        let input = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let mut weight = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let stride = 1;
        let pad = 1;
        // Loss = sum of outputs; dL/dy = ones.
        let out = conv2d(&input, &weight, stride, pad).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gw = conv2d_backward_weight(&input, &grad_out, (3, 3), stride, pad).unwrap();
        let eps = 1e-2;
        for &flat in &[0usize, 7, 17, 35] {
            let orig = weight.data()[flat];
            weight.data_mut()[flat] = orig + eps;
            let lp = conv2d(&input, &weight, stride, pad).unwrap().sum();
            weight.data_mut()[flat] = orig - eps;
            let lm = conv2d(&input, &weight, stride, pad).unwrap().sum();
            weight.data_mut()[flat] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gw.data()[flat];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "flat={flat}: numeric={numeric}, analytic={analytic}"
            );
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = Rng::new(4);
        let mut input = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let weight = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let stride = 1;
        let pad = 1;
        let out = conv2d(&input, &weight, stride, pad).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gi = conv2d_backward_input(&weight, &grad_out, &[1, 2, 5, 5], stride, pad).unwrap();
        let eps = 1e-2;
        for &flat in &[0usize, 12, 24, 49] {
            let orig = input.data()[flat];
            input.data_mut()[flat] = orig + eps;
            let lp = conv2d(&input, &weight, stride, pad).unwrap().sum();
            input.data_mut()[flat] = orig - eps;
            let lm = conv2d(&input, &weight, stride, pad).unwrap().sum();
            input.data_mut()[flat] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gi.data()[flat];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "flat={flat}: numeric={numeric}, analytic={analytic}"
            );
        }
    }

    #[test]
    fn stride2_backward_shapes() {
        let mut rng = Rng::new(5);
        let input = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let out = conv2d(&input, &weight, 2, 1).unwrap();
        assert_eq!(out.shape(), &[2, 4, 4, 4]);
        let gw = conv2d_backward_weight(&input, &out, (3, 3), 2, 1).unwrap();
        assert_eq!(gw.shape(), weight.shape());
        let gi = conv2d_backward_input(&weight, &out, &[2, 3, 8, 8], 2, 1).unwrap();
        assert_eq!(gi.shape(), input.shape());
    }

    #[test]
    fn invalid_parameters_are_errors() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(conv2d(&input, &weight, 0, 0).is_err());
        let big_kernel = Tensor::zeros(&[1, 1, 9, 9]);
        assert!(conv2d(&input, &big_kernel, 1, 0).is_err());
        let wrong_ch = Tensor::zeros(&[1, 2, 3, 3]);
        assert!(conv2d(&input, &wrong_ch, 1, 1).is_err());
    }

    /// Development profiler, not a correctness test: reports per-layer,
    /// per-direction timings for the bench layer shapes via its panic
    /// message. Run with
    /// `cargo test --release -p bprom-tensor -- --ignored profile_conv_layers`.
    #[test]
    #[ignore]
    fn profile_conv_layers() {
        use std::time::Instant;
        // (c, o, k, stride, pad, side) — mirrors bench_kernels.
        const LAYERS: [(usize, usize, usize, usize, usize, usize); 6] = [
            (3, 8, 3, 1, 1, 16),
            (8, 8, 3, 1, 1, 16),
            (8, 8, 3, 1, 1, 16),
            (8, 32, 3, 2, 1, 16),
            (32, 32, 3, 1, 1, 8),
            (8, 32, 1, 2, 0, 16),
        ];
        let reps = 100;
        let time = |f: &mut dyn FnMut()| {
            f();
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64 * 1e6
        };
        let mut rng = crate::Rng::new(42);
        let mut report = String::new();
        for (li, &(c, o, k, stride, pad, side)) in LAYERS.iter().enumerate() {
            let input = Tensor::randn(&[32, c, side, side], &mut rng);
            let weight = Tensor::randn(&[o, c, k, k], &mut rng);
            let oh = (side + 2 * pad - k) / stride + 1;
            let grad = Tensor::randn(&[32, o, oh, oh], &mut rng);
            let fwd = time(&mut || {
                std::hint::black_box(conv2d(&input, &weight, stride, pad).unwrap());
            });
            let bwd_w = time(&mut || {
                std::hint::black_box(
                    conv2d_backward_weight(&input, &grad, (k, k), stride, pad).unwrap(),
                );
            });
            let bwd_in = time(&mut || {
                std::hint::black_box(
                    conv2d_backward_input(&weight, &grad, input.shape(), stride, pad).unwrap(),
                );
            });
            report.push_str(&format!(
                "\nL{li} c={c} o={o} k={k} s={stride} side={side}: \
                 fwd={fwd:.0}us bwd_w={bwd_w:.0}us bwd_in={bwd_in:.0}us"
            ));
        }
        panic!("{report}");
    }
}
