//! 2-D convolution primitives (forward and backward) via im2col.
//!
//! Layout conventions: inputs are NCHW `[n, c, h, w]`, weights are OIHW
//! `[out_ch, in_ch, kh, kw]`. All functions take `stride` and symmetric
//! zero `padding`.

use crate::{Tensor, TensorError};

fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidParameter {
            reason: "stride must be positive".to_string(),
        });
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return Err(TensorError::InvalidShape {
            reason: format!("kernel {kernel} larger than padded input {padded}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

fn check_rank4(t: &Tensor, what: &str) -> Result<(), TensorError> {
    if t.rank() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("{what} must be rank 4 (got {:?})", t.shape()),
        });
    }
    Ok(())
}

/// Zero-pads the spatial dimensions of an NCHW tensor by `pad` on each side.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not rank 4.
pub fn pad2d(input: &Tensor, pad: usize) -> Result<Tensor, TensorError> {
    check_rank4(input, "pad2d input")?;
    if pad == 0 {
        return Ok(input.clone());
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, hp, wp]);
    let src = input.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s0 = ((ni * c + ci) * h + hi) * w;
                let d0 = ((ni * c + ci) * hp + hi + pad) * wp + pad;
                dst[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
            }
        }
    }
    Ok(out)
}

/// Inverse of [`pad2d`]: crops `pad` pixels from each spatial side.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not rank 4 or is too
/// small to crop.
pub fn unpad2d(input: &Tensor, pad: usize) -> Result<Tensor, TensorError> {
    check_rank4(input, "unpad2d input")?;
    if pad == 0 {
        return Ok(input.clone());
    }
    let (n, c, hp, wp) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if hp <= 2 * pad || wp <= 2 * pad {
        return Err(TensorError::InvalidShape {
            reason: format!("cannot crop {pad} from spatial dims {hp}x{wp}"),
        });
    }
    let (h, w) = (hp - 2 * pad, wp - 2 * pad);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = input.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s0 = ((ni * c + ci) * hp + hi + pad) * wp + pad;
                let d0 = ((ni * c + ci) * h + hi) * w;
                dst[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
            }
        }
    }
    Ok(out)
}

/// im2col on an already padded single sample `[c, h, w]` → matrix
/// `[c*kh*kw, oh*ow]` stored flat.
#[allow(clippy::too_many_arguments)]
fn im2col_sample(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let mut col = vec![0.0f32; c * kh * kw * oh * ow];
    let ow_total = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * ow_total;
                for oi in 0..oh {
                    let src_row = oi * stride + ki;
                    let src0 = (ci * h + src_row) * w;
                    let dst0 = base + oi * ow;
                    for oj in 0..ow {
                        col[dst0 + oj] = data[src0 + oj * stride + kj];
                    }
                }
            }
        }
    }
    col
}

/// col2im: scatter-add a `[c*kh*kw, oh*ow]` column matrix back into a padded
/// `[c, h, w]` sample buffer.
#[allow(clippy::too_many_arguments)]
fn col2im_sample(
    col: &[f32],
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) {
    let ow_total = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * ow_total;
                for oi in 0..oh {
                    let dst_row = oi * stride + ki;
                    let dst0 = (ci * h + dst_row) * w;
                    let src0 = base + oi * ow;
                    for oj in 0..ow {
                        out[dst0 + oj * stride + kj] += col[src0 + oj];
                    }
                }
            }
        }
    }
}

/// 2-D convolution forward pass.
///
/// `input` is `[n, c, h, w]`, `weight` is `[o, c, kh, kw]`, output is
/// `[n, o, oh, ow]` with `oh = (h + 2p - kh) / s + 1`.
///
/// # Errors
///
/// Returns an error if the operands are not rank 4, the channel counts
/// disagree, the stride is zero, or the kernel exceeds the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d input")?;
    check_rank4(weight, "conv2d weight")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            expected: vec![o, c, kh, kw],
            actual: weight.shape().to_vec(),
        });
    }
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    let padded = pad2d(input, padding)?;
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let wmat = weight.reshape(&[o, k])?;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let sample_in = c * hp * wp;
    let sample_out = o * oh * ow;
    for ni in 0..n {
        let sample = &padded.data()[ni * sample_in..(ni + 1) * sample_in];
        let col = im2col_sample(sample, c, hp, wp, kh, kw, stride, oh, ow);
        let col_t = Tensor::from_vec(col, &[k, oh * ow])?;
        let prod = wmat.matmul(&col_t)?;
        out.data_mut()[ni * sample_out..(ni + 1) * sample_out].copy_from_slice(prod.data());
    }
    Ok(out)
}

/// Gradient of a convolution with respect to its weights.
///
/// `grad_output` is `[n, o, oh, ow]`; returns `[o, c, kh, kw]`.
///
/// # Errors
///
/// Returns an error under the same conditions as [`conv2d`], or when
/// `grad_output`'s shape is inconsistent with the forward pass.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_output: &Tensor,
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d input")?;
    check_rank4(grad_output, "conv2d grad_output")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (kh, kw) = kernel;
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    let o = grad_output.shape()[1];
    if grad_output.shape() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, o, oh, ow],
            actual: grad_output.shape().to_vec(),
        });
    }
    let padded = pad2d(input, padding)?;
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let sample_in = c * hp * wp;
    let sample_out = o * oh * ow;
    let mut grad_w = Tensor::zeros(&[o, k]);
    for ni in 0..n {
        let sample = &padded.data()[ni * sample_in..(ni + 1) * sample_in];
        let col = im2col_sample(sample, c, hp, wp, kh, kw, stride, oh, ow);
        let col_t = Tensor::from_vec(col, &[k, oh * ow])?;
        let go = Tensor::from_vec(
            grad_output.data()[ni * sample_out..(ni + 1) * sample_out].to_vec(),
            &[o, oh * ow],
        )?;
        // [o, oh*ow] x [k, oh*ow]^T = [o, k]
        let contrib = go.matmul_nt(&col_t)?;
        grad_w.add_in_place(&contrib)?;
    }
    grad_w.reshape(&[o, c, kh, kw])
}

/// Gradient of a convolution with respect to its input.
///
/// # Errors
///
/// Returns an error under the same conditions as [`conv2d`], or when
/// `grad_output`'s shape is inconsistent with the forward pass.
pub fn conv2d_backward_input(
    weight: &Tensor,
    grad_output: &Tensor,
    input_shape: &[usize],
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    check_rank4(weight, "conv2d weight")?;
    check_rank4(grad_output, "conv2d grad_output")?;
    if input_shape.len() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("input_shape must be rank 4, got {input_shape:?}"),
        });
    }
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (o, _wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    if grad_output.shape() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, o, oh, ow],
            actual: grad_output.shape().to_vec(),
        });
    }
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let wmat = weight.reshape(&[o, k])?;
    let sample_out = o * oh * ow;
    let mut grad_padded = Tensor::zeros(&[n, c, hp, wp]);
    let sample_in = c * hp * wp;
    for ni in 0..n {
        let go = Tensor::from_vec(
            grad_output.data()[ni * sample_out..(ni + 1) * sample_out].to_vec(),
            &[o, oh * ow],
        )?;
        // [o, k]^T x [o, oh*ow] = [k, oh*ow]
        let col_grad = wmat.matmul_tn(&go)?;
        col2im_sample(
            col_grad.data(),
            &mut grad_padded.data_mut()[ni * sample_in..(ni + 1) * sample_in],
            c,
            hp,
            wp,
            kh,
            kw,
            stride,
            oh,
            ow,
        );
    }
    unpad2d(&grad_padded, padding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// Reference convolution: direct loops, no im2col.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (o, _, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (w + 2 * pad - kw) / stride + 1;
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy = (y * stride + ki) as isize - pad as isize;
                                    let ix = (x * stride + kj) as isize - pad as isize;
                                    if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w
                                    {
                                        acc +=
                                            input.at(&[ni, ci, iy as usize, ix as usize]).unwrap()
                                                * weight.at(&[oi, ci, ki, kj]).unwrap();
                                    }
                                }
                            }
                        }
                        out.set(&[ni, oi, y, x], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::new(1);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1), (2, 0)] {
            let input = Tensor::randn(&[2, 3, 8, 8], &mut rng);
            let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
            let fast = conv2d(&input, &weight, stride, pad).unwrap();
            let slow = conv2d_naive(&input, &weight, stride, pad);
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn pad_unpad_round_trip() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let p = pad2d(&t, 2).unwrap();
        assert_eq!(p.shape(), &[1, 2, 9, 9]);
        let u = unpad2d(&p, 2).unwrap();
        assert_close(&u, &t, 1e-7);
        // Padding with zero is the identity.
        assert_eq!(pad2d(&t, 0).unwrap(), t);
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = Rng::new(3);
        let input = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let mut weight = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let stride = 1;
        let pad = 1;
        // Loss = sum of outputs; dL/dy = ones.
        let out = conv2d(&input, &weight, stride, pad).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gw = conv2d_backward_weight(&input, &grad_out, (3, 3), stride, pad).unwrap();
        let eps = 1e-2;
        for &flat in &[0usize, 7, 17, 35] {
            let orig = weight.data()[flat];
            weight.data_mut()[flat] = orig + eps;
            let lp = conv2d(&input, &weight, stride, pad).unwrap().sum();
            weight.data_mut()[flat] = orig - eps;
            let lm = conv2d(&input, &weight, stride, pad).unwrap().sum();
            weight.data_mut()[flat] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gw.data()[flat];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "flat={flat}: numeric={numeric}, analytic={analytic}"
            );
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = Rng::new(4);
        let mut input = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let weight = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let stride = 1;
        let pad = 1;
        let out = conv2d(&input, &weight, stride, pad).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gi = conv2d_backward_input(&weight, &grad_out, &[1, 2, 5, 5], stride, pad).unwrap();
        let eps = 1e-2;
        for &flat in &[0usize, 12, 24, 49] {
            let orig = input.data()[flat];
            input.data_mut()[flat] = orig + eps;
            let lp = conv2d(&input, &weight, stride, pad).unwrap().sum();
            input.data_mut()[flat] = orig - eps;
            let lm = conv2d(&input, &weight, stride, pad).unwrap().sum();
            input.data_mut()[flat] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gi.data()[flat];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "flat={flat}: numeric={numeric}, analytic={analytic}"
            );
        }
    }

    #[test]
    fn stride2_backward_shapes() {
        let mut rng = Rng::new(5);
        let input = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let weight = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let out = conv2d(&input, &weight, 2, 1).unwrap();
        assert_eq!(out.shape(), &[2, 4, 4, 4]);
        let gw = conv2d_backward_weight(&input, &out, (3, 3), 2, 1).unwrap();
        assert_eq!(gw.shape(), weight.shape());
        let gi = conv2d_backward_input(&weight, &out, &[2, 3, 8, 8], 2, 1).unwrap();
        assert_eq!(gi.shape(), input.shape());
    }

    #[test]
    fn invalid_parameters_are_errors() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(conv2d(&input, &weight, 0, 0).is_err());
        let big_kernel = Tensor::zeros(&[1, 1, 9, 9]);
        assert!(conv2d(&input, &big_kernel, 1, 0).is_err());
        let wrong_ch = Tensor::zeros(&[1, 2, 3, 3]);
        assert!(conv2d(&input, &wrong_ch, 1, 1).is_err());
    }
}
