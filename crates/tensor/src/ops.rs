//! Elementwise arithmetic for [`Tensor`]: fallible named methods plus
//! operator overloads on references for same-shaped operands.

use crate::{Tensor, TensorError};
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_t(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_t(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul_t(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div_t(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * scale` (axpy). The workhorse of optimizers.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy_in_place(&mut self, other: &Tensor, scale: f32) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().to_vec(),
                actual: other.shape().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b * scale;
        }
        Ok(())
    }

    /// In-place elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_in_place(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.axpy_in_place(other, 1.0)
    }

    /// In-place scaling by a scalar.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|x| x * s);
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $t_method:ident) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;

            /// # Panics
            ///
            /// Panics on shape mismatch; use the fallible named method for a
            /// `Result`.
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$t_method(rhs)
                    .expect("tensor shape mismatch in operator")
            }
        }
    };
}

impl_binop!(Add, add, add_t);
impl_binop!(Sub, sub, sub_t);
impl_binop!(Mul, mul, mul_t);
impl_binop!(Div, div, div_t);

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&a - &b).data(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).data(), &[3.0, 8.0]);
        assert_eq!((&b / &a).data(), &[3.0, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add_t(&b).is_err());
        assert!(a.mul_t(&b).is_err());
    }

    #[test]
    fn axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy_in_place(&g, -0.5).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn add_sub_inverse_property() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let b = Tensor::randn(&[4, 4], &mut rng);
        let back = &(&a + &b) - &b;
        for (x, y) in back.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
