//! Retained pre-kernel reference implementations.
//!
//! These are the exact matmul/conv code paths the workspace shipped
//! before the packed-GEMM kernel layer ([`crate::kernels`]) replaced
//! them, kept for two jobs:
//!
//! * **Correctness oracles.** The kernel property sweep
//!   (`tests/kernel_properties.rs`) asserts the packed kernels against
//!   them — bit-exactly where the accumulation order is unchanged
//!   (matmul in all transpose flavours, conv forward, conv
//!   backward-input), within tolerance where the order intentionally
//!   changed (conv backward-weight, which now reduces over one flat
//!   whole-batch axis instead of per-sample partial sums).
//! * **Honest baselines.** `bench_kernels` measures the speedup gate
//!   against these, not against a strawman — they are the real pre-PR
//!   hot path, per-sample im2col allocations included.
//!
//! Nothing in the pipeline calls these; they are `pub` for tests and
//! benches only.

use crate::conv::{out_dim, pad2d, unpad2d};
use crate::{Tensor, TensorError};

/// Pre-kernel `im2col_sample`, verbatim: per-sample, allocating, fully
/// scalar. The live [`crate::conv`] helpers have since grown batched
/// layouts and contiguous fast paths, so the baseline keeps its own copy
/// to stay an honest pre-PR measurement.
#[allow(clippy::too_many_arguments)]
fn im2col_sample_reference(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let mut col = vec![0.0f32; c * kh * kw * oh * ow];
    let ow_total = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * ow_total;
                for oi in 0..oh {
                    let src_row = oi * stride + ki;
                    let src0 = (ci * h + src_row) * w;
                    let dst0 = base + oi * ow;
                    for oj in 0..ow {
                        col[dst0 + oj] = data[src0 + oj * stride + kj];
                    }
                }
            }
        }
    }
    col
}

/// Pre-kernel `col2im_sample`, verbatim: fully scalar scatter-add.
#[allow(clippy::too_many_arguments)]
fn col2im_sample_reference(
    col: &[f32],
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) {
    let ow_total = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * ow_total;
                for oi in 0..oh {
                    let dst_row = oi * stride + ki;
                    let dst0 = (ci * h + dst_row) * w;
                    let src0 = base + oi * ow;
                    for oj in 0..ow {
                        out[dst0 + oj * stride + kj] += col[src0 + oj];
                    }
                }
            }
        }
    }
}

/// Pre-kernel `matmul`: the scalar, unblocked i-k-j loop.
///
/// Accumulates each output element in strictly increasing `k` order —
/// the same contract the packed kernel keeps, so
/// `a.matmul(&b) == matmul_reference(a, b)` holds **bitwise**.
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::InvalidShape {
            reason: "matmul_reference requires rank-2 operands".to_string(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, n],
            actual: vec![k2, n],
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = ad[i * k + p];
            let b_row = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Pre-kernel `conv2d`: pad, then per-sample im2col → small matmul.
///
/// # Errors
///
/// Same conditions as [`crate::conv2d`].
pub fn conv2d_reference(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    let padded = pad2d(input, padding)?;
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let wmat = weight.reshape(&[o, k])?;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let sample_in = c * hp * wp;
    let sample_out = o * oh * ow;
    for ni in 0..n {
        let sample = &padded.data()[ni * sample_in..(ni + 1) * sample_in];
        let col = im2col_sample_reference(sample, c, hp, wp, kh, kw, stride, oh, ow);
        let col_t = Tensor::from_vec(col, &[k, oh * ow])?;
        let prod = matmul_reference(&wmat, &col_t)?;
        out.data_mut()[ni * sample_out..(ni + 1) * sample_out].copy_from_slice(prod.data());
    }
    Ok(out)
}

/// Pre-kernel `conv2d_backward_weight`: per-sample im2col → per-sample
/// `[o, oh·ow] × [k, oh·ow]ᵀ` products, summed sample by sample.
///
/// Note the accumulation order: each sample's contribution is a complete
/// dot over `oh·ow`, and the per-sample partial sums are then added in
/// batch order. The kernel-backed [`crate::conv2d_backward_weight`]
/// instead reduces over one flat `n·oh·ow` axis, so the two agree only
/// to rounding (see `tests/kernel_properties.rs`).
///
/// # Errors
///
/// Same conditions as [`crate::conv2d_backward_weight`].
pub fn conv2d_backward_weight_reference(
    input: &Tensor,
    grad_output: &Tensor,
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (kh, kw) = kernel;
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    let o = grad_output.shape()[1];
    let padded = pad2d(input, padding)?;
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let sample_in = c * hp * wp;
    let sample_out = o * oh * ow;
    let mut grad_w = Tensor::zeros(&[o, k]);
    for ni in 0..n {
        let sample = &padded.data()[ni * sample_in..(ni + 1) * sample_in];
        let col = im2col_sample_reference(sample, c, hp, wp, kh, kw, stride, oh, ow);
        let go = &grad_output.data()[ni * sample_out..(ni + 1) * sample_out];
        // [o, oh*ow] x [k, oh*ow]^T = [o, k], scalar dots.
        let gw = grad_w.data_mut();
        for oi in 0..o {
            let go_row = &go[oi * oh * ow..(oi + 1) * oh * ow];
            for ki in 0..k {
                let col_row = &col[ki * oh * ow..(ki + 1) * oh * ow];
                let mut acc = 0.0f32;
                for (gv, cv) in go_row.iter().zip(col_row) {
                    acc += gv * cv;
                }
                gw[oi * k + ki] += acc;
            }
        }
    }
    grad_w.reshape(&[o, c, kh, kw])
}

/// Pre-kernel `conv2d_backward_input`: per-sample `wᵀ × grad` → col2im.
///
/// Bit-identical to the kernel-backed [`crate::conv2d_backward_input`]:
/// both reduce over the output channels in increasing order.
///
/// # Errors
///
/// Same conditions as [`crate::conv2d_backward_input`].
pub fn conv2d_backward_input_reference(
    weight: &Tensor,
    grad_output: &Tensor,
    input_shape: &[usize],
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (o, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let oh = out_dim(h, kh, stride, padding)?;
    let ow = out_dim(w, kw, stride, padding)?;
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    let k = c * kh * kw;
    let wmat = weight.reshape(&[o, k])?;
    let sample_out = o * oh * ow;
    let mut grad_padded = Tensor::zeros(&[n, c, hp, wp]);
    let sample_in = c * hp * wp;
    for ni in 0..n {
        let go = &grad_output.data()[ni * sample_out..(ni + 1) * sample_out];
        // [o, k]^T x [o, oh*ow] = [k, oh*ow], p-outer loop as shipped.
        let mut col_grad = vec![0.0f32; k * oh * ow];
        let wd = wmat.data();
        for p in 0..o {
            let a_row = &wd[p * k..(p + 1) * k];
            let b_row = &go[p * oh * ow..(p + 1) * oh * ow];
            for (i, &av) in a_row.iter().enumerate() {
                let out_row = &mut col_grad[i * oh * ow..(i + 1) * oh * ow];
                for (ov, &bv) in out_row.iter_mut().zip(b_row) {
                    *ov += av * bv;
                }
            }
        }
        col2im_sample_reference(
            &col_grad,
            &mut grad_padded.data_mut()[ni * sample_in..(ni + 1) * sample_in],
            c,
            hp,
            wp,
            kh,
            kw,
            stride,
            oh,
            ow,
        );
    }
    unpad2d(&grad_padded, padding)
}

/// Direct 7-loop convolution — no im2col, no matmul. The slowest and
/// most obviously-correct oracle, promoted out of `conv.rs`'s test
/// module so the property sweep and benches can share it.
pub fn conv2d_naive(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    for ni in 0..n {
        for oi in 0..o {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for ci in 0..c {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let iy = (y * stride + ki) as isize - pad as isize;
                                let ix = (x * stride + kj) as isize - pad as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    acc += input.at(&[ni, ci, iy as usize, ix as usize]).unwrap()
                                        * weight.at(&[oi, ci, ki, kj]).unwrap();
                                }
                            }
                        }
                    }
                    out.set(&[ni, oi, y, x], acc).unwrap();
                }
            }
        }
    }
    out
}
