/// Deterministic pseudo-random number generator used across the workspace.
///
/// Implementation: xoshiro256++ seeded through SplitMix64, the combination
/// recommended by the xoshiro authors. Fast, high-quality, and — crucially
/// for the reproduction — fully deterministic from a single `u64` seed.
///
/// ```
/// use bprom_tensor::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second value from the Box–Muller transform.
    spare_normal: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each shadow
    /// model or dataset its own stream without correlations.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Snapshots the generator's exact position in its stream (checkpointing).
    /// Does not consume any output.
    pub fn state(&self) -> ([u64; 4], Option<f32>) {
        (self.state, self.spare_normal)
    }

    /// Rebuilds a generator at an exact stream position previously captured
    /// with [`Rng::state`]; the restored generator continues bit-identically.
    pub fn from_state(state: [u64; 4], spare_normal: Option<f32>) -> Self {
        Rng {
            state,
            spare_normal,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly distributed f32 mantissa.
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below requires n > 0");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the small n used in this workspace.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free: shuffle of
    /// an index vector, fine at workspace scale).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Picks one element of a slice uniformly at random.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut a = Rng::new(99);
        // Advance past a normal() so the Box–Muller spare is populated.
        let _ = a.normal();
        let (state, spare) = a.state();
        let mut b = Rng::from_state(state, spare);
        for _ in 0..50 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng::new(9);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| rng.uniform()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(11);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(3);
        let idx = rng.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::new(17);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f32 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }
}
