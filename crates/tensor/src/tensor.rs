use crate::{dims_product, Rng, Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the universal data currency of the workspace: images are
/// `[C, H, W]` or batched `[N, C, H, W]`, weight matrices are `[out, in]`,
/// confidence vectors are `[classes]`.
///
/// ```
/// use bprom_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.at(&[1, 0])?, 3.0);
/// # Ok::<(), bprom_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat element vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if `data.len()` does not
    /// equal the shape product, and [`TensorError::InvalidShape`] for shapes
    /// with zero dimensions.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            dims: dims.to_vec(),
            data,
        })
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            dims: dims.to_vec(),
            data: vec![0.0; dims_product(dims)],
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            dims: dims.to_vec(),
            data: vec![value; dims_product(dims)],
        }
    }

    /// Tensor of i.i.d. standard-normal samples.
    pub fn randn(dims: &[usize], rng: &mut Rng) -> Self {
        let n = dims_product(dims);
        let data = (0..n).map(|_| rng.normal()).collect();
        Tensor {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n = dims_product(dims);
        let data = (0..n).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Shape dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat element buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat element buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat element buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        let shape = Shape::new_unchecked(&self.dims);
        Ok(self.data[shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let shape = Shape::new_unchecked(&self.dims);
        let off = shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same elements and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the new shape has a
    /// different element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        if dims_product(dims) != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: dims_product(dims),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            dims: dims.to_vec(),
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no data copy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::reshape`].
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        if dims_product(dims) != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: dims_product(dims),
                actual: self.data.len(),
            });
        }
        self.dims = dims.to_vec();
        Ok(())
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            dims: self.dims.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims.clone(),
                actual: other.dims.clone(),
            });
        }
        Ok(Tensor {
            dims: self.dims.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Zero-length tensors cannot be constructed, so
    /// this is always well-defined.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for impossible
    /// empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// Extracts row `i` of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not rank 2 and
    /// [`TensorError::IndexOutOfBounds`] if `i` exceeds the row count.
    pub fn row(&self, i: usize) -> Result<Tensor, TensorError> {
        if self.dims.len() != 2 {
            return Err(TensorError::InvalidShape {
                reason: format!("row() requires rank 2, got {:?}", self.dims),
            });
        }
        let (rows, cols) = (self.dims[0], self.dims[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims.clone(),
            });
        }
        Ok(Tensor {
            dims: vec![cols],
            data: self.data[i * cols..(i + 1) * cols].to_vec(),
        })
    }

    /// Extracts sample `n` of a batched `[N, ...]` tensor as a `[...]`
    /// tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for rank-0 tensors and
    /// [`TensorError::IndexOutOfBounds`] if `n` exceeds the batch size.
    pub fn sample(&self, n: usize) -> Result<Tensor, TensorError> {
        if self.dims.is_empty() {
            return Err(TensorError::InvalidShape {
                reason: "sample() requires rank >= 1".to_string(),
            });
        }
        if n >= self.dims[0] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![n],
                shape: self.dims.clone(),
            });
        }
        let inner: usize = self.dims[1..].iter().product();
        Ok(Tensor {
            dims: self.dims[1..].to_vec(),
            data: self.data[n * inner..(n + 1) * inner].to_vec(),
        })
    }

    /// Stacks same-shaped tensors along a new leading batch axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] on an empty input and
    /// [`TensorError::ShapeMismatch`] if any tensor's shape differs from the
    /// first.
    pub fn stack(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = tensors.first().ok_or_else(|| TensorError::InvalidShape {
            reason: "stack() requires at least one tensor".to_string(),
        })?;
        let mut data = Vec::with_capacity(first.len() * tensors.len());
        for t in tensors {
            if t.dims != first.dims {
                return Err(TensorError::ShapeMismatch {
                    expected: first.dims.clone(),
                    actual: t.dims.clone(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = Vec::with_capacity(first.dims.len() + 1);
        dims.push(tensors.len());
        dims.extend_from_slice(&first.dims);
        Ok(Tensor { dims, data })
    }

    /// Concatenates rank-1 tensors into one long rank-1 tensor.
    pub fn concat_flat(tensors: &[Tensor]) -> Tensor {
        let mut data = Vec::new();
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        let n = data.len();
        Tensor {
            dims: vec![n],
            data,
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.dims.len() != 2 {
            return Err(TensorError::InvalidShape {
                reason: format!("transpose() requires rank 2, got {:?}", self.dims),
            });
        }
        let (r, c) = (self.dims[0], self.dims[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            dims: vec![c, r],
            data: out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_count() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ElementCountMismatch { .. })
        ));
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.mean() - 0.625).abs() < 1e-6);
        assert!((t.norm_sq() - 14.25).abs() < 1e-5);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.row(1).unwrap();
        assert_eq!(r.data(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn sample_extraction() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]).unwrap();
        let s = t.sample(1).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data()[0], 6.0);
        assert!(t.sample(2).is_err());
    }

    #[test]
    fn stack_round_trips_with_sample() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.sample(0).unwrap(), a);
        assert_eq!(s.sample(1).unwrap(), b);
    }

    #[test]
    fn stack_rejects_mismatched() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[3, 5], &mut rng);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn clamp() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
        t.clamp_in_place(0.0, 1.0);
        assert_eq!(t.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn concat_flat_lengths() {
        let a = Tensor::ones(&[3]);
        let b = Tensor::zeros(&[2]);
        let c = Tensor::concat_flat(&[a, b]);
        assert_eq!(c.shape(), &[5]);
        assert_eq!(c.sum(), 3.0);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
