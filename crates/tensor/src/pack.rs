//! Panel packing for the blocked GEMM driver in [`crate::kernels`].
//!
//! The microkernel wants both operands in a layout where each step of the
//! k-loop reads one contiguous `MR`-wide sliver of A and one contiguous
//! `NR`-wide sliver of B. Packing copies a `[mc × kc]` block of the
//! (possibly transposed) operand into that layout once per cache block,
//! so the O(m·n·k) inner loop never strides through the original matrix.
//!
//! Edge strips are zero-padded to the full `MR`/`NR` width. Padded lanes
//! multiply real data by `0.0` and accumulate into lanes that are never
//! stored back, so they cannot perturb valid outputs (the accumulators
//! start at `0.0`, and `0.0 · x` contributions stay in the dead lanes).

use crate::kernels::NR;

/// Storage orientation of a GEMM operand relative to its *operational*
/// shape. The driver works on `A_op: [m, k]` and `B_op: [k, n]`;
/// `Trans` says how those are laid out in the backing slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Trans {
    /// Stored exactly as its operational shape, row-major.
    N,
    /// Stored transposed: `A_op[i][p]` lives at `a[p * m + i]`
    /// (respectively `B_op[p][j]` at `b[j * k + p]`).
    T,
}

/// Packs the `[mc × kc]` block of `A_op` starting at row `i0`, depth `p0`
/// into `mr`-row strips: strip `s`, depth `p`, row `r` lands at
/// `buf[(s * kc + p) * mr + r]`. Rows past `m` are zero-filled.
///
/// `m` and `k` are the operational dimensions of the whole matrix; `mr`
/// is the strip width the selected microkernel consumes
/// ([`crate::kernels::MR`] or [`crate::kernels::MR_WIDE`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a(
    a: &[f32],
    trans: Trans,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    mr: usize,
    buf: &mut Vec<f32>,
) {
    let strips = mc.div_ceil(mr);
    buf.clear();
    buf.resize(strips * kc * mr, 0.0);
    for s in 0..strips {
        let strip_rows = mr.min(mc - s * mr);
        let row0 = i0 + s * mr;
        let dst_base = s * kc * mr;
        match trans {
            Trans::N => {
                // A_op[i][p] = a[i * k + p]: copy row slivers, transposing
                // into the p-major strip.
                for r in 0..strip_rows {
                    let src = &a[(row0 + r) * k + p0..(row0 + r) * k + p0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        buf[dst_base + p * mr + r] = v;
                    }
                }
            }
            Trans::T => {
                // A_op[i][p] = a[p * m + i]: each depth step is contiguous
                // in the source, so copy sliver-by-sliver.
                for p in 0..kc {
                    let src = &a[(p0 + p) * m + row0..(p0 + p) * m + row0 + strip_rows];
                    buf[dst_base + p * mr..dst_base + p * mr + strip_rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs the `[kc × nc]` block of `B_op` starting at depth `p0`, column
/// `j0` into `NR`-column strips: strip `t`, depth `p`, column `c` lands
/// at `buf[(t * kc + p) * NR + c]`. Columns past `n` are zero-filled.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b(
    b: &[f32],
    trans: Trans,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    buf: &mut Vec<f32>,
) {
    let strips = nc.div_ceil(NR);
    buf.clear();
    buf.resize(strips * kc * NR, 0.0);
    for t in 0..strips {
        let strip_cols = NR.min(nc - t * NR);
        let col0 = j0 + t * NR;
        let dst_base = t * kc * NR;
        match trans {
            Trans::N => {
                // B_op[p][j] = b[p * n + j]: depth steps are contiguous.
                for p in 0..kc {
                    let src = &b[(p0 + p) * n + col0..(p0 + p) * n + col0 + strip_cols];
                    buf[dst_base + p * NR..dst_base + p * NR + strip_cols].copy_from_slice(src);
                }
            }
            Trans::T => {
                // B_op[p][j] = b[j * k + p]: source rows are the columns.
                for c in 0..strip_cols {
                    let src = &b[(col0 + c) * k + p0..(col0 + c) * k + p0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        buf[dst_base + p * NR + c] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{MR, MR_WIDE};

    /// 5×7 matrix with distinguishable entries.
    fn sample(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|i| i as f32 + 1.0).collect()
    }

    #[test]
    fn pack_a_n_round_trips() {
        for mr in [MR, MR_WIDE] {
            let (m, k) = (5, 7);
            let a = sample(m, k);
            let mut buf = Vec::new();
            pack_a(&a, Trans::N, m, k, 0, m, 0, k, mr, &mut buf);
            for i in 0..m {
                for p in 0..k {
                    let (s, r) = (i / mr, i % mr);
                    assert_eq!(buf[(s * k + p) * mr + r], a[i * k + p], "mr={mr} ({i},{p})");
                }
            }
            // Padded rows of the last strip are zero.
            let last = m.div_ceil(mr) - 1;
            for p in 0..k {
                for r in (m - last * mr)..mr {
                    assert_eq!(buf[(last * k + p) * mr + r], 0.0, "mr={mr}");
                }
            }
        }
    }

    #[test]
    fn pack_a_t_matches_pack_a_n_of_transpose() {
        let (m, k) = (6, 5);
        // at stores A_op transposed: at[p * m + i] = A_op[i][p].
        let a: Vec<f32> = sample(m, k);
        let mut at = vec![0.0; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        for mr in [MR, MR_WIDE] {
            let (mut b1, mut b2) = (Vec::new(), Vec::new());
            pack_a(&a, Trans::N, m, k, 2, 3, 1, 4, mr, &mut b1);
            pack_a(&at, Trans::T, m, k, 2, 3, 1, 4, mr, &mut b2);
            assert_eq!(b1, b2, "mr={mr}");
        }
    }

    #[test]
    fn pack_b_t_matches_pack_b_n_of_transpose() {
        let (k, n) = (5, 11);
        let b: Vec<f32> = sample(k, n);
        let mut bt = vec![0.0; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        pack_b(&b, Trans::N, k, n, 1, 3, 2, 9, &mut b1);
        pack_b(&bt, Trans::T, k, n, 1, 3, 2, 9, &mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn pack_b_pads_edge_strip_with_zeros() {
        let (k, n) = (3, NR + 2);
        let b = sample(k, n);
        let mut buf = Vec::new();
        pack_b(&b, Trans::N, k, n, 0, k, 0, n, &mut buf);
        for p in 0..k {
            for c in 0..NR {
                let expect = if c < 2 { b[p * n + NR + c] } else { 0.0 };
                assert_eq!(buf[(k + p) * NR + c], expect, "({p},{c})");
            }
        }
    }
}
