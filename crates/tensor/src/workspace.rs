//! Thread-local reusable scratch buffers for the conv/GEMM drivers.
//!
//! The kernel-backed conv directions need multi-megabyte intermediates
//! (the `[o, n·oh·ow]` product, the `[c·kh·kw, n·oh·ow]` column
//! gradient, padded input copies). Allocations that size bypass malloc
//! free lists and go straight to `mmap`, so a fresh `Vec` per call
//! re-pays soft page faults on every conv — a real cost next to
//! microkernels that finish in microseconds. The pool below hands out
//! grow-only buffers that stay warm across calls on the same thread.
//!
//! Buffers are plain `Vec<f32>` kept initialized at all times, so there
//! is no `unsafe` and no uninitialized memory — only *stale* values
//! from a previous borrow (see [`with_scratch`]).

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

fn with_pooled<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    let r = f(&mut buf);
    POOL.with(|p| p.borrow_mut().push(buf));
    r
}

/// Runs `f` with a pooled `Vec<f32>` of unspecified length and contents
/// — for callers that manage sizing themselves (the GEMM pack buffers,
/// which `clear` + `resize` per panel). The vector's capacity survives
/// across borrows, so per-call panel packing stops re-faulting pages.
pub(crate) fn with_pooled_vec<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    with_pooled(f)
}

/// Runs `f` with a `len`-element scratch slice whose **contents are
/// unspecified** (stale data from earlier borrows). The caller must
/// fully overwrite every element it reads — GEMM output buffers qualify,
/// since the driver stores every `C` element exactly once.
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_pooled(|buf| {
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Like [`with_scratch`], but the slice starts zero-filled — for
/// scatter targets and padded copies whose ring must read as `0.0`.
pub(crate) fn with_zeroed_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_pooled(|buf| {
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let s = &mut buf[..len];
        s.fill(0.0);
        f(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reuses_and_zeroed_clears() {
        with_scratch(8, |s| s.fill(7.0));
        // Same thread: the pooled buffer comes back with stale contents.
        with_scratch(4, |s| assert_eq!(s, [7.0; 4]));
        with_zeroed_scratch(8, |s| assert_eq!(s, [0.0; 8]));
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        with_scratch(4, |a| {
            a.fill(1.0);
            with_scratch(4, |b| {
                b.fill(2.0);
                assert_eq!(b, [2.0; 4]);
            });
            assert_eq!(a, [1.0; 4]);
        });
    }
}
