//! Packed, cache-blocked GEMM driver — the single compute kernel behind
//! [`Tensor::matmul`](crate::Tensor::matmul), `matmul_tn`, `matmul_nt`,
//! and the batched-im2col convolutions in [`crate::conv`].
//!
//! # Architecture
//!
//! The driver follows the classic three-level blocking scheme: panels of
//! `B` (`KC × NC`) and blocks of `A` (`MC × KC`) are packed into
//! contiguous strip buffers ([`crate::pack`]), and a register-tiled
//! `MR × NR` microkernel walks the packed panels. The microkernel keeps
//! its `MR × NR` accumulator tile in locals and reads one `MR`-sliver of
//! A and one `NR`-sliver of B per k-step — a layout the autovectorizer
//! reliably turns into SIMD fma/mul-add chains, with no bounds checks in
//! the hot loop (fixed-size array windows). Transposed operands are
//! absorbed by the packing step, so all four `N`/`T` combinations share
//! this one driver and microkernel.
//!
//! # Determinism contract
//!
//! Every output element is accumulated in **one fixed order**: strictly
//! increasing `k`, one `mul`+`add` per step, starting from `0.0`
//! (k-panels beyond the first resume from the stored partial sum, which
//! round-trips `f32` exactly). That is bit-identical to the pre-kernel
//! scalar i-k-j loop — retained as
//! [`reference::matmul_reference`](crate::reference::matmul_reference) —
//! and independent of blocking parameters. There is **no split-k**: a
//! thread computes the full reduction for every element it owns, so
//! results are byte-identical at any `BPROM_THREADS`.
//!
//! # Threading
//!
//! Large products are sliced along the bigger C dimension (`NR`/`MR`
//! aligned chunks) over [`bprom_par::par_map_indexed`]. Slicing changes
//! which thread computes an element, never its value. Products stay
//! sequential when they are small ([`PAR_MIN_FLOPS`]) or when the caller
//! is already a `bprom-par` worker (shadow training, CMA-ES candidate
//! eval), where the outer parallel section owns the cores.

use crate::pack::{pack_a, pack_b, Trans};

/// Microkernel tile height (rows of C per register tile) for the
/// baseline-ISA instantiation.
pub(crate) const MR: usize = 4;
/// Tile height for the AVX2 and AVX-512VL instantiations (8 ymm
/// accumulators; a taller 16-row tile was tried for AVX-512 and spilled).
/// Also the alignment of threaded row slices, so every slice boundary is
/// a strip boundary for whichever width the CPU selects.
pub(crate) const MR_WIDE: usize = 8;
/// Microkernel tile width (columns of C per register tile). 8 `f32`
/// lanes vectorize cleanly at every x86-64/aarch64 SIMD width.
pub(crate) const NR: usize = 8;
/// k-panel depth: one packed `KC × NR` B-strip (8 KiB) plus a
/// `MR × KC` A-strip (4 KiB) sit comfortably in L1.
const KC: usize = 256;
/// Rows of A packed per block (multiple of `MR`).
const MC: usize = 64;
/// Columns of B packed per panel (multiple of `NR`).
const NC: usize = 512;
/// Minimum `2·m·n·k` FLOP count before the driver fans out over the
/// worker pool; below this the pool dispatch costs more than it saves.
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 21;

/// Computes one `TMR × NR` register tile: loads the partial sums for the
/// `rows × cols` valid region (zeros on the first k-panel), accumulates
/// `kc` steps from the packed strips, and stores the valid region back.
///
/// Dead lanes (beyond `rows`/`cols`) accumulate zero-padded products and
/// are never stored, so edge tiles take the same branch-free hot loop.
///
/// `TMR` is the A-strip row width the panels were packed with — the
/// instantiations below fix it to match their register budget.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_body<const TMR: usize>(
    astrip: &[f32],
    bstrip: &[f32],
    kc: usize,
    out: &mut [f32],
    o0: usize,
    ld: usize,
    rows: usize,
    cols: usize,
    first_panel: bool,
) {
    let mut acc = [[0.0f32; NR]; TMR];
    if !first_panel {
        for (r, acc_row) in acc.iter_mut().take(rows).enumerate() {
            let row = &out[o0 + r * ld..o0 + r * ld + cols];
            acc_row[..cols].copy_from_slice(row);
        }
    }
    for p in 0..kc {
        let av: &[f32; TMR] = astrip[p * TMR..][..TMR].try_into().expect("TMR sliver");
        let bv: &[f32; NR] = bstrip[p * NR..][..NR].try_into().expect("NR sliver");
        for (acc_row, &ar) in acc.iter_mut().zip(av) {
            for (a, &bc) in acc_row.iter_mut().zip(bv) {
                *a += ar * bc;
            }
        }
    }
    for (r, acc_row) in acc.iter().take(rows).enumerate() {
        let row = &mut out[o0 + r * ld..o0 + r * ld + cols];
        row.copy_from_slice(&acc_row[..cols]);
    }
}

/// Baseline-ISA instantiation (SSE2 on x86-64, NEON on aarch64 —
/// whatever the default target features allow): `4 × 8` tiles, two
/// 128-bit accumulators per row.
#[allow(clippy::too_many_arguments)]
fn microkernel_generic(
    astrip: &[f32],
    bstrip: &[f32],
    kc: usize,
    out: &mut [f32],
    o0: usize,
    ld: usize,
    rows: usize,
    cols: usize,
    first_panel: bool,
) {
    microkernel_body::<MR>(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel);
}

/// AVX2 instantiation: the **same** safe body, recompiled with 256-bit
/// vectors enabled and a taller `8 × 8` tile — one `NR = 8` accumulator
/// row per ymm register (8 of 16), and each B sliver load now feeds 8
/// rows instead of 4. `avx2` alone (no `fma`) keeps every product a
/// separate `mul` + `add` with IEEE round-to-nearest at each step —
/// bit-identical to [`microkernel_generic`] and to the scalar
/// reference, just wider.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn microkernel_avx2(
    astrip: &[f32],
    bstrip: &[f32],
    kc: usize,
    out: &mut [f32],
    o0: usize,
    ld: usize,
    rows: usize,
    cols: usize,
    first_panel: bool,
) {
    microkernel_body::<MR_WIDE>(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel);
}

/// AVX-512VL instantiation: same body and the same `8 × 8` tile as
/// [`microkernel_avx2`], but compiled with EVEX encodings available —
/// the A broadcast folds into the multiply as an embedded-broadcast
/// memory operand and the compiler has 32 vector registers to schedule
/// with. Still plain lanewise `mul` + `add` (no FMA), so the bit
/// pattern is unchanged; only the instruction count per k-step drops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
#[allow(clippy::too_many_arguments)]
fn microkernel_avx512(
    astrip: &[f32],
    bstrip: &[f32],
    kc: usize,
    out: &mut [f32],
    o0: usize,
    ld: usize,
    rows: usize,
    cols: usize,
    first_panel: bool,
) {
    microkernel_body::<MR_WIDE>(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel);
}

type MicroFn = fn(&[f32], &[f32], usize, &mut [f32], usize, usize, usize, usize, bool);

/// Picks the widest microkernel instantiation the running CPU supports
/// and the A-strip row width (`mr`) it wants its panels packed with.
/// Detection is cached by `std`, and every instantiation computes the
/// identical bit pattern, so the choice affects speed only.
fn select_microkernel() -> (MicroFn, usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            let micro: MicroFn = |astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel| {
                // SAFETY: reached only after runtime AVX-512F+VL detection.
                unsafe {
                    microkernel_avx512(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel)
                }
            };
            return (micro, MR_WIDE);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            let micro: MicroFn = |astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel| {
                // SAFETY: reached only after runtime AVX2 detection succeeded.
                unsafe {
                    microkernel_avx2(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel)
                }
            };
            return (micro, MR_WIDE);
        }
    }
    (microkernel_generic, MR)
}

/// Sequential packed GEMM over one block of C: writes
/// `C[i_off.., j_off..][..mb, ..nb] = A_op × B_op` into `out`, a row-major
/// `[mb × ld]` buffer (`ld >= nb`). The B operand is abstract: `bpacker`
/// fills the strip buffer for a requested `[p0..p0+kc, j0..j0+nc]` block
/// in [`pack_b`] layout (conv passes an implicit-im2col packer so the
/// column matrix is never materialized).
#[allow(clippy::too_many_arguments)]
fn gemm_block<P: BPacker>(
    a: &[f32],
    ta: Trans,
    bpacker: &P,
    m: usize,
    k: usize,
    i_off: usize,
    mb: usize,
    j_off: usize,
    nb: usize,
    out: &mut [f32],
    ld: usize,
) {
    let (micro, mr) = select_microkernel();
    crate::workspace::with_pooled_vec(|apack| {
        crate::workspace::with_pooled_vec(|bpack| {
            gemm_block_inner(
                a, ta, bpacker, m, k, i_off, mb, j_off, nb, out, ld, micro, mr, apack, bpack,
            );
        });
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_block_inner<P: BPacker>(
    a: &[f32],
    ta: Trans,
    bpacker: &P,
    m: usize,
    k: usize,
    i_off: usize,
    mb: usize,
    j_off: usize,
    nb: usize,
    out: &mut [f32],
    ld: usize,
    micro: MicroFn,
    mr: usize,
    apack: &mut Vec<f32>,
    bpack: &mut Vec<f32>,
) {
    // A reduction only slightly deeper than `KC` would split into one
    // full panel plus a sliver, paying a whole extra C round-trip for a
    // few k-steps; stretch the panel instead (strip buffers stay well
    // within L1). Panel boundaries don't change values — the k order is
    // fixed either way.
    let kc_step = if k <= KC + KC / 2 { k } else { KC };
    let mut jc = 0;
    while jc < nb {
        let nc = NC.min(nb - jc);
        let mut pc = 0;
        while pc < k {
            let kc = kc_step.min(k - pc);
            bpacker.pack(pc, kc, j_off + jc, nc, bpack);
            let first_panel = pc == 0;
            let mut ic = 0;
            while ic < mb {
                let mc = MC.min(mb - ic);
                pack_a(a, ta, m, k, i_off + ic, mc, pc, kc, mr, apack);
                for t in 0..nc.div_ceil(NR) {
                    let cols = NR.min(nc - t * NR);
                    let bstrip = &bpack[t * kc * NR..(t + 1) * kc * NR];
                    for s in 0..mc.div_ceil(mr) {
                        let rows = mr.min(mc - s * mr);
                        let astrip = &apack[s * kc * mr..(s + 1) * kc * mr];
                        let o0 = (ic + s * mr) * ld + jc + t * NR;
                        micro(astrip, bstrip, kc, out, o0, ld, rows, cols, first_panel);
                    }
                }
                ic += MC;
            }
            pc += kc_step;
        }
        jc += NC;
    }
}

/// Abstract B operand: fills the strip buffer for the
/// `[p0..p0+kc, j0..j0+nc]` block of `B_op` in [`pack_b`] layout (strip
/// `t`, depth `p`, column `c` at `buf[(t·kc + p)·NR + c]`, edge columns
/// zero-filled). Implementations must be pure functions of the block
/// coordinates so threaded slicing packs identical bits.
pub(crate) trait BPacker: Sync {
    fn pack(&self, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>);
}

/// A plain row-major (or transposed) slice as the B operand.
struct SliceB<'s> {
    b: &'s [f32],
    tb: Trans,
    k: usize,
    n: usize,
}

impl BPacker for SliceB<'_> {
    fn pack(&self, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
        pack_b(self.b, self.tb, self.k, self.n, p0, kc, j0, nc, buf);
    }
}

/// `C[m×n] = A_op[m×k] × B_op[k×n]` (row-major C, overwritten).
///
/// `ta`/`tb` describe how the operands are stored relative to their
/// operational shapes — see [`Trans`]. This is the one entry point every
/// rank-2 product in the workspace funnels through.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: &mut [f32],
) {
    gemm_with_b(m, n, k, a, ta, &SliceB { b, tb, k, n }, c);
}

/// [`gemm`] with an abstract B operand — the conv lowerings pass packers
/// that synthesize im2col columns (or gradient rows) on the fly, so the
/// big `[k, n·oh·ow]` matrices are never materialized.
pub(crate) fn gemm_with_b<P: BPacker>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    bpacker: &P,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n, "C buffer must be m*n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let threads = bprom_par::thread_count();
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if threads <= 1 || flops < PAR_MIN_FLOPS || bprom_par::in_parallel_worker() {
        gemm_block(a, ta, bpacker, m, k, 0, m, 0, n, c, n);
        return;
    }
    if n >= m {
        // Column slices: each task computes C[:, j0..j0+nb] with the full
        // k reduction, so values are partition- (and thread-count-)
        // independent.
        let chunks = threads.min(n.div_ceil(NR));
        let per = n.div_ceil(chunks).div_ceil(NR) * NR;
        let tasks = n.div_ceil(per);
        let blocks = bprom_par::par_map_indexed(tasks, |t| {
            let j0 = t * per;
            let nb = per.min(n - j0);
            let mut buf = vec![0.0f32; m * nb];
            gemm_block(a, ta, bpacker, m, k, 0, m, j0, nb, &mut buf, nb);
            buf
        });
        for (t, buf) in blocks.iter().enumerate() {
            let j0 = t * per;
            let nb = per.min(n - j0);
            for i in 0..m {
                c[i * n + j0..i * n + j0 + nb].copy_from_slice(&buf[i * nb..(i + 1) * nb]);
            }
        }
    } else {
        // Row slices: contiguous in C, stitched with one copy per task.
        // Aligned to the widest strip so slice boundaries stay strip
        // boundaries under either microkernel.
        let chunks = threads.min(m.div_ceil(MR_WIDE));
        let per = m.div_ceil(chunks).div_ceil(MR_WIDE) * MR_WIDE;
        let tasks = m.div_ceil(per);
        let blocks = bprom_par::par_map_indexed(tasks, |t| {
            let i0 = t * per;
            let mb = per.min(m - i0);
            let mut buf = vec![0.0f32; mb * n];
            gemm_block(a, ta, bpacker, m, k, i0, mb, 0, n, &mut buf, n);
            buf
        });
        for (t, buf) in blocks.iter().enumerate() {
            let i0 = t * per;
            c[i0 * n..i0 * n + buf.len()].copy_from_slice(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, Tensor};

    fn randn(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    /// Scalar model of the contract: sequential k, one mul+add per step.
    fn model(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matches_scalar_model_bitwise_over_awkward_shapes() {
        let mut rng = Rng::new(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC - 1, 2, NC - 1),
            (17, 31, 13),
            (MC + MR + 1, KC + 3, NC + NR + 2),
        ] {
            let a = randn(m * k, &mut rng);
            let b = randn(k * n, &mut rng);
            let mut c = vec![f32::NAN; m * n];
            gemm(m, n, k, &a, Trans::N, &b, Trans::N, &mut c);
            assert_eq!(c, model(m, n, k, &a, &b), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn transposed_operands_match_untransposed() {
        let mut rng = Rng::new(8);
        let (m, k, n) = (9, 11, 19);
        let a = Tensor::from_vec(randn(m * k, &mut rng), &[m, k]).unwrap();
        let b = Tensor::from_vec(randn(k * n, &mut rng), &[k, n]).unwrap();
        let at = a.transpose().unwrap();
        let bt = b.transpose().unwrap();
        let mut base = vec![0.0f32; m * n];
        gemm(m, n, k, a.data(), Trans::N, b.data(), Trans::N, &mut base);
        for (ad, ta, bd, tb) in [
            (at.data(), Trans::T, b.data(), Trans::N),
            (a.data(), Trans::N, bt.data(), Trans::T),
            (at.data(), Trans::T, bt.data(), Trans::T),
        ] {
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, ad, ta, bd, tb, &mut c);
            assert_eq!(c, base, "{ta:?} {tb:?}");
        }
    }

    #[test]
    fn threaded_slicing_is_bit_stable() {
        // Big enough to clear PAR_MIN_FLOPS in both slicing directions.
        let mut rng = Rng::new(9);
        for (m, n) in [(33, 1200), (1200, 33)] {
            let k = 65;
            let a = randn(m * k, &mut rng);
            let b = randn(k * n, &mut rng);
            let mut base = vec![0.0f32; m * n];
            bprom_par::set_thread_count(1);
            gemm(m, n, k, &a, Trans::N, &b, Trans::N, &mut base);
            for threads in [2, 3, 4, 7] {
                bprom_par::set_thread_count(threads);
                let mut c = vec![f32::NAN; m * n];
                gemm(m, n, k, &a, Trans::N, &b, Trans::N, &mut c);
                assert_eq!(c, base, "threads={threads} m={m} n={n}");
            }
            bprom_par::set_thread_count(0);
        }
    }
}
