//! Dense `f32` tensor substrate for the BPROM reproduction.
//!
//! This crate provides the numerical foundation every other crate in the
//! workspace builds on: a contiguous row-major [`Tensor`], elementwise and
//! reduction operations, matrix multiplication, 2-D convolution/pooling
//! primitives (forward *and* backward, so the neural-network crate can do
//! manual backpropagation), and a deterministic PRNG ([`Rng`]).
//!
//! # Design
//!
//! * Tensors are always contiguous and row-major; no strides or views. The
//!   workloads here (tiny CNNs on 16×16 images) never need them, and the
//!   simplicity pays off in testability.
//! * Every rank-2 product (`matmul`/`matmul_tn`/`matmul_nt`) and both
//!   convolution directions run on one packed, cache-blocked GEMM driver
//!   ([`kernels`] + [`pack`], threaded over `bprom-par`), with the
//!   pre-kernel scalar implementations retained in [`reference`] as
//!   correctness oracles and benchmark baselines. The driver's fixed
//!   k-accumulation order keeps results byte-identical at any
//!   `BPROM_THREADS`.
//! * Every fallible operation returns [`Result`]; shape mismatches are
//!   errors, not panics.
//! * All randomness flows through [`Rng`], a SplitMix64-seeded xoshiro256++
//!   generator, so every experiment in the workspace is reproducible from a
//!   single `u64` seed.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), bprom_tensor::TensorError> {
//! use bprom_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::new(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 4]);
//! # Ok(())
//! # }
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod conv;
mod error;
mod kernels;
mod matmul;
mod ops;
mod pack;
mod pool;
pub mod reference;
mod rng;
mod shape;
mod tensor;
mod workspace;

pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, pad2d, unpad2d};
pub use error::TensorError;
pub use pool::{avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward};
pub use rng::Rng;
pub use shape::{dims_product, Shape};
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
