//! The composite system under audit in the backbone scenario: a frozen
//! (possibly backdoored) backbone behind the query boundary, fronted by
//! a visual prompt and a label map trained downstream on clean data.
//!
//! The composite is itself a [`BlackBoxModel`], so `Bprom::inspect`, the
//! fleet audit engine, every oracle regime, and every hostile decorator
//! stack run on it unchanged — the detector cannot tell (and must not be
//! told) whether it is probing a monolithic classifier or a prompted
//! backbone.

use bprom_ckpt::{Decoder, Encoder};
use bprom_tensor::Tensor;
use bprom_vp::{BlackBoxModel, LabelMap, OracleStats, QueryOracle, Result, VisualPrompt, VpError};

/// A frozen backbone adapted with a visual prompt + label map, sealed as
/// one query-only system.
///
/// An `[n, c, t, t]` downstream query is padded into the backbone's
/// `[n, c, s, s]` canvas by the prompt, answered by the backbone, and the
/// backbone's confidence vector is translated through the label map into
/// the downstream class space. Exactly `n` backbone images are submitted
/// per `n`-image downstream query, so the composite's query accounting is
/// structurally identical to a monolithic model's.
pub struct PromptedBackbone {
    backbone: QueryOracle,
    prompt: VisualPrompt,
    map: LabelMap,
    /// Whether the map is the identity on its full class range; identity
    /// maps return the backbone's softmax rows bitwise-unchanged instead
    /// of a gather + renormalize that would perturb the low-order bits.
    identity: bool,
}

impl std::fmt::Debug for PromptedBackbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptedBackbone")
            .field("backbone", &self.backbone)
            .field("target_classes", &self.map.target_classes())
            .field("identity_map", &self.identity)
            .finish()
    }
}

impl PromptedBackbone {
    /// Composes a sealed backbone with its downstream adaptation.
    ///
    /// # Errors
    ///
    /// Rejects a label map whose source-class range disagrees with the
    /// backbone's confidence-vector length.
    pub fn new(backbone: QueryOracle, prompt: VisualPrompt, map: LabelMap) -> Result<Self> {
        if map.source_classes() != backbone.num_classes() {
            return Err(VpError::InvalidConfig {
                reason: format!(
                    "label map covers {} source classes but the backbone answers {}",
                    map.source_classes(),
                    backbone.num_classes()
                ),
            });
        }
        let identity = map.target_classes() == map.source_classes()
            && (0..map.target_classes()).all(|t| map.source_class(t) == Some(t));
        Ok(PromptedBackbone {
            backbone,
            prompt,
            map,
            identity,
        })
    }

    /// The downstream-facing prompt (for invariance checks in tests).
    pub fn prompt(&self) -> &VisualPrompt {
        &self.prompt
    }

    /// The downstream label map.
    pub fn map(&self) -> &LabelMap {
        &self.map
    }

    /// Unseals the composite, returning its parts. Intended for the
    /// owner (e.g. a property test reclaiming the backbone to compare
    /// weights); a detector holding only `&dyn BlackBoxModel` cannot
    /// call this.
    pub fn into_parts(self) -> (QueryOracle, VisualPrompt, LabelMap) {
        (self.backbone, self.prompt, self.map)
    }

    /// Translates backbone confidences `[n, k_s]` into downstream
    /// confidences `[n, k_t]`: gather the mapped source class per target
    /// class, then renormalize each row to a probability vector.
    fn translate(&self, probs: &Tensor) -> Result<Tensor> {
        if self.identity {
            return Ok(probs.clone());
        }
        let n = probs.shape()[0];
        let k_s = probs.shape()[1];
        let k_t = self.map.target_classes();
        let mut out = vec![0.0f32; n * k_t];
        for i in 0..n {
            let row = &probs.data()[i * k_s..(i + 1) * k_s];
            let mut mass = 0.0f32;
            for t in 0..k_t {
                let s = self.map.map_label(t)?;
                out[i * k_t + t] = row[s];
                mass += row[s];
            }
            // Deterministic guard: an all-zero gathered row (possible
            // under aggressively quantized regimes) renormalizes to a
            // finite uniform-ish vector instead of NaN.
            let mass = mass.max(1e-9);
            for t in 0..k_t {
                out[i * k_t + t] /= mass;
            }
        }
        Tensor::from_vec(out, &[n, k_t]).map_err(|e| VpError::InvalidConfig {
            reason: format!("translate: {e}"),
        })
    }
}

impl BlackBoxModel for PromptedBackbone {
    fn query(&self, batch: &Tensor) -> Result<Tensor> {
        if batch.rank() != 4 {
            return Err(VpError::InvalidConfig {
                reason: format!("query expects [n, c, h, w], got {:?}", batch.shape()),
            });
        }
        let prompted = self.prompt.apply_batch(batch)?;
        let probs = self.backbone.query(&prompted)?;
        self.translate(&probs)
    }

    fn num_classes(&self) -> usize {
        self.map.target_classes()
    }

    fn queries_used(&self) -> u64 {
        // apply_batch preserves the batch dimension, so the backbone's
        // image count *is* the composite's: n downstream images per query
        // submit exactly n backbone images.
        self.backbone.queries_used()
    }

    fn oracle_stats(&self) -> OracleStats {
        self.backbone.oracle_stats()
    }

    fn export_cache(&self, enc: &mut Encoder) -> bool {
        self.backbone.export_cache(enc)
    }

    fn import_cache(&self, dec: &mut Decoder<'_>) -> Result<()> {
        self.backbone.import_cache(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_tensor::Rng;

    fn backbone(rng: &mut Rng) -> QueryOracle {
        let model = mlp(&ModelSpec::new(3, 16, 10), rng).unwrap();
        QueryOracle::new(model, 10)
    }

    #[test]
    fn composite_answers_downstream_queries_and_counts_exactly() {
        let mut rng = Rng::new(0);
        let oracle = backbone(&mut rng);
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let system = PromptedBackbone::new(oracle, prompt, map).unwrap();
        // Downstream images are smaller than the backbone canvas; the
        // prompt pads them up.
        let batch = Tensor::rand_uniform(&[5, 3, 12, 12], 0.0, 1.0, &mut rng);
        let probs = system.query(&batch).unwrap();
        assert_eq!(probs.shape(), &[5, 10]);
        for i in 0..5 {
            let sum: f32 = probs.data()[i * 10..(i + 1) * 10].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} not a distribution");
        }
        assert_eq!(system.queries_used(), 5, "n downstream = n backbone images");
        system.query(&batch).unwrap();
        assert_eq!(system.queries_used(), 10);
    }

    #[test]
    fn identity_map_is_a_bitwise_passthrough() {
        let mut rng = Rng::new(1);
        let oracle = backbone(&mut rng);
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        let prompted = prompt
            .apply_batch(&Tensor::rand_uniform(&[3, 3, 12, 12], 0.0, 1.0, &mut rng))
            .unwrap();
        let direct = oracle.query(&prompted).unwrap();

        let mut rng2 = Rng::new(1);
        let oracle2 = backbone(&mut rng2);
        let prompt2 = VisualPrompt::random(3, 16, 2, &mut rng2).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let system = PromptedBackbone::new(oracle2, prompt2, map).unwrap();
        let batch = Tensor::rand_uniform(&[3, 3, 12, 12], 0.0, 1.0, &mut rng2);
        let via_composite = system.query(&batch).unwrap();
        assert_eq!(
            direct.data(),
            via_composite.data(),
            "identity map must not perturb the backbone's softmax bits"
        );
    }

    #[test]
    fn narrowing_map_gathers_and_renormalizes() {
        let mut rng = Rng::new(2);
        let oracle = backbone(&mut rng);
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        // 4 downstream classes onto backbone classes 0..4.
        let map = LabelMap::identity(4, 10).unwrap();
        let system = PromptedBackbone::new(oracle, prompt, map).unwrap();
        let batch = Tensor::rand_uniform(&[2, 3, 12, 12], 0.0, 1.0, &mut rng);
        let probs = system.query(&batch).unwrap();
        assert_eq!(probs.shape(), &[2, 4]);
        assert_eq!(system.num_classes(), 4);
        for i in 0..2 {
            let sum: f32 = probs.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} not renormalized");
        }
    }

    #[test]
    fn rejects_rank_mismatch_and_class_mismatch() {
        let mut rng = Rng::new(3);
        let oracle = backbone(&mut rng);
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        let bad_map = LabelMap::identity(4, 7).unwrap();
        assert!(
            PromptedBackbone::new(oracle, prompt, bad_map).is_err(),
            "7-source map over a 10-class backbone must be rejected"
        );
        let mut rng = Rng::new(3);
        let oracle = backbone(&mut rng);
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let system = PromptedBackbone::new(oracle, prompt, map).unwrap();
        assert!(system.query(&Tensor::zeros(&[3, 12, 12])).is_err());
    }
}
