//! Workload scenarios beyond the classic downstream-poisoning setting.
//!
//! The paper's core evaluation audits monolithic classifiers whose own
//! training data may have been poisoned (`Scenario::Downstream`). This
//! crate adds the **backbone scenario** (the BadBone threat model): a
//! pretrained backbone is poisoned *upstream*, then frozen and adapted to
//! a downstream task with a visual prompt + label map trained on
//! attested-clean data. The backdoor survives adaptation — the trigger
//! still reaches the backbone through the prompt's inner window — while
//! every downstream artifact is innocent.
//!
//! The composite system ([`PromptedBackbone`]) is itself a
//! `BlackBoxModel`, so the whole detection stack (BPROM inspection, query
//! caches, fault/retry decorators, oracle regimes, the fleet audit
//! engine) runs on it unchanged. Evaluation routes through
//! `bprom::evaluate_oracle_zoo` under `Scenario::Backbone`, which stamps
//! the clean-downstream-training attestation into every audit record so
//! prompted-accuracy collapse raises rule `B013` ("backbone-implanted
//! backdoor suspected") instead of implicating the tuning data.

mod backbone;
mod composite;

pub use backbone::{
    build_backbone_zoo, composite_fingerprint, evaluate_backbone_zoo, evaluate_backbone_zoo_via,
    BackboneScenarioConfig, BackboneSystem,
};
pub use composite::PromptedBackbone;
