//! Backbone-scenario zoo construction and evaluation: the BadBone threat
//! model where the *backbone* is poisoned upstream and every downstream
//! artifact (visual prompt, label map) is trained on attested-clean data.
//!
//! Mirrors `bprom::build_suspicious_zoo`, but the unit of audit is a
//! [`PromptedBackbone`] composite instead of a monolithic classifier:
//!
//! 1. Train a backbone on the source dataset, poisoned with the
//!    configured attack for the backdoored half of the zoo.
//! 2. Freeze it (seal it behind [`QueryOracle`]; prompt training uses
//!    the frozen-model path that never touches weights or norm stats).
//! 3. Adapt it downstream with a visual prompt + identity label map
//!    trained on *clean* downstream data only.
//!
//! The resulting composites flow through `evaluate_oracle_zoo` under
//! [`Scenario::Backbone`], so every audit record carries the
//! clean-downstream-training attestation and prompted-accuracy collapse
//! raises rule `B013` ("backbone-implanted backdoor suspected").

use crate::PromptedBackbone;
use bprom::{
    evaluate_oracle_zoo, evaluate_oracle_zoo_ckpt, Bprom, BpromError, DetectionReport, Result,
    Scenario, Verdict, ZooEntry,
};
use bprom_attacks::{attack_success_rate, poison_dataset, AttackKind, PoisonConfig};
use bprom_data::SynthDataset;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Sequential, TrainConfig, Trainer};
use bprom_qcache::CachingOracle;
use bprom_tensor::Rng;
use bprom_vp::{
    prompted_accuracy, train_prompt_backprop, LabelMap, PromptStyle, PromptTrainConfig,
    QueryOracle, VisualPrompt,
};

/// Configuration for building a backbone-scenario zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneScenarioConfig {
    /// Dataset the backbones pretrain on (where the poison enters).
    pub source_dataset: SynthDataset,
    /// Clean dataset the downstream prompt + label map adapt to.
    pub downstream_dataset: SynthDataset,
    /// Backbone input side length (the prompt's full canvas).
    pub backbone_size: usize,
    /// Downstream image side length (resized into the prompt's inner
    /// window).
    pub downstream_size: usize,
    /// Backbone training samples per class.
    pub samples_per_class: usize,
    /// Downstream adaptation samples per class.
    pub downstream_samples_per_class: usize,
    /// Backbone architecture.
    pub architecture: Architecture,
    /// Attack planted in the backdoored backbones.
    pub attack: AttackKind,
    /// Poisoning parameters; `None` uses the attack's defaults with a
    /// random target class per backbone.
    pub poison: Option<PoisonConfig>,
    /// Number of clean-backbone composites.
    pub clean: usize,
    /// Number of backdoored-backbone composites.
    pub backdoored: usize,
    /// Backbone training hyperparameters.
    pub train: TrainConfig,
    /// Downstream prompt-training hyperparameters (the backprop path;
    /// CMA-ES fields are ignored here).
    pub prompt: PromptTrainConfig,
    /// Prompt border width on the backbone canvas.
    pub prompt_border: usize,
    /// Prompt composition style.
    pub prompt_style: PromptStyle,
}

impl BackboneScenarioConfig {
    /// Creates a backbone-scenario configuration with sensible defaults.
    pub fn new(source: SynthDataset, downstream: SynthDataset, attack: AttackKind) -> Self {
        BackboneScenarioConfig {
            source_dataset: source,
            downstream_dataset: downstream,
            backbone_size: source.default_size(),
            downstream_size: downstream.default_size(),
            samples_per_class: 20,
            downstream_samples_per_class: 20,
            architecture: Architecture::ResNetMini,
            attack,
            poison: None,
            clean: 6,
            backdoored: 6,
            train: TrainConfig::default(),
            prompt: PromptTrainConfig::default(),
            prompt_border: 2,
            prompt_style: PromptStyle::Pad,
        }
    }
}

/// One composite system with its ground truth and quality metrics.
#[derive(Debug)]
pub struct BackboneSystem {
    /// The sealed composite (frozen backbone + prompt + label map).
    pub system: PromptedBackbone,
    /// Ground truth: was the *backbone* poisoned?
    pub backdoored: bool,
    /// Stable fingerprint over backbone weights, prompt parameters, and
    /// the label-map assignment (audit identity; see
    /// [`composite_fingerprint`]).
    pub fingerprint: String,
    /// Backbone clean test accuracy on the source dataset.
    pub backbone_accuracy: f32,
    /// Backbone attack success rate (0 for clean backbones).
    pub backbone_asr: f32,
    /// Prompted accuracy of the composite on the held-out downstream
    /// split after adaptation.
    pub downstream_accuracy: f32,
}

/// Stable 16-hex-digit fingerprint of a composite system: FNV-1a over the
/// backbone's parameters and buffers (same absorb order as
/// `bprom::model_fingerprint`), then the prompt's trainable border
/// parameters, then the label-map assignment. Two composites sharing a
/// backbone but differing in downstream adaptation get distinct audit
/// identities.
pub fn composite_fingerprint(model: &Sequential, prompt: &VisualPrompt, map: &LabelMap) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u32| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for tensor in model.export_params() {
        for &v in tensor.data() {
            absorb(v.to_bits());
        }
    }
    for buffer in model.export_buffers() {
        for &v in &buffer {
            absorb(v.to_bits());
        }
    }
    for v in prompt.to_flat() {
        absorb(v.to_bits());
    }
    for t in 0..map.target_classes() {
        absorb(map.source_class(t).unwrap_or(usize::MAX) as u32);
    }
    format!("m{hash:016x}")
}

/// Builds the backbone-scenario zoo: `clean` clean-backbone + `backdoored`
/// poisoned-backbone composites, each adapted downstream on clean data.
///
/// Each backbone gets a fresh dataset seed and a fresh trigger instance;
/// each adaptation gets a fresh downstream dataset seed and prompt
/// initialization — all drawn sequentially from the caller's stream, so
/// the whole zoo is bit-reproducible from one seed.
///
/// # Errors
///
/// Propagates training/poisoning/adaptation failures and rejects empty
/// zoos and downstream class counts exceeding the backbone's.
pub fn build_backbone_zoo(
    config: &BackboneScenarioConfig,
    rng: &mut Rng,
) -> Result<Vec<BackboneSystem>> {
    if config.clean + config.backdoored == 0 {
        return Err(BpromError::InvalidConfig {
            reason: "backbone zoo must contain at least one system".to_string(),
        });
    }
    let k_s = config.source_dataset.num_classes();
    let k_t = config.downstream_dataset.num_classes();
    if k_t > k_s {
        return Err(BpromError::InvalidConfig {
            reason: format!(
                "downstream dataset has {k_t} classes but the backbone answers only {k_s}"
            ),
        });
    }
    let spec = ModelSpec::new(3, config.backbone_size, k_s);
    let trainer = Trainer::new(config.train);
    let mut zoo = Vec::with_capacity(config.clean + config.backdoored);
    for i in 0..config.clean + config.backdoored {
        let is_backdoored = i >= config.clean;

        // Stage 1: pretrain the backbone on the source dataset, poisoned
        // for the backdoored half (the only place the attack touches).
        let full = config.source_dataset.generate(
            config.samples_per_class,
            config.backbone_size,
            rng.next_u64(),
        )?;
        let (train, test) = full.split(0.8, rng)?;
        let mut model = build(config.architecture, &spec, rng)?;
        let (backbone_accuracy, backbone_asr);
        if is_backdoored {
            let attack = config.attack.build(config.backbone_size, rng)?;
            let poison_cfg = config
                .poison
                .unwrap_or_else(|| config.attack.default_config(rng.below(k_s)));
            let poisoned = poison_dataset(&train, attack.as_ref(), &poison_cfg, rng)?;
            trainer.fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )?;
            backbone_accuracy = trainer.evaluate(&mut model, &test.images, &test.labels)?;
            backbone_asr =
                attack_success_rate(&mut model, attack.as_ref(), &test, &poison_cfg, rng)?;
        } else {
            trainer.fit(&mut model, &train.images, &train.labels, rng)?;
            backbone_accuracy = trainer.evaluate(&mut model, &test.images, &test.labels)?;
            backbone_asr = 0.0;
        }

        // Stage 2: freeze the backbone and adapt downstream on *clean*
        // data. `train_prompt_backprop` runs the model in frozen mode —
        // weights and norm statistics never change — which is exactly
        // the attestation `Scenario::Backbone` records.
        let downstream = config.downstream_dataset.generate(
            config.downstream_samples_per_class,
            config.downstream_size,
            rng.next_u64(),
        )?;
        let (d_train, d_test) = downstream.split(0.7, rng)?;
        let map = LabelMap::identity(k_t, k_s)?;
        let mut prompt = VisualPrompt::random(3, config.backbone_size, config.prompt_border, rng)?
            .with_style(config.prompt_style);
        train_prompt_backprop(
            &mut model,
            &mut prompt,
            &d_train.images,
            &d_train.labels,
            &map,
            &config.prompt,
            rng,
        )?;
        let downstream_accuracy =
            prompted_accuracy(&mut model, &prompt, &d_test.images, &d_test.labels, &map)?;

        // The fingerprint must be taken before the backbone seals behind
        // the query boundary.
        let fingerprint = composite_fingerprint(&model, &prompt, &map);
        let system = PromptedBackbone::new(QueryOracle::new(model, k_s), prompt, map)?;
        zoo.push(BackboneSystem {
            system,
            backdoored: is_backdoored,
            fingerprint,
            backbone_accuracy,
            backbone_asr,
            downstream_accuracy,
        });
    }
    Ok(zoo)
}

fn entries(zoo: Vec<BackboneSystem>) -> Vec<ZooEntry<PromptedBackbone>> {
    zoo.into_iter()
        .map(|s| ZooEntry {
            fingerprint: s.fingerprint,
            backdoored: s.backdoored,
            oracle: s.system,
        })
        .collect()
}

/// Inspects every composite in the backbone zoo under
/// [`Scenario::Backbone`] and computes AUROC / F1 (see
/// [`evaluate_oracle_zoo`]).
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain
/// both clean and backdoored composites.
pub fn evaluate_backbone_zoo(
    detector: &Bprom,
    zoo: Vec<BackboneSystem>,
    rng: &mut Rng,
) -> Result<DetectionReport> {
    evaluate_oracle_zoo(detector, Scenario::Backbone, entries(zoo), rng)
}

/// Variant of [`evaluate_backbone_zoo`] that delegates each inspection to
/// a caller-supplied closure, for stacking hostile decorators (fault
/// injection, retries) on the sealed cached composite — the backbone
/// analogue of `bprom::evaluate_detector_via`.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain
/// both clean and backdoored composites.
pub fn evaluate_backbone_zoo_via<F>(
    detector: &Bprom,
    zoo: Vec<BackboneSystem>,
    rng: &mut Rng,
    mut inspect: F,
) -> Result<DetectionReport>
where
    F: FnMut(&Bprom, CachingOracle<PromptedBackbone>, &mut Rng) -> Result<Verdict>,
{
    evaluate_oracle_zoo_ckpt(
        detector,
        Scenario::Backbone,
        entries(zoo),
        rng,
        None,
        |detector, oracle, rng, _, _| inspect(detector, oracle, rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_vp::BlackBoxModel;

    fn tiny_config() -> BackboneScenarioConfig {
        let mut cfg = BackboneScenarioConfig::new(
            SynthDataset::Cifar10,
            SynthDataset::Stl10,
            AttackKind::BadNets,
        );
        cfg.clean = 1;
        cfg.backdoored = 1;
        cfg.samples_per_class = 30;
        cfg.downstream_samples_per_class = 10;
        cfg.prompt = PromptTrainConfig {
            epochs: 2,
            ..PromptTrainConfig::default()
        };
        cfg
    }

    #[test]
    fn zoo_has_requested_composition_and_quality() {
        let mut rng = Rng::new(0);
        let zoo = build_backbone_zoo(&tiny_config(), &mut rng).unwrap();
        assert_eq!(zoo.len(), 2);
        assert_eq!(zoo.iter().filter(|s| s.backdoored).count(), 1);
        for s in &zoo {
            assert!(
                s.backbone_accuracy > 0.5,
                "backbone too weak: {:?}",
                s.backbone_accuracy
            );
            if !s.backdoored {
                assert_eq!(s.backbone_asr, 0.0);
            }
            assert_eq!(s.fingerprint.len(), 17);
            assert!(s.fingerprint.starts_with('m'));
            // Composites answer downstream-shaped queries.
            assert_eq!(s.system.num_classes(), 10);
        }
        let fps: Vec<&str> = zoo.iter().map(|s| s.fingerprint.as_str()).collect();
        assert_ne!(fps[0], fps[1], "distinct systems, distinct identities");
    }

    #[test]
    fn zoo_is_bit_reproducible_from_the_seed() {
        let cfg = tiny_config();
        let a = build_backbone_zoo(&cfg, &mut Rng::new(7)).unwrap();
        let b = build_backbone_zoo(&cfg, &mut Rng::new(7)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.backbone_accuracy, y.backbone_accuracy);
            assert_eq!(x.downstream_accuracy, y.downstream_accuracy);
        }
    }

    #[test]
    fn empty_zoo_rejected() {
        let mut cfg = tiny_config();
        cfg.clean = 0;
        cfg.backdoored = 0;
        assert!(build_backbone_zoo(&cfg, &mut Rng::new(1)).is_err());
    }

    #[test]
    fn composite_fingerprint_sees_every_component() {
        let mut rng = Rng::new(3);
        let spec = ModelSpec::new(3, 16, 10);
        let model = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        let prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let base = composite_fingerprint(&model, &prompt, &map);
        assert_eq!(base, composite_fingerprint(&model, &prompt, &map));
        let other_prompt = VisualPrompt::random(3, 16, 2, &mut rng).unwrap();
        assert_ne!(
            base,
            composite_fingerprint(&model, &other_prompt, &map),
            "prompt parameters are part of the identity"
        );
        let narrower = LabelMap::identity(4, 10).unwrap();
        assert_ne!(
            base,
            composite_fingerprint(&model, &prompt, &narrower),
            "label-map assignment is part of the identity"
        );
    }
}
