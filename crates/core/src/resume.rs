//! Crash-safe resume for the BPROM pipeline.
//!
//! The resume model is **deterministic replay + artifact skip**. A
//! checkpointed run records, per completed unit of work (one shadow
//! model, one prompt, one zoo model, the meta forest, one verdict):
//!
//! 1. an **artifact snapshot** holding the unit's outputs plus — for
//!    units that consume the caller's RNG stream directly — the RNG
//!    state at completion, written atomically to the [`SnapshotStore`];
//! 2. a **journal entry** (`stages.journal`) appended *after* the
//!    artifact is durable, marking the unit done.
//!
//! On resume, the caller re-runs the *same seeded program*. Cheap
//! deterministic work (dataset generation, splits, RNG forks, probe
//! sampling) is recomputed identically; when execution reaches a unit
//! whose journal entry exists, the unit's artifact is loaded instead of
//! re-doing the work, and any recorded RNG state is restored so the
//! stream continues exactly where the uninterrupted run would be. A
//! crash *between* artifact write and journal append merely re-runs the
//! unit, which overwrites the artifact with identical bytes.
//!
//! The journal and store live in one directory (`BPROM_CKPT_DIR`); a
//! `manifest` snapshot fingerprints the run (config + seed) so a stale
//! directory from a different run is rejected instead of silently
//! splicing mismatched state.

use crate::{BpromError, Result};
use bprom_ckpt::{crash_point, Encoder, Journal, SnapshotStore};
use bprom_nn::Sequential;
use bprom_tensor::{Rng, Tensor};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

pub use bprom_ckpt::Decoder;

/// Environment variable naming the checkpoint directory. When set (and
/// non-empty), binaries that support checkpointing persist their
/// progress there and resume from it on restart.
pub const CKPT_DIR_ENV: &str = "BPROM_CKPT_DIR";

/// Coordinates the stage journal and artifact snapshots of one
/// checkpointed pipeline run.
///
/// Thread-safe: the journal and done-set sit behind mutexes so
/// data-parallel stages (shadow training, shadow prompting) can mark
/// units done from worker threads. The [`SnapshotStore`] is already
/// `&self` and atomic per save.
#[derive(Debug)]
pub struct Checkpointer {
    store: SnapshotStore,
    journal: Mutex<Journal>,
    done: Mutex<HashSet<String>>,
}

impl Checkpointer {
    /// Opens (or creates) a checkpoint directory: the snapshot store
    /// plus the `stages.journal` of completed units.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] if the directory cannot be created,
    /// the journal holds corrupt (non-torn-tail) entries, or an entry
    /// is not valid UTF-8.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let store = SnapshotStore::open(&dir)?;
        let (journal, entries) = Journal::open(dir.join("stages.journal"))?;
        let mut done = HashSet::with_capacity(entries.len());
        for entry in entries {
            let unit = String::from_utf8(entry)
                .map_err(|_| BpromError::Ckpt("journal entry is not valid UTF-8".to_string()))?;
            done.insert(unit);
        }
        Ok(Checkpointer {
            store,
            journal: Mutex::new(journal),
            done: Mutex::new(done),
        })
    }

    /// Opens the checkpointer named by [`CKPT_DIR_ENV`], or returns
    /// `None` when the variable is unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`Checkpointer::open`] failures.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var(CKPT_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Ok(Some(Self::open(dir)?)),
            _ => Ok(None),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The underlying snapshot store (for per-generation CMA-ES
    /// snapshots, which bypass the unit journal).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Whether `unit` completed in a previous (or this) process.
    pub fn is_done(&self, unit: &str) -> bool {
        self.done.lock().expect("done set poisoned").contains(unit)
    }

    /// Marks `unit` complete: appends it to the journal (fsynced), then
    /// crosses the `unit`'s crash point. Call only after the unit's
    /// artifact snapshot is durable.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] on journal I/O failure.
    pub fn mark_done(&self, unit: &str) -> Result<()> {
        self.journal
            .lock()
            .expect("journal poisoned")
            .append(unit.as_bytes())?;
        self.done
            .lock()
            .expect("done set poisoned")
            .insert(unit.to_string());
        crash_point(unit);
        Ok(())
    }

    /// Writes `unit`'s artifact snapshot atomically.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] on snapshot I/O failure.
    pub fn save_artifact(&self, unit: &str, enc: Encoder) -> Result<()> {
        self.store.save(unit, &enc.into_bytes())?;
        Ok(())
    }

    /// Loads `unit`'s artifact snapshot, which must exist (the journal
    /// says the unit completed).
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] if the snapshot is missing or fails
    /// validation.
    pub fn load_artifact(&self, unit: &str) -> Result<Vec<u8>> {
        Ok(self.store.load_required(unit)?)
    }

    /// Guards against resuming into a directory produced by a
    /// *different* run: the first checkpointed run writes a `manifest`
    /// snapshot holding the run fingerprint (config + seed); later
    /// opens must present the same fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] on fingerprint mismatch or I/O
    /// failure.
    pub fn ensure_manifest(&self, fingerprint: u64) -> Result<()> {
        if let Some(bytes) = self.store.load("manifest")? {
            let mut dec = Decoder::new(&bytes);
            let stored = dec.get_u64()?;
            dec.finish()?;
            if stored != fingerprint {
                return Err(BpromError::Ckpt(format!(
                    "checkpoint directory {:?} belongs to a different run \
                     (manifest fingerprint {stored:#018x}, this run {fingerprint:#018x})",
                    self.dir()
                )));
            }
            return Ok(());
        }
        let mut enc = Encoder::new();
        enc.put_u64(fingerprint);
        self.store.save("manifest", &enc.into_bytes())?;
        crash_point("manifest");
        Ok(())
    }
}

/// Fingerprints a run by its configuration (via `Debug`, which covers
/// every field) and the RNG state at pipeline entry.
pub(crate) fn run_fingerprint(config_debug: &str, rng: &Rng) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str(config_debug);
    let (state, spare) = rng.state();
    enc.put_u64s(&state);
    enc.put_opt_f32(spare);
    bprom_ckpt::fnv1a64(&enc.into_bytes())
}

/// Serializes a trained model's parameters and buffers (visit order).
pub(crate) fn encode_model(enc: &mut Encoder, model: &Sequential) {
    let params = model.export_params();
    enc.put_usize(params.len());
    for p in &params {
        enc.put_usizes(p.shape());
        enc.put_f32s(p.data());
    }
    let buffers = model.export_buffers();
    enc.put_usize(buffers.len());
    for b in &buffers {
        enc.put_f32s(b);
    }
}

/// Restores parameters and buffers written by [`encode_model`] into a
/// structurally identical model (shape-validated by the importers).
pub(crate) fn decode_model_into(dec: &mut Decoder<'_>, model: &mut Sequential) -> Result<()> {
    let n = dec.get_usize()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let shape = dec.get_usizes()?;
        let data = dec.get_f32s()?;
        params.push(
            Tensor::from_vec(data, &shape)
                .map_err(|e| BpromError::Ckpt(format!("bad model tensor in snapshot: {e}")))?,
        );
    }
    model.import_params(&params)?;
    let b = dec.get_usize()?;
    let mut buffers = Vec::with_capacity(b);
    for _ in 0..b {
        buffers.push(dec.get_f32s()?);
    }
    model.import_buffers(&buffers)?;
    Ok(())
}

/// Serializes one tensor: shape, then the exact data bits.
pub(crate) fn encode_tensor(enc: &mut Encoder, t: &Tensor) {
    enc.put_usizes(t.shape());
    enc.put_f32s(t.data());
}

/// Restores a tensor written by [`encode_tensor`].
pub(crate) fn decode_tensor(dec: &mut Decoder<'_>) -> Result<Tensor> {
    let shape = dec.get_usizes()?;
    let data = dec.get_f32s()?;
    Tensor::from_vec(data, &shape)
        .map_err(|e| BpromError::Ckpt(format!("bad tensor in snapshot: {e}")))
}

/// Serializes a dataset (images, labels, label space, name) bit-exactly.
pub(crate) fn encode_dataset(enc: &mut Encoder, ds: &bprom_data::Dataset) {
    encode_tensor(enc, &ds.images);
    enc.put_usizes(&ds.labels);
    enc.put_usize(ds.num_classes);
    enc.put_str(&ds.name);
}

/// Restores a dataset written by [`encode_dataset`]. Routed through the
/// validating constructor so a corrupted payload that still decodes
/// surfaces as a typed error instead of an inconsistent dataset.
pub(crate) fn decode_dataset(dec: &mut Decoder<'_>) -> Result<bprom_data::Dataset> {
    let images = decode_tensor(dec)?;
    let labels = dec.get_usizes()?;
    let num_classes = dec.get_usize()?;
    let name = dec.get_str()?;
    bprom_data::Dataset::new(images, labels, num_classes, name)
        .map_err(|e| BpromError::Ckpt(format!("bad dataset in snapshot: {e}")))
}

/// Serializes the caller's RNG stream position.
pub(crate) fn encode_rng(enc: &mut Encoder, rng: &Rng) {
    let (state, spare) = rng.state();
    enc.put_u64s(&state);
    enc.put_opt_f32(spare);
}

/// Restores an RNG stream position written by [`encode_rng`].
pub(crate) fn decode_rng(dec: &mut Decoder<'_>) -> Result<Rng> {
    let state = dec.get_u64s()?;
    let spare = dec.get_opt_f32()?;
    let state: [u64; 4] = state
        .as_slice()
        .try_into()
        .map_err(|_| BpromError::Ckpt("snapshot holds a malformed RNG state".to_string()))?;
    Ok(Rng::from_state(state, spare))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_nn::{Layer, Mode};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bprom-resume-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn journal_round_trip_marks_units_done() {
        let dir = temp_dir("journal");
        let ck = Checkpointer::open(&dir).unwrap();
        assert!(!ck.is_done("shadow-0"));
        ck.mark_done("shadow-0").unwrap();
        ck.mark_done("shadow-1").unwrap();
        drop(ck);
        let ck = Checkpointer::open(&dir).unwrap();
        assert!(ck.is_done("shadow-0"));
        assert!(ck.is_done("shadow-1"));
        assert!(!ck.is_done("shadow-2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_different_run() {
        let dir = temp_dir("manifest");
        let ck = Checkpointer::open(&dir).unwrap();
        ck.ensure_manifest(0xABCD).unwrap();
        ck.ensure_manifest(0xABCD).unwrap();
        let err = ck.ensure_manifest(0x1234).unwrap_err();
        assert!(matches!(err, BpromError::Ckpt(_)), "{err}");
        assert!(err.to_string().contains("different run"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_codec_round_trip_preserves_forward() {
        let mut rng = Rng::new(7);
        let spec = ModelSpec::new(3, 8, 4);
        let mut a = mlp(&spec, &mut rng).unwrap();
        let mut b = mlp(&spec, &mut rng).unwrap();
        let probe = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let ya = a.forward(&probe, Mode::Eval).unwrap();
        assert_ne!(ya, b.forward(&probe, Mode::Eval).unwrap());
        let mut enc = Encoder::new();
        encode_model(&mut enc, &a);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        decode_model_into(&mut dec, &mut b).unwrap();
        dec.finish().unwrap();
        assert_eq!(ya, b.forward(&probe, Mode::Eval).unwrap());
    }

    #[test]
    fn rng_codec_round_trip_continues_stream() {
        let mut rng = Rng::new(9);
        rng.next_u64();
        let mut enc = Encoder::new();
        encode_rng(&mut enc, &rng);
        let bytes = enc.into_bytes();
        let expected: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut dec = Decoder::new(&bytes);
        let mut restored = decode_rng(&mut dec).unwrap();
        dec.finish().unwrap();
        let got: Vec<u64> = (0..4).map(|_| restored.next_u64()).collect();
        assert_eq!(got, expected);
    }
}
