use crate::{BpromError, Result};
use bprom_attacks::AttackKind;
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_nn::TrainConfig;
use bprom_qcache::CacheConfig;
use bprom_regimes::OracleRegime;
use bprom_verdict::{Mode, RulePolicy};
use bprom_vp::{PromptStyle, PromptTrainConfig};

/// How shadow-model prompts are learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShadowPrompting {
    /// Backpropagation through the frozen shadow (the paper's description).
    Backprop,
    /// The same CMA-ES procedure used for the suspicious model. Default:
    /// keeping one optimizer on both sides makes the shadow and suspicious
    /// meta-feature distributions directly comparable, which the
    /// meta-classifier transfer depends on at this substrate scale (the
    /// `meta_ablation` bench quantifies the difference).
    #[default]
    CmaEs,
}

/// Full configuration of a BPROM detector.
///
/// Defaults reproduce the paper's main setting at substrate scale:
/// `D_S` = 10 % of the source test distribution, `D_T` = STL-10,
/// 10 + 10 shadow models poisoned with BadNets, `q` = 16 probe samples,
/// a 300-tree random forest, ResNet shadow models.
#[derive(Debug, Clone, PartialEq)]
pub struct BpromConfig {
    /// Source-domain dataset the suspicious model was (presumably) trained
    /// on; `D_S` is drawn from its distribution.
    pub source_dataset: SynthDataset,
    /// External clean dataset `D_T` used for prompting.
    pub target_dataset: SynthDataset,
    /// Fraction of the source test distribution reserved as `D_S`
    /// (the paper's 1 % / 5 % / 10 %).
    pub ds_fraction: f32,
    /// Source image side (the suspicious model's input size).
    pub image_size: usize,
    /// Samples per class of the emulated source test set from which `D_S`
    /// is subsampled.
    pub test_samples_per_class: usize,
    /// Samples per class of `D_T`.
    pub target_samples_per_class: usize,
    /// Number of clean shadow models `n`.
    pub clean_shadows: usize,
    /// Number of backdoored shadow models `M - n`.
    pub backdoor_shadows: usize,
    /// The single attack used to poison shadow models (the paper uses
    /// BadNets and shows transfer to all other attacks).
    pub shadow_attack: AttackKind,
    /// Shadow-model architecture.
    pub architecture: Architecture,
    /// Shadow-model training hyperparameters.
    pub train: TrainConfig,
    /// Visual-prompt hyperparameters (backprop for shadows, CMA-ES for the
    /// suspicious model).
    pub prompt: PromptTrainConfig,
    /// Prompt border width in pixels.
    pub prompt_border: usize,
    /// How the prompt combines with target images (see
    /// [`bprom_vp::PromptStyle`]). Overlay (the default) adds `θ` onto
    /// the border of the resized image, so every prompted row is unique;
    /// Pad writes `θ` verbatim around a shrunken image, which makes the
    /// border bit-identical across a batch — a signature an adaptive
    /// endpoint's similarity tests can detect (see
    /// `bprom_faults::AdaptiveOracle`).
    pub prompt_style: PromptStyle,
    /// Number of probe samples `q` drawn from `D_T`'s test split.
    pub probe_count: usize,
    /// Number of trees in the random-forest meta-classifier.
    pub forest_trees: usize,
    /// Optimizer used for shadow prompts (suspicious models always use
    /// CMA-ES — the defender has no gradients there).
    pub shadow_prompting: ShadowPrompting,
    /// Query-cache policy applied to every oracle the pipeline builds
    /// (shadow prompting and suspicious-model inspection). Defaults to
    /// unbounded memoization; `BPROM_QCACHE=off|mem|lru:<n>` overrides
    /// the default at construction time. Part of the config fingerprint,
    /// so a checkpointed run cannot silently resume under a different
    /// cache policy.
    pub cache: CacheConfig,
    /// Response mode for the verdict pipeline: learning records findings
    /// without flagging, strict flags/quarantines on backdoor evidence.
    /// Defaults to strict; `BPROM_MODE=learning|strict` overrides the
    /// default at construction time.
    pub mode: Mode,
    /// Thresholds the verdict rules stage matches each audit against
    /// (see `bprom_verdict::RulePolicy`).
    pub policy: RulePolicy,
    /// Declared response contract of the suspicious endpoint (full
    /// scores, quantized, top-k, or label-only). Unlike a fault plan —
    /// transient hostility the client retries around — a regime changes
    /// which fitness and meta-features the detector uses, and which
    /// meta-forest it trains. Defaults to full scores;
    /// `BPROM_ORACLE_REGIME=quantized:<d>|top_k:<k>|label_only`
    /// overrides the default at construction time. Part of the config
    /// fingerprint, so detectors for different regimes never share a
    /// registry entry.
    pub regime: OracleRegime,
}

impl BpromConfig {
    /// Creates the default configuration for a source/target dataset pair.
    pub fn new(source: SynthDataset, target: SynthDataset) -> Self {
        BpromConfig {
            source_dataset: source,
            target_dataset: target,
            ds_fraction: 0.1,
            image_size: source.default_size(),
            test_samples_per_class: 150,
            target_samples_per_class: 25,
            clean_shadows: 10,
            backdoor_shadows: 10,
            shadow_attack: AttackKind::BadNets,
            architecture: Architecture::ResNetMini,
            train: TrainConfig::default(),
            prompt: PromptTrainConfig::default(),
            prompt_border: 4,
            prompt_style: PromptStyle::default(),
            probe_count: 32,
            forest_trees: 300,
            shadow_prompting: ShadowPrompting::default(),
            cache: CacheConfig::from_env_or(CacheConfig::unbounded()),
            mode: Mode::from_env_or(Mode::Strict),
            policy: RulePolicy::default(),
            regime: OracleRegime::from_env_or(OracleRegime::FullScores),
        }
    }

    /// A reduced configuration for unit tests and smoke runs.
    pub fn fast(source: SynthDataset, target: SynthDataset) -> Self {
        BpromConfig {
            clean_shadows: 4,
            backdoor_shadows: 4,
            probe_count: 8,
            forest_trees: 100,
            ..Self::new(source, target)
        }
    }

    /// Validates structural requirements.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::InvalidConfig`] for zero shadow counts, empty
    /// probes, or a target label space wider than the source's.
    pub fn validate(&self) -> Result<()> {
        if self.clean_shadows == 0 || self.backdoor_shadows == 0 {
            return Err(BpromError::InvalidConfig {
                reason: "need at least one clean and one backdoored shadow model".to_string(),
            });
        }
        if self.probe_count == 0 {
            return Err(BpromError::InvalidConfig {
                reason: "probe_count must be positive".to_string(),
            });
        }
        if self.target_dataset.num_classes() > self.source_dataset.num_classes() {
            return Err(BpromError::InvalidConfig {
                reason: format!(
                    "target dataset has {} classes but source only {} (identity mapping impossible)",
                    self.target_dataset.num_classes(),
                    self.source_dataset.num_classes()
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.ds_fraction) || self.ds_fraction <= 0.0 {
            return Err(BpromError::InvalidConfig {
                reason: format!("ds_fraction must be in (0, 1], got {}", self.ds_fraction),
            });
        }
        if self.regime != OracleRegime::FullScores
            && self.shadow_prompting == ShadowPrompting::Backprop
        {
            return Err(BpromError::InvalidConfig {
                reason: format!(
                    "regime {} requires CMA-ES shadow prompting: the degraded responses \
                     are not differentiable, so backprop cannot see the regime the \
                     suspicious endpoint enforces",
                    self.regime
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let cfg = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.image_size, 16);
    }

    #[test]
    fn class_mismatch_rejected() {
        // STL-10 source (10 classes) cannot host GTSRB target (43 classes).
        let cfg = BpromConfig::new(SynthDataset::Stl10, SynthDataset::Gtsrb);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_shadows_rejected() {
        let mut cfg = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.clean_shadows = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn degraded_regime_requires_cmaes_shadow_prompting() {
        let mut cfg = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.regime = OracleRegime::LabelOnly;
        assert!(cfg.validate().is_ok(), "CmaEs default accepts any regime");
        cfg.shadow_prompting = ShadowPrompting::Backprop;
        assert!(cfg.validate().is_err());
        cfg.regime = OracleRegime::FullScores;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn bad_fraction_rejected() {
        let mut cfg = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.ds_fraction = 0.0;
        assert!(cfg.validate().is_err());
        cfg.ds_fraction = 1.5;
        assert!(cfg.validate().is_err());
    }
}
