//! The end-to-end BPROM detector.

use crate::meta_model::{probe_features_blackbox, train_meta, ProbeSet};
use crate::prompting::{prompt_shadows, prompt_suspicious};
use crate::{BpromConfig, Result, ShadowSet};
use bprom_data::Dataset;
use bprom_meta::RandomForest;
use bprom_tensor::Rng;
use bprom_vp::{BlackBoxModel, LabelMap};

/// Verdict returned by [`Bprom::inspect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Backdoor probability from the meta-classifier (higher = more
    /// suspicious).
    pub score: f32,
    /// Hard decision at threshold 0.5.
    pub backdoored: bool,
    /// Black-box queries consumed inspecting this model.
    pub queries: u64,
}

/// A fitted BPROM detector (the output of Algorithm 1).
pub struct Bprom {
    config: BpromConfig,
    meta: RandomForest,
    probes: ProbeSet,
    t_train: Dataset,
    map: LabelMap,
}

impl std::fmt::Debug for Bprom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bprom")
            .field("source", &self.config.source_dataset)
            .field("target", &self.config.target_dataset)
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl Bprom {
    /// Runs the full BPROM training pipeline (Algorithm 1): reserve `D_S`,
    /// train shadow models, prompt them, and fit the meta-classifier.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit(config: &BpromConfig, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        // Emulate the source test distribution and reserve D_S from it.
        let source_test = config.source_dataset.generate(
            config.test_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let ds = source_test.subsample(config.ds_fraction, rng)?;
        Self::fit_with_reserved(config, &ds, rng)
    }

    /// Variant of [`Bprom::fit`] taking an explicit reserved clean dataset
    /// `D_S` (used by experiments that sweep `D_S` composition).
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit_with_reserved(
        config: &BpromConfig,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<Self> {
        config.validate()?;
        let target = config.target_dataset.generate(
            config.target_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let (t_train, t_test) = target.split(0.7, rng)?;
        let map = LabelMap::identity(t_train.num_classes, ds.num_classes)?;
        let mut shadows = ShadowSet::train(config, ds, rng)?;
        let prompts = prompt_shadows(config, &mut shadows, &t_train, &map, rng)?;
        let probes = ProbeSet::sample(&t_test, config.probe_count, rng)?;
        let meta = train_meta(config, &mut shadows, &prompts, &probes, rng)?;
        Ok(Bprom {
            config: config.clone(),
            meta,
            probes,
            t_train,
            map,
        })
    }

    /// Inspects a suspicious model through its black-box query interface:
    /// learns a prompt with CMA-ES, extracts the probe feature, and asks
    /// the meta-classifier for a verdict.
    ///
    /// # Errors
    ///
    /// Propagates prompting/query/meta failures.
    pub fn inspect(&self, oracle: &mut dyn BlackBoxModel, rng: &mut Rng) -> Result<Verdict> {
        let start = oracle.queries_used();
        let (prompt, _) = prompt_suspicious(
            &self.config,
            oracle,
            &self.t_train,
            &self.map,
            rng,
        )?;
        let feature = probe_features_blackbox(oracle, &prompt, &self.probes)?;
        let score = self.meta.predict_proba(&feature)?;
        Ok(Verdict {
            score,
            backdoored: score > 0.5,
            queries: oracle.queries_used() - start,
        })
    }

    /// The detector's configuration.
    pub fn config(&self) -> &BpromConfig {
        &self.config
    }

    /// The fixed probe set `D_Q`.
    pub fn probes(&self) -> &ProbeSet {
        &self.probes
    }

    /// The identity label mapping in use.
    pub fn label_map(&self) -> &LabelMap {
        &self.map
    }

    /// The target-domain training split used for prompting.
    pub fn target_train(&self) -> &Dataset {
        &self.t_train
    }

    /// The fitted meta-classifier.
    pub fn meta(&self) -> &RandomForest {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::{PromptTrainConfig, QueryOracle};

    /// End-to-end smoke test at reduced scale: the detector must produce a
    /// verdict for an arbitrary suspicious model and consume queries.
    #[test]
    fn fit_and_inspect_smoke() {
        let mut rng = Rng::new(0);
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 3,
            cmaes_generations: 5,
            cmaes_population: 6,
            ..PromptTrainConfig::default()
        };
        let detector = Bprom::fit(&config, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let source = SynthDataset::Cifar10.generate(10, 16, 5).unwrap();
        let mut model = build(config.architecture, &spec, &mut rng).unwrap();
        Trainer::new(config.train)
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let mut oracle = QueryOracle::new(model, 10);
        let verdict = detector.inspect(&mut oracle, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&verdict.score));
        assert!(verdict.queries > 0);
        assert_eq!(verdict.backdoored, verdict.score > 0.5);
    }
}
