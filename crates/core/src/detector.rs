//! The end-to-end BPROM detector.

use crate::meta_model::{probe_features_blackbox_regime, train_meta_ckpt, ProbeSet};
use crate::prompting::{prompt_shadows_ckpt, prompt_suspicious_ckpt};
use crate::resume::{
    decode_dataset, decode_rng, decode_tensor, encode_dataset, encode_rng, encode_tensor,
    run_fingerprint, Checkpointer, Decoder,
};
use crate::{BpromConfig, BpromError, Result, ShadowSet};
use bprom_ckpt::Encoder;
use bprom_data::Dataset;
use bprom_meta::RandomForest;
use bprom_tensor::Rng;
use bprom_verdict::{Signals, Timing};
use bprom_vp::{BlackBoxModel, CmaesCheckpoint, CountingOracle, LabelMap};
use std::path::Path;
use std::time::Instant;

/// Query-budget and wall-clock breakdown of one [`Bprom::inspect`] call.
///
/// Always populated — timing uses [`std::time::Instant`] directly, so the
/// budget is exact whether or not a `bprom-obs` telemetry session is
/// installed. Query counts are deterministic: two identically-seeded
/// inspections spend identical budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InspectBudget {
    /// Oracle images spent learning the CMA-ES prompt.
    pub prompt_queries: u64,
    /// Oracle images spent measuring the learned prompt's accuracy on
    /// the target training split (this pass replays images the prompt
    /// search already queried, so with the query cache enabled most of
    /// it is served without provider spend).
    pub accuracy_queries: u64,
    /// Oracle images spent extracting the probe feature.
    pub probe_queries: u64,
    /// Wall-clock of the prompt-learning phase, in nanoseconds.
    pub prompt_ns: u64,
    /// Wall-clock of the probe + meta-prediction phase, in nanoseconds.
    pub probe_ns: u64,
    /// Total inspection wall-clock, in nanoseconds.
    pub total_ns: u64,
    /// Transient faults the oracle stack injected during this inspection
    /// (0 for a plain oracle; see `bprom-faults`).
    pub faults_injected: u64,
    /// Retry attempts absorbed by the oracle stack.
    pub retries: u64,
    /// Queries whose retry budget ran out (each one either penalized a
    /// CMA-ES candidate or failed the inspection).
    pub retry_exhausted: u64,
    /// Delivered responses degraded by the oracle stack (quantized,
    /// truncated, jittered).
    pub degraded_responses: u64,
    /// Virtual backoff milliseconds a real client would have slept.
    pub backoff_virtual_ms: u64,
    /// CMA-ES candidates skipped with an infinite penalty because their
    /// queries exhausted all retries.
    pub penalized_candidates: u64,
    /// Query rows served from the content-addressed cache instead of the
    /// provider (0 with `BPROM_QCACHE=off`; see `bprom-qcache`).
    pub cache_hits: u64,
    /// Deduplicated query rows the cache forwarded to the provider.
    pub cache_misses: u64,
    /// Cache entries evicted by a bounded-memory (`lru:<n>`) policy.
    pub cache_evictions: u64,
    /// Responses an adaptive (probe-detecting) endpoint fabricated
    /// instead of answering honestly (see `bprom-faults::AdaptiveOracle`;
    /// verdict rule B012 keys on this).
    pub evasive_responses: u64,
}

impl InspectBudget {
    /// Total oracle images spent (logical spend: cache hits included, so
    /// the figure is identical whether or not caching is enabled).
    pub fn total_queries(&self) -> u64 {
        self.prompt_queries + self.accuracy_queries + self.probe_queries
    }

    /// Whether the oracle stack misbehaved at all during this inspection.
    pub fn degraded(&self) -> bool {
        self.faults_injected > 0 || self.degraded_responses > 0 || self.retry_exhausted > 0
    }
}

/// Verdict returned by [`Bprom::inspect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Backdoor probability from the meta-classifier (higher = more
    /// suspicious).
    pub score: f32,
    /// Hard decision at threshold 0.5.
    pub backdoored: bool,
    /// Accuracy of the prompted suspicious model on the target training
    /// split (measured black-box after the CMA-ES search installs its
    /// best prompt).
    pub prompted_accuracy: f32,
    /// Black-box queries consumed inspecting this model.
    pub queries: u64,
    /// Exact per-phase query and wall-clock breakdown.
    pub budget: InspectBudget,
}

fn encode_verdict(enc: &mut Encoder, v: &Verdict) {
    enc.put_f32(v.score);
    enc.put_bool(v.backdoored);
    enc.put_f32(v.prompted_accuracy);
    enc.put_u64(v.queries);
    let b = &v.budget;
    enc.put_u64(b.prompt_queries);
    enc.put_u64(b.accuracy_queries);
    enc.put_u64(b.probe_queries);
    enc.put_u64(b.prompt_ns);
    enc.put_u64(b.probe_ns);
    enc.put_u64(b.total_ns);
    enc.put_u64(b.faults_injected);
    enc.put_u64(b.retries);
    enc.put_u64(b.retry_exhausted);
    enc.put_u64(b.degraded_responses);
    enc.put_u64(b.backoff_virtual_ms);
    enc.put_u64(b.penalized_candidates);
    enc.put_u64(b.cache_hits);
    enc.put_u64(b.cache_misses);
    enc.put_u64(b.cache_evictions);
    enc.put_u64(b.evasive_responses);
}

fn decode_verdict(dec: &mut Decoder<'_>) -> Result<Verdict> {
    Ok(Verdict {
        score: dec.get_f32()?,
        backdoored: dec.get_bool()?,
        prompted_accuracy: dec.get_f32()?,
        queries: dec.get_u64()?,
        budget: InspectBudget {
            prompt_queries: dec.get_u64()?,
            accuracy_queries: dec.get_u64()?,
            probe_queries: dec.get_u64()?,
            prompt_ns: dec.get_u64()?,
            probe_ns: dec.get_u64()?,
            total_ns: dec.get_u64()?,
            faults_injected: dec.get_u64()?,
            retries: dec.get_u64()?,
            retry_exhausted: dec.get_u64()?,
            degraded_responses: dec.get_u64()?,
            backoff_virtual_ms: dec.get_u64()?,
            penalized_candidates: dec.get_u64()?,
            cache_hits: dec.get_u64()?,
            cache_misses: dec.get_u64()?,
            cache_evictions: dec.get_u64()?,
            evasive_responses: dec.get_u64()?,
        },
    })
}

impl Verdict {
    /// This verdict's observations in the verdict pipeline's wall-clock-
    /// free [`Signals`] form — the input to rule evaluation and the
    /// byte-stable `incident.json` artifact.
    pub fn signals(&self) -> Signals {
        Signals {
            score: self.score,
            backdoored: self.backdoored,
            prompted_accuracy: self.prompted_accuracy,
            queries: self.queries,
            prompt_queries: self.budget.prompt_queries,
            accuracy_queries: self.budget.accuracy_queries,
            probe_queries: self.budget.probe_queries,
            faults_injected: self.budget.faults_injected,
            retries: self.budget.retries,
            retry_exhausted: self.budget.retry_exhausted,
            degraded_responses: self.budget.degraded_responses,
            penalized_candidates: self.budget.penalized_candidates,
            cache_hits: self.budget.cache_hits,
            cache_misses: self.budget.cache_misses,
            cache_evictions: self.budget.cache_evictions,
            evasive_responses: self.budget.evasive_responses,
            // The attestation is a property of the audited *system*, not
            // of one inspection; the evaluation loop stamps it from the
            // workload Scenario before rule evaluation.
            clean_downstream_training: false,
        }
    }

    /// The wall-clock portion of the budget, for human rendering (kept
    /// out of [`Signals`] so incident artifacts stay byte-stable).
    pub fn timing(&self) -> Timing {
        Timing {
            prompt_ns: self.budget.prompt_ns,
            probe_ns: self.budget.probe_ns,
            total_ns: self.budget.total_ns,
        }
    }

    /// Runs the verdict rules stage over this verdict's signals,
    /// returning every finding (stable rule ID, severity, reason,
    /// evidence) the policy raises.
    pub fn findings(&self, policy: &bprom_verdict::RulePolicy) -> Vec<bprom_verdict::Finding> {
        policy.evaluate(&self.signals())
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One formatting path for human and machine output: `render` is
        // shared with the bench binaries and fed from the same Signals
        // that incident.json serializes.
        f.write_str(&bprom_verdict::render(
            &self.signals(),
            Some(&self.timing()),
        ))
    }
}

/// Version prefix of the [`Bprom::persist`] payload; bumped on any
/// layout change so stale registry entries fail typed instead of
/// decoding garbage.
const DETECTOR_CODEC_VERSION: u32 = 1;

/// A fitted BPROM detector (the output of Algorithm 1).
pub struct Bprom {
    config: BpromConfig,
    meta: RandomForest,
    probes: ProbeSet,
    t_train: Dataset,
    map: LabelMap,
}

impl std::fmt::Debug for Bprom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bprom")
            .field("source", &self.config.source_dataset)
            .field("target", &self.config.target_dataset)
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl Bprom {
    /// Runs the full BPROM training pipeline (Algorithm 1): reserve `D_S`,
    /// train shadow models, prompt them, and fit the meta-classifier.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit(config: &BpromConfig, rng: &mut Rng) -> Result<Self> {
        Self::fit_ckpt(config, rng, None)
    }

    /// Checkpointed variant of [`Bprom::fit`]: with a [`Checkpointer`],
    /// every completed unit of work (shadow, prompt, meta forest) is
    /// snapshotted and journalled, and a re-run against the same
    /// directory — same config, same seed — skips completed units and
    /// continues bit-identically from the first incomplete one.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and checkpoint failures; rejects a checkpoint
    /// directory whose manifest belongs to a different run.
    pub fn fit_ckpt(
        config: &BpromConfig,
        rng: &mut Rng,
        ckpt: Option<&Checkpointer>,
    ) -> Result<Self> {
        config.validate()?;
        // Emulate the source test distribution and reserve D_S from it.
        let source_test = config.source_dataset.generate(
            config.test_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let ds = source_test.subsample(config.ds_fraction, rng)?;
        Self::fit_with_reserved_ckpt(config, &ds, rng, ckpt)
    }

    /// Re-opens the checkpoint directory of an interrupted [`fit_ckpt`]
    /// run and finishes the fit. The caller supplies the *same* config
    /// and a freshly seeded RNG in the *same* state as the original
    /// call; deterministic replay recomputes the cheap setup and the
    /// journal skips every completed unit.
    ///
    /// [`fit_ckpt`]: Bprom::fit_ckpt
    ///
    /// # Errors
    ///
    /// Propagates pipeline and checkpoint failures; rejects a directory
    /// fingerprinted by a different config/seed.
    pub fn resume_from(dir: impl AsRef<Path>, config: &BpromConfig, rng: &mut Rng) -> Result<Self> {
        let ck = Checkpointer::open(dir.as_ref())?;
        Self::fit_ckpt(config, rng, Some(&ck))
    }

    /// Variant of [`Bprom::fit`] taking an explicit reserved clean dataset
    /// `D_S` (used by experiments that sweep `D_S` composition).
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit_with_reserved(config: &BpromConfig, ds: &Dataset, rng: &mut Rng) -> Result<Self> {
        Self::fit_with_reserved_ckpt(config, ds, rng, None)
    }

    /// Checkpointed variant of [`Bprom::fit_with_reserved`]; see
    /// [`Bprom::fit_ckpt`] for the resume contract.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and checkpoint failures; rejects a checkpoint
    /// directory whose manifest belongs to a different run.
    pub fn fit_with_reserved_ckpt(
        config: &BpromConfig,
        ds: &Dataset,
        rng: &mut Rng,
        ckpt: Option<&Checkpointer>,
    ) -> Result<Self> {
        config.validate()?;
        bprom_obs::span!("fit");
        if let Some(ck) = ckpt {
            // Fingerprint at the single funnel point every fit variant
            // passes through, so the guard sees the same (config, RNG
            // state) pair on the original run and on resume.
            ck.ensure_manifest(run_fingerprint(&format!("{config:?}"), rng))?;
        }
        let target = config.target_dataset.generate(
            config.target_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let (t_train, t_test) = target.split(0.7, rng)?;
        let map = LabelMap::identity(t_train.num_classes, ds.num_classes)?;
        let mut shadows = {
            bprom_obs::span!("shadow_training");
            ShadowSet::train_ckpt(config, ds, rng, ckpt)?
        };
        let prompts = {
            bprom_obs::span!("prompt_shadows");
            prompt_shadows_ckpt(config, &mut shadows, &t_train, &map, rng, ckpt)?
        };
        let probes = ProbeSet::sample(&t_test, config.probe_count, rng)?;
        let meta = {
            bprom_obs::span!("train_meta");
            train_meta_ckpt(config, &mut shadows, &prompts, &probes, rng, ckpt)?
        };
        Ok(Bprom {
            config: config.clone(),
            meta,
            probes,
            t_train,
            map,
        })
    }

    /// Inspects a suspicious model through its black-box query interface:
    /// learns a prompt with CMA-ES, extracts the probe feature, and asks
    /// the meta-classifier for a verdict.
    ///
    /// The returned [`Verdict`] carries the exact oracle query budget and
    /// per-phase wall-clock of this inspection (see [`InspectBudget`]).
    ///
    /// # Errors
    ///
    /// Propagates prompting/query/meta failures.
    pub fn inspect(&self, oracle: &dyn BlackBoxModel, rng: &mut Rng) -> Result<Verdict> {
        self.inspect_ckpt(oracle, rng, None, "adhoc")
    }

    /// Checkpointed variant of [`Bprom::inspect`]: the CMA-ES prompt
    /// search snapshots its state per generation (snapshot
    /// `cmaes-inspect-<unit>`), and the finished verdict is snapshotted
    /// (unit `inspect-<unit>`) with the RNG state at completion, so a
    /// killed inspection resumes mid-search and a completed one is
    /// skipped outright on replay. `unit` names this inspection within
    /// the run (e.g. the zoo index).
    ///
    /// Query accounting folds the pre-crash generations' queries and
    /// fault/retry statistics into the budget, so a resumed verdict is
    /// byte-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Propagates prompting/query/meta and checkpoint failures.
    pub fn inspect_ckpt(
        &self,
        oracle: &dyn BlackBoxModel,
        rng: &mut Rng,
        ckpt: Option<&Checkpointer>,
        unit: &str,
    ) -> Result<Verdict> {
        bprom_obs::span!("inspect");
        let artifact = format!("inspect-{unit}");
        if let Some(ck) = ckpt {
            if ck.is_done(&artifact) {
                let bytes = ck.load_artifact(&artifact)?;
                let mut dec = Decoder::new(&bytes);
                let verdict = decode_verdict(&mut dec)?;
                let restored = decode_rng(&mut dec)?;
                dec.finish()?;
                *rng = restored;
                return Ok(verdict);
            }
        }
        let start = Instant::now();
        let stats_before = oracle.oracle_stats();
        let counting = CountingOracle::new(oracle);
        // Enforce the detector's declared regime on everything this
        // inspection sees. The wrap is idempotent, so it is correct both
        // against a plain oracle (tests, benches) and against a remote
        // endpoint that already serves the degraded shape.
        let sealed = bprom_regimes::RegimeOracle::new(&counting, self.config.regime);
        let cmaes_name = format!("cmaes-inspect-{unit}");
        let (prompt, outcome) = {
            bprom_obs::span!("prompt_suspicious");
            prompt_suspicious_ckpt(
                &self.config,
                &sealed,
                &self.t_train,
                &self.map,
                rng,
                ckpt.map(|ck| CmaesCheckpoint {
                    store: ck.store(),
                    name: &cmaes_name,
                }),
            )?
        };
        let prompt_queries = outcome.report.queries;
        let prompt_ns = start.elapsed().as_nanos() as u64;
        // Measure the learned prompt on the target training split. The
        // pass re-submits prompted images the CMA-ES search already
        // queried (the winning candidate's generation minibatch), so with
        // the query cache enabled part of it costs no provider spend. It
        // consumes no RNG — scores are unchanged by its presence.
        let queries_before_accuracy = counting.local_queries();
        let prompted_accuracy = {
            bprom_obs::span!("prompted_accuracy");
            bprom_vp::prompted_accuracy_blackbox(
                &sealed,
                &prompt,
                &self.t_train.images,
                &self.t_train.labels,
                &self.map,
            )?
        };
        let accuracy_queries = counting.local_queries() - queries_before_accuracy;
        let feature = {
            bprom_obs::span!("probe_features");
            probe_features_blackbox_regime(&sealed, &prompt, &self.probes, self.config.regime)?
        };
        let score = {
            bprom_obs::span!("meta_predict");
            self.meta.predict_proba(&feature)?
        };
        let total_ns = start.elapsed().as_nanos() as u64;
        // The counting decorator only saw this process's traffic; add the
        // queries pre-crash generations spent so the budget matches an
        // uninterrupted run exactly.
        let queries = outcome.carried_queries + counting.local_queries();
        // Whatever the oracle stack absorbed on our behalf (fault
        // injection, retries, degraded responses) is part of this
        // inspection's cost; surface the delta in the budget, plus the
        // carried pre-crash statistics.
        let faults = oracle
            .oracle_stats()
            .delta_since(&stats_before)
            .merged(&outcome.carried_stats);
        bprom_obs::counter_add("inspect.models", 1);
        bprom_obs::log_event(
            "inspect.verdict",
            [
                ("score", f64::from(score).into()),
                ("backdoored", (score > 0.5).into()),
                ("prompted_accuracy", f64::from(prompted_accuracy).into()),
                ("queries", queries.into()),
            ],
        );
        let verdict = Verdict {
            score,
            backdoored: score > 0.5,
            prompted_accuracy,
            queries,
            budget: InspectBudget {
                prompt_queries,
                accuracy_queries,
                probe_queries: queries - prompt_queries - accuracy_queries,
                prompt_ns,
                // Everything after the prompt phase (accuracy measurement,
                // probe queries, meta prediction).
                probe_ns: total_ns - prompt_ns,
                total_ns,
                faults_injected: faults.faults_injected,
                retries: faults.retries,
                retry_exhausted: faults.retry_exhausted,
                degraded_responses: faults.degraded_responses,
                backoff_virtual_ms: faults.backoff_virtual_ms,
                penalized_candidates: outcome.report.penalized_candidates,
                cache_hits: faults.cache_hits,
                cache_misses: faults.cache_misses,
                cache_evictions: faults.cache_evictions,
                evasive_responses: faults.evasive_responses,
            },
        };
        if let Some(ck) = ckpt {
            let mut enc = Encoder::new();
            encode_verdict(&mut enc, &verdict);
            encode_rng(&mut enc, rng);
            ck.save_artifact(&artifact, enc)?;
            ck.mark_done(&artifact)?;
        }
        Ok(verdict)
    }

    /// Stable fingerprint of a detector configuration (FNV-1a over the
    /// `Debug` form, which covers every field). [`Bprom::persist`]
    /// embeds it and [`Bprom::restore`] rejects a payload fitted under a
    /// different configuration, so a content-addressed registry can
    /// never splice a mismatched detector into a pipeline.
    pub fn config_fingerprint(config: &BpromConfig) -> u64 {
        bprom_ckpt::fnv1a64(format!("{config:?}").as_bytes())
    }

    /// Serializes the fitted detector — meta forest, probe set, target
    /// training split, and label map — bit-exactly, prefixed with the
    /// codec version and [`Bprom::config_fingerprint`]. This is the
    /// registry-build half of the pipeline split: a fit is paid once,
    /// persisted, and every later inspection restores the asset instead
    /// of re-training shadows.
    pub fn persist(&self, enc: &mut Encoder) {
        enc.put_u32(DETECTOR_CODEC_VERSION);
        enc.put_u64(Self::config_fingerprint(&self.config));
        self.meta.persist(enc);
        encode_tensor(enc, &self.probes.images);
        enc.put_usizes(&self.probes.labels);
        encode_dataset(enc, &self.t_train);
        self.map.persist(enc);
    }

    /// Restores a detector written by [`Bprom::persist`]. The caller
    /// supplies the configuration the detector was fitted under; the
    /// embedded fingerprint must match.
    ///
    /// # Errors
    ///
    /// Returns [`BpromError::Ckpt`] on codec-version or fingerprint
    /// mismatch, and typed decode errors (truncation, corruption) from
    /// the payload itself — never panics on malformed bytes.
    pub fn restore(config: &BpromConfig, dec: &mut Decoder<'_>) -> Result<Self> {
        let version = dec.get_u32()?;
        if version != DETECTOR_CODEC_VERSION {
            return Err(BpromError::Ckpt(format!(
                "unsupported detector codec version {version} (expected {DETECTOR_CODEC_VERSION})"
            )));
        }
        let stored = dec.get_u64()?;
        let expected = Self::config_fingerprint(config);
        if stored != expected {
            return Err(BpromError::Ckpt(format!(
                "detector snapshot belongs to a different configuration \
                 (stored fingerprint {stored:#018x}, this config {expected:#018x})"
            )));
        }
        let meta = RandomForest::restore(dec)?;
        let images = decode_tensor(dec)?;
        let labels = dec.get_usizes()?;
        let t_train = decode_dataset(dec)?;
        let map = LabelMap::restore(dec)?;
        Ok(Bprom {
            config: config.clone(),
            meta,
            probes: ProbeSet { images, labels },
            t_train,
            map,
        })
    }

    /// The detector's configuration.
    pub fn config(&self) -> &BpromConfig {
        &self.config
    }

    /// The fixed probe set `D_Q`.
    pub fn probes(&self) -> &ProbeSet {
        &self.probes
    }

    /// The identity label mapping in use.
    pub fn label_map(&self) -> &LabelMap {
        &self.map
    }

    /// The target-domain training split used for prompting.
    pub fn target_train(&self) -> &Dataset {
        &self.t_train
    }

    /// The fitted meta-classifier.
    pub fn meta(&self) -> &RandomForest {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::{PromptTrainConfig, QueryOracle};

    /// End-to-end smoke test at reduced scale: the detector must produce a
    /// verdict for an arbitrary suspicious model and consume queries.
    #[test]
    fn fit_and_inspect_smoke() {
        let mut rng = Rng::new(0);
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 3,
            cmaes_generations: 5,
            cmaes_population: 6,
            ..PromptTrainConfig::default()
        };
        let detector = Bprom::fit(&config, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let source = SynthDataset::Cifar10.generate(10, 16, 5).unwrap();
        let mut model = build(config.architecture, &spec, &mut rng).unwrap();
        Trainer::new(config.train)
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let oracle = QueryOracle::new(model, 10);
        let verdict = detector.inspect(&oracle, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&verdict.score));
        assert!(verdict.queries > 0);
        assert_eq!(verdict.backdoored, verdict.score > 0.5);
        // The budget decomposes the total exactly, and both phases ran.
        assert_eq!(verdict.budget.total_queries(), verdict.queries);
        assert!(verdict.budget.prompt_queries > 0);
        assert!(verdict.budget.accuracy_queries > 0);
        assert!(verdict.budget.probe_queries > 0);
        assert!((0.0..=1.0).contains(&verdict.prompted_accuracy));
        assert!(verdict.budget.prompt_ns > 0);
        assert!(verdict.budget.total_ns >= verdict.budget.prompt_ns);
        // Display mentions the decision and the query budget.
        let text = verdict.to_string();
        assert!(text.contains("queries"), "{text}");
        assert!(
            text.contains("BACKDOORED") || text.contains("clean"),
            "{text}"
        );

        // Persist/restore round trip: the restored detector must produce
        // a bit-identical verdict from the same seed.
        let mut enc = Encoder::new();
        detector.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = Bprom::restore(&config, &mut dec).unwrap();
        dec.finish().unwrap();
        let source = SynthDataset::Cifar10.generate(10, 16, 9).unwrap();
        let mut model = build(config.architecture, &spec, &mut rng).unwrap();
        Trainer::new(config.train)
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let oracle = QueryOracle::new(model, 10);
        let a = detector.inspect(&oracle, &mut Rng::new(123)).unwrap();
        let b = restored.inspect(&oracle, &mut Rng::new(123)).unwrap();
        // Signals carry everything except wall-clock, which legitimately
        // differs between the two runs.
        assert_eq!(
            a.signals(),
            b.signals(),
            "restored detector must inspect bit-identically"
        );

        // A different configuration is rejected by the fingerprint guard,
        // and a truncated payload fails typed instead of panicking.
        let mut other = config.clone();
        other.probe_count += 1;
        let err = Bprom::restore(&other, &mut Decoder::new(&bytes)).unwrap_err();
        assert!(matches!(err, crate::BpromError::Ckpt(_)), "{err}");
        assert!(err.to_string().contains("different configuration"), "{err}");
        let truncated = &bytes[..bytes.len() / 2];
        let err = Bprom::restore(&config, &mut Decoder::new(truncated)).unwrap_err();
        assert!(matches!(err, crate::BpromError::Ckpt(_)), "{err}");
    }
}
