//! The end-to-end BPROM detector.

use crate::meta_model::{probe_features_blackbox, train_meta, ProbeSet};
use crate::prompting::{prompt_shadows, prompt_suspicious};
use crate::{BpromConfig, Result, ShadowSet};
use bprom_data::Dataset;
use bprom_meta::RandomForest;
use bprom_tensor::Rng;
use bprom_vp::{BlackBoxModel, CountingOracle, LabelMap};
use std::time::Instant;

/// Query-budget and wall-clock breakdown of one [`Bprom::inspect`] call.
///
/// Always populated — timing uses [`std::time::Instant`] directly, so the
/// budget is exact whether or not a `bprom-obs` telemetry session is
/// installed. Query counts are deterministic: two identically-seeded
/// inspections spend identical budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InspectBudget {
    /// Oracle images spent learning the CMA-ES prompt.
    pub prompt_queries: u64,
    /// Oracle images spent extracting the probe feature.
    pub probe_queries: u64,
    /// Wall-clock of the prompt-learning phase, in nanoseconds.
    pub prompt_ns: u64,
    /// Wall-clock of the probe + meta-prediction phase, in nanoseconds.
    pub probe_ns: u64,
    /// Total inspection wall-clock, in nanoseconds.
    pub total_ns: u64,
    /// Transient faults the oracle stack injected during this inspection
    /// (0 for a plain oracle; see `bprom-faults`).
    pub faults_injected: u64,
    /// Retry attempts absorbed by the oracle stack.
    pub retries: u64,
    /// Queries whose retry budget ran out (each one either penalized a
    /// CMA-ES candidate or failed the inspection).
    pub retry_exhausted: u64,
    /// Delivered responses degraded by the oracle stack (quantized,
    /// truncated, jittered).
    pub degraded_responses: u64,
    /// Virtual backoff milliseconds a real client would have slept.
    pub backoff_virtual_ms: u64,
    /// CMA-ES candidates skipped with an infinite penalty because their
    /// queries exhausted all retries.
    pub penalized_candidates: u64,
}

impl InspectBudget {
    /// Total oracle images spent.
    pub fn total_queries(&self) -> u64 {
        self.prompt_queries + self.probe_queries
    }

    /// Whether the oracle stack misbehaved at all during this inspection.
    pub fn degraded(&self) -> bool {
        self.faults_injected > 0 || self.degraded_responses > 0 || self.retry_exhausted > 0
    }
}

/// Verdict returned by [`Bprom::inspect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Backdoor probability from the meta-classifier (higher = more
    /// suspicious).
    pub score: f32,
    /// Hard decision at threshold 0.5.
    pub backdoored: bool,
    /// Black-box queries consumed inspecting this model.
    pub queries: u64,
    /// Exact per-phase query and wall-clock breakdown.
    pub budget: InspectBudget,
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.2}s", ns as f64 / 1e9)
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (score {:.2}) — {} queries ({} prompt + {} probe) in {} ({} prompt, {} probe)",
            if self.backdoored {
                "BACKDOORED"
            } else {
                "clean"
            },
            self.score,
            self.queries,
            self.budget.prompt_queries,
            self.budget.probe_queries,
            fmt_secs(self.budget.total_ns),
            fmt_secs(self.budget.prompt_ns),
            fmt_secs(self.budget.probe_ns),
        )?;
        if self.budget.degraded() || self.budget.retries > 0 {
            write!(
                f,
                " [hostile oracle: {} faults, {} retries, {} exhausted, {} degraded responses, {} penalized candidates]",
                self.budget.faults_injected,
                self.budget.retries,
                self.budget.retry_exhausted,
                self.budget.degraded_responses,
                self.budget.penalized_candidates,
            )?;
        }
        Ok(())
    }
}

/// A fitted BPROM detector (the output of Algorithm 1).
pub struct Bprom {
    config: BpromConfig,
    meta: RandomForest,
    probes: ProbeSet,
    t_train: Dataset,
    map: LabelMap,
}

impl std::fmt::Debug for Bprom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bprom")
            .field("source", &self.config.source_dataset)
            .field("target", &self.config.target_dataset)
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl Bprom {
    /// Runs the full BPROM training pipeline (Algorithm 1): reserve `D_S`,
    /// train shadow models, prompt them, and fit the meta-classifier.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit(config: &BpromConfig, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        // Emulate the source test distribution and reserve D_S from it.
        let source_test = config.source_dataset.generate(
            config.test_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let ds = source_test.subsample(config.ds_fraction, rng)?;
        Self::fit_with_reserved(config, &ds, rng)
    }

    /// Variant of [`Bprom::fit`] taking an explicit reserved clean dataset
    /// `D_S` (used by experiments that sweep `D_S` composition).
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, prompting and meta-model
    /// failures.
    pub fn fit_with_reserved(config: &BpromConfig, ds: &Dataset, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        bprom_obs::span!("fit");
        let target = config.target_dataset.generate(
            config.target_samples_per_class,
            config.image_size,
            rng.next_u64(),
        )?;
        let (t_train, t_test) = target.split(0.7, rng)?;
        let map = LabelMap::identity(t_train.num_classes, ds.num_classes)?;
        let mut shadows = {
            bprom_obs::span!("shadow_training");
            ShadowSet::train(config, ds, rng)?
        };
        let prompts = {
            bprom_obs::span!("prompt_shadows");
            prompt_shadows(config, &mut shadows, &t_train, &map, rng)?
        };
        let probes = ProbeSet::sample(&t_test, config.probe_count, rng)?;
        let meta = {
            bprom_obs::span!("train_meta");
            train_meta(config, &mut shadows, &prompts, &probes, rng)?
        };
        Ok(Bprom {
            config: config.clone(),
            meta,
            probes,
            t_train,
            map,
        })
    }

    /// Inspects a suspicious model through its black-box query interface:
    /// learns a prompt with CMA-ES, extracts the probe feature, and asks
    /// the meta-classifier for a verdict.
    ///
    /// The returned [`Verdict`] carries the exact oracle query budget and
    /// per-phase wall-clock of this inspection (see [`InspectBudget`]).
    ///
    /// # Errors
    ///
    /// Propagates prompting/query/meta failures.
    pub fn inspect(&self, oracle: &dyn BlackBoxModel, rng: &mut Rng) -> Result<Verdict> {
        bprom_obs::span!("inspect");
        let start = Instant::now();
        let stats_before = oracle.oracle_stats();
        let counting = CountingOracle::new(oracle);
        let (prompt, prompt_report) = {
            bprom_obs::span!("prompt_suspicious");
            prompt_suspicious(&self.config, &counting, &self.t_train, &self.map, rng)?
        };
        let prompt_queries = prompt_report.queries;
        let prompt_ns = start.elapsed().as_nanos() as u64;
        let feature = {
            bprom_obs::span!("probe_features");
            probe_features_blackbox(&counting, &prompt, &self.probes)?
        };
        let score = {
            bprom_obs::span!("meta_predict");
            self.meta.predict_proba(&feature)?
        };
        let total_ns = start.elapsed().as_nanos() as u64;
        let queries = counting.local_queries();
        // Whatever the oracle stack absorbed on our behalf (fault
        // injection, retries, degraded responses) is part of this
        // inspection's cost; surface the delta in the budget.
        let faults = oracle.oracle_stats().delta_since(&stats_before);
        bprom_obs::counter_add("inspect.models", 1);
        Ok(Verdict {
            score,
            backdoored: score > 0.5,
            queries,
            budget: InspectBudget {
                prompt_queries,
                probe_queries: queries - prompt_queries,
                prompt_ns,
                probe_ns: total_ns - prompt_ns,
                total_ns,
                faults_injected: faults.faults_injected,
                retries: faults.retries,
                retry_exhausted: faults.retry_exhausted,
                degraded_responses: faults.degraded_responses,
                backoff_virtual_ms: faults.backoff_virtual_ms,
                penalized_candidates: prompt_report.penalized_candidates,
            },
        })
    }

    /// The detector's configuration.
    pub fn config(&self) -> &BpromConfig {
        &self.config
    }

    /// The fixed probe set `D_Q`.
    pub fn probes(&self) -> &ProbeSet {
        &self.probes
    }

    /// The identity label mapping in use.
    pub fn label_map(&self) -> &LabelMap {
        &self.map
    }

    /// The target-domain training split used for prompting.
    pub fn target_train(&self) -> &Dataset {
        &self.t_train
    }

    /// The fitted meta-classifier.
    pub fn meta(&self) -> &RandomForest {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{build, ModelSpec};
    use bprom_nn::{TrainConfig, Trainer};
    use bprom_vp::{PromptTrainConfig, QueryOracle};

    /// End-to-end smoke test at reduced scale: the detector must produce a
    /// verdict for an arbitrary suspicious model and consume queries.
    #[test]
    fn fit_and_inspect_smoke() {
        let mut rng = Rng::new(0);
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.test_samples_per_class = 20;
        config.target_samples_per_class = 10;
        config.train = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 3,
            cmaes_generations: 5,
            cmaes_population: 6,
            ..PromptTrainConfig::default()
        };
        let detector = Bprom::fit(&config, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let source = SynthDataset::Cifar10.generate(10, 16, 5).unwrap();
        let mut model = build(config.architecture, &spec, &mut rng).unwrap();
        Trainer::new(config.train)
            .fit(&mut model, &source.images, &source.labels, &mut rng)
            .unwrap();
        let oracle = QueryOracle::new(model, 10);
        let verdict = detector.inspect(&oracle, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&verdict.score));
        assert!(verdict.queries > 0);
        assert_eq!(verdict.backdoored, verdict.score > 0.5);
        // The budget decomposes the total exactly, and both phases ran.
        assert_eq!(verdict.budget.total_queries(), verdict.queries);
        assert!(verdict.budget.prompt_queries > 0);
        assert!(verdict.budget.probe_queries > 0);
        assert!(verdict.budget.prompt_ns > 0);
        assert!(verdict.budget.total_ns >= verdict.budget.prompt_ns);
        // Display mentions the decision and the query budget.
        let text = verdict.to_string();
        assert!(text.contains("queries"), "{text}");
        assert!(
            text.contains("BACKDOORED") || text.contains("clean"),
            "{text}"
        );
    }
}
