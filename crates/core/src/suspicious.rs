//! Suspicious-model zoo construction: the clean and attacker-backdoored
//! models the experiments feed to the detector (paper Section 6.1 uses 30
//! clean + 30 backdoored suspicious models per attack).

use crate::resume::{
    decode_model_into, decode_rng, encode_model, encode_rng, Checkpointer, Decoder,
};
use crate::{BpromError, Result};
use bprom_attacks::{attack_success_rate, poison_dataset, AttackKind, PoisonConfig};
use bprom_ckpt::Encoder;
use bprom_data::SynthDataset;
use bprom_nn::models::{build, Architecture, ModelSpec};
use bprom_nn::{Sequential, TrainConfig, Trainer};
use bprom_tensor::Rng;

/// One suspicious model with its ground truth and quality metrics.
pub struct SuspiciousModel {
    /// The trained classifier.
    pub model: Sequential,
    /// Ground truth: was a backdoor planted?
    pub backdoored: bool,
    /// Clean test accuracy.
    pub accuracy: f32,
    /// Attack success rate (0 for clean models).
    pub asr: f32,
}

impl std::fmt::Debug for SuspiciousModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuspiciousModel")
            .field("backdoored", &self.backdoored)
            .field("accuracy", &self.accuracy)
            .field("asr", &self.asr)
            .finish()
    }
}

impl SuspiciousModel {
    /// Stable fingerprint of this model's weights (see
    /// [`model_fingerprint`]) — the identity the verdict pipeline's
    /// correlation stage groups repeated audits by.
    pub fn fingerprint(&self) -> String {
        model_fingerprint(&self.model)
    }
}

/// Stable 16-hex-digit fingerprint of a model's exact parameters and
/// batch-norm buffers (FNV-1a over the IEEE-754 bits, in visit order).
///
/// In the MLaaS threat model the auditor holds the model artifact it
/// uploaded even though inference is query-only, so a weight fingerprint
/// is available without extra oracle spend. Deterministic training makes
/// it bit-stable across reruns and thread counts, which the byte-stable
/// `incident.json` fixtures rely on.
pub fn model_fingerprint(model: &Sequential) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bits: u32| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for tensor in model.export_params() {
        for &v in tensor.data() {
            absorb(v.to_bits());
        }
    }
    for buffer in model.export_buffers() {
        for &v in &buffer {
            absorb(v.to_bits());
        }
    }
    format!("m{hash:016x}")
}

/// Configuration for building a suspicious-model zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooConfig {
    /// Dataset the suspicious models train on.
    pub dataset: SynthDataset,
    /// Image side length.
    pub image_size: usize,
    /// Training samples per class.
    pub samples_per_class: usize,
    /// Architecture of the suspicious models.
    pub architecture: Architecture,
    /// Attack planted in the backdoored half.
    pub attack: AttackKind,
    /// Poisoning parameters; `None` uses the attack's defaults with a
    /// random target class per model.
    pub poison: Option<PoisonConfig>,
    /// Number of clean models.
    pub clean: usize,
    /// Number of backdoored models.
    pub backdoored: usize,
    /// Training hyperparameters.
    pub train: TrainConfig,
}

impl ZooConfig {
    /// Creates a zoo configuration with sensible defaults.
    pub fn new(dataset: SynthDataset, attack: AttackKind) -> Self {
        ZooConfig {
            dataset,
            image_size: dataset.default_size(),
            samples_per_class: 20,
            architecture: Architecture::ResNetMini,
            attack,
            poison: None,
            clean: 6,
            backdoored: 6,
            train: TrainConfig::default(),
        }
    }
}

/// Trains the zoo: `clean` clean models + `backdoored` models poisoned
/// with the configured attack. Each model gets a fresh dataset seed and a
/// fresh trigger instance, as in the paper's 30+30 evaluation protocol.
///
/// # Errors
///
/// Propagates training/poisoning failures and rejects empty zoos.
pub fn build_suspicious_zoo(config: &ZooConfig, rng: &mut Rng) -> Result<Vec<SuspiciousModel>> {
    build_suspicious_zoo_ckpt(config, rng, None)
}

/// Checkpointed variant of [`build_suspicious_zoo`]: each trained model
/// is snapshotted (unit `zoo-<i>`) with its metrics and the RNG state at
/// completion. Zoo models consume the caller's stream sequentially, so a
/// restored unit also restores the stream position recorded when it
/// finished, keeping every later model bit-identical.
///
/// # Errors
///
/// Propagates training/poisoning and checkpoint failures and rejects
/// empty zoos.
pub fn build_suspicious_zoo_ckpt(
    config: &ZooConfig,
    rng: &mut Rng,
    ckpt: Option<&Checkpointer>,
) -> Result<Vec<SuspiciousModel>> {
    if config.clean + config.backdoored == 0 {
        return Err(BpromError::InvalidConfig {
            reason: "zoo must contain at least one model".to_string(),
        });
    }
    let spec = ModelSpec::new(3, config.image_size, config.dataset.num_classes());
    let trainer = Trainer::new(config.train);
    let mut zoo = Vec::with_capacity(config.clean + config.backdoored);
    for i in 0..config.clean + config.backdoored {
        let is_backdoored = i >= config.clean;
        let unit = format!("zoo-{i}");
        if let Some(ck) = ckpt {
            if ck.is_done(&unit) {
                let bytes = ck.load_artifact(&unit)?;
                let mut dec = Decoder::new(&bytes);
                let backdoored = dec.get_bool()?;
                let accuracy = dec.get_f32()?;
                let asr = dec.get_f32()?;
                // A fresh skeleton receives the snapshotted weights; the
                // draws its construction makes are irrelevant because the
                // recorded post-unit stream position is restored next.
                let mut model = build(config.architecture, &spec, rng)?;
                decode_model_into(&mut dec, &mut model)?;
                let restored = decode_rng(&mut dec)?;
                dec.finish()?;
                *rng = restored;
                zoo.push(SuspiciousModel {
                    model,
                    backdoored,
                    accuracy,
                    asr,
                });
                continue;
            }
        }
        let full =
            config
                .dataset
                .generate(config.samples_per_class, config.image_size, rng.next_u64())?;
        let (train, test) = full.split(0.8, rng)?;
        let mut model = build(config.architecture, &spec, rng)?;
        let (accuracy, asr);
        if is_backdoored {
            let attack = config.attack.build(config.image_size, rng)?;
            let poison_cfg = config.poison.unwrap_or_else(|| {
                config
                    .attack
                    .default_config(rng.below(config.dataset.num_classes()))
            });
            let poisoned = poison_dataset(&train, attack.as_ref(), &poison_cfg, rng)?;
            trainer.fit(
                &mut model,
                &poisoned.dataset.images,
                &poisoned.dataset.labels,
                rng,
            )?;
            accuracy = trainer.evaluate(&mut model, &test.images, &test.labels)?;
            asr = attack_success_rate(&mut model, attack.as_ref(), &test, &poison_cfg, rng)?;
        } else {
            trainer.fit(&mut model, &train.images, &train.labels, rng)?;
            accuracy = trainer.evaluate(&mut model, &test.images, &test.labels)?;
            asr = 0.0;
        }
        if let Some(ck) = ckpt {
            let mut enc = Encoder::new();
            enc.put_bool(is_backdoored);
            enc.put_f32(accuracy);
            enc.put_f32(asr);
            encode_model(&mut enc, &model);
            encode_rng(&mut enc, rng);
            ck.save_artifact(&unit, enc)?;
            ck.mark_done(&unit)?;
        }
        zoo.push(SuspiciousModel {
            model,
            backdoored: is_backdoored,
            accuracy,
            asr,
        });
    }
    Ok(zoo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_requested_composition() {
        let mut rng = Rng::new(0);
        let mut cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
        cfg.clean = 2;
        cfg.backdoored = 2;
        cfg.samples_per_class = 30;
        cfg.train = TrainConfig::default();
        let zoo = build_suspicious_zoo(&cfg, &mut rng).unwrap();
        assert_eq!(zoo.len(), 4);
        assert_eq!(zoo.iter().filter(|m| m.backdoored).count(), 2);
        for m in &zoo {
            assert!(m.accuracy > 0.5, "model too weak: {m:?}");
            if !m.backdoored {
                assert_eq!(m.asr, 0.0);
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_weight_sensitive() {
        let mut rng = Rng::new(7);
        let spec = ModelSpec::new(3, 8, 10);
        let a = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        let b = build(Architecture::ResNetMini, &spec, &mut rng).unwrap();
        let fp_a = model_fingerprint(&a);
        assert_eq!(fp_a, model_fingerprint(&a), "same weights, same id");
        assert_ne!(fp_a, model_fingerprint(&b), "different weights differ");
        assert_eq!(fp_a.len(), 17);
        assert!(fp_a.starts_with('m'));
    }

    #[test]
    fn empty_zoo_rejected() {
        let mut rng = Rng::new(1);
        let mut cfg = ZooConfig::new(SynthDataset::Cifar10, AttackKind::BadNets);
        cfg.clean = 0;
        cfg.backdoored = 0;
        assert!(build_suspicious_zoo(&cfg, &mut rng).is_err());
    }
}
