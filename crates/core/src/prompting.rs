//! Prompting stage (paper Section 5.2, "Prompting Shadow Models"): learn a
//! visual prompt per shadow model by backpropagation, and for suspicious
//! models by CMA-ES through the black-box query interface.

use crate::config::ShadowPrompting;
use crate::{BpromConfig, Result, ShadowModel, ShadowSet};
use bprom_data::Dataset;
use bprom_tensor::Rng;
use bprom_vp::{
    train_prompt_backprop, train_prompt_cmaes, BlackBoxModel, LabelMap, PromptTrainReport,
    QueryOracle, VisualPrompt,
};

/// A prompted shadow model: the prompt learned for it plus bookkeeping.
#[derive(Debug, Clone)]
pub struct LearnedPrompt {
    /// The learned visual prompt `θ*`.
    pub prompt: VisualPrompt,
    /// Final prompt-training loss (diagnostic).
    pub final_loss: f32,
}

/// Learns one prompt per shadow model on `D_T^train` (Algorithm 1 lines
/// 10–12).
///
/// # Errors
///
/// Propagates prompting failures.
pub fn prompt_shadows(
    config: &BpromConfig,
    shadows: &mut ShadowSet,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
) -> Result<Vec<LearnedPrompt>> {
    let num_classes = map.source_classes();
    // One forked generator per shadow, drawn in shadow order, makes the
    // learned prompts independent of worker scheduling.
    let jobs: Vec<(&mut ShadowModel, Rng)> = shadows
        .shadows
        .iter_mut()
        .map(|shadow| {
            let child = rng.fork();
            (shadow, child)
        })
        .collect();
    bprom_par::par_map(jobs, |(shadow, mut rng)| -> Result<LearnedPrompt> {
        bprom_obs::span!("prompt_shadow");
        let mut prompt = VisualPrompt::random(
            t_train.channels(),
            config.image_size,
            config.prompt_border,
            &mut rng,
        )?;
        let final_loss = match config.shadow_prompting {
            ShadowPrompting::Backprop => {
                let report = train_prompt_backprop(
                    &mut shadow.model,
                    &mut prompt,
                    &t_train.images,
                    &t_train.labels,
                    map,
                    &config.prompt,
                    &mut rng,
                )?;
                report.losses.last().copied().unwrap_or(f32::NAN)
            }
            ShadowPrompting::CmaEs => {
                // Temporarily seal the shadow behind the oracle so the
                // exact suspicious-model code path runs.
                let model = std::mem::replace(&mut shadow.model, crate::shadow::empty_model());
                let oracle = QueryOracle::new(model, num_classes);
                let report = train_prompt_cmaes(
                    &oracle,
                    &mut prompt,
                    &t_train.images,
                    &t_train.labels,
                    map,
                    &config.prompt,
                    &mut rng,
                )?;
                shadow.model = oracle.into_inner();
                report.losses.last().copied().unwrap_or(f32::NAN)
            }
        };
        bprom_obs::counter_add("prompts.shadow", 1);
        Ok(LearnedPrompt { prompt, final_loss })
    })
    .into_iter()
    .collect()
}

/// Learns a prompt for the suspicious model using only black-box queries
/// (gradient-free CMA-ES, as the paper specifies for `f_sus`).
///
/// Returns the prompt and the full training report (queries consumed and
/// candidates skipped over exhausted retries).
///
/// # Errors
///
/// Propagates prompting failures.
pub fn prompt_suspicious(
    config: &BpromConfig,
    oracle: &dyn BlackBoxModel,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
) -> Result<(VisualPrompt, PromptTrainReport)> {
    let mut prompt = VisualPrompt::random(
        t_train.channels(),
        config.image_size,
        config.prompt_border,
        rng,
    )?;
    let report = train_prompt_cmaes(
        oracle,
        &mut prompt,
        &t_train.images,
        &t_train.labels,
        map,
        &config.prompt,
        rng,
    )?;
    Ok((prompt, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::TrainConfig;
    use bprom_vp::PromptTrainConfig;

    #[test]
    fn prompts_every_shadow() {
        let mut rng = Rng::new(0);
        let mut config = crate::BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 1;
        config.backdoor_shadows = 1;
        config.train = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 3,
            ..PromptTrainConfig::default()
        };
        let ds = SynthDataset::Cifar10.generate(8, 16, 1).unwrap();
        let t_train = SynthDataset::Stl10.generate(8, 16, 2).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let mut shadows = ShadowSet::train(&config, &ds, &mut rng).unwrap();
        let prompts = prompt_shadows(&config, &mut shadows, &t_train, &map, &mut rng).unwrap();
        assert_eq!(prompts.len(), 2);
        for p in &prompts {
            assert!(p.final_loss.is_finite());
            // Prompt actually moved away from its random init.
            assert!(p.prompt.to_flat().iter().any(|&v| v.abs() > 0.1));
        }
    }
}
