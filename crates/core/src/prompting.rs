//! Prompting stage (paper Section 5.2, "Prompting Shadow Models"): learn a
//! visual prompt per shadow model by backpropagation, and for suspicious
//! models by CMA-ES through the black-box query interface.

use crate::config::ShadowPrompting;
use crate::resume::{Checkpointer, Decoder};
use crate::{BpromConfig, BpromError, Result, ShadowModel, ShadowSet};
use bprom_ckpt::Encoder;
use bprom_data::Dataset;
use bprom_qcache::CachingOracle;
use bprom_regimes::RegimeOracle;
use bprom_tensor::Rng;
use bprom_vp::{
    train_prompt_backprop, train_prompt_cmaes_ckpt, BlackBoxModel, CkptTrainOutcome,
    CmaesCheckpoint, LabelMap, PromptTrainReport, QueryOracle, VisualPrompt,
};

/// A prompted shadow model: the prompt learned for it plus bookkeeping.
#[derive(Debug, Clone)]
pub struct LearnedPrompt {
    /// The learned visual prompt `θ*`.
    pub prompt: VisualPrompt,
    /// Final prompt-training loss (diagnostic).
    pub final_loss: f32,
}

/// Learns one prompt per shadow model on `D_T^train` (Algorithm 1 lines
/// 10–12).
///
/// # Errors
///
/// Propagates prompting failures.
pub fn prompt_shadows(
    config: &BpromConfig,
    shadows: &mut ShadowSet,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
) -> Result<Vec<LearnedPrompt>> {
    prompt_shadows_ckpt(config, shadows, t_train, map, rng, None)
}

/// Checkpointed variant of [`prompt_shadows`]: each learned prompt is
/// snapshotted (unit `prompt-<i>`) and journalled; prompts the journal
/// marks done are restored instead of relearned. CMA-ES shadow prompting
/// additionally snapshots optimizer state per generation (snapshot
/// `cmaes-prompt-<i>`), so even a half-finished prompt resumes from its
/// last completed generation.
///
/// Like shadow training, each prompt runs from its own pre-forked RNG
/// stream, so skipping a done unit discards that stream without touching
/// the caller's.
///
/// # Errors
///
/// Propagates prompting and checkpoint failures.
pub fn prompt_shadows_ckpt(
    config: &BpromConfig,
    shadows: &mut ShadowSet,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
    ckpt: Option<&Checkpointer>,
) -> Result<Vec<LearnedPrompt>> {
    let num_classes = map.source_classes();
    // One forked generator per shadow, drawn in shadow order, makes the
    // learned prompts independent of worker scheduling.
    let jobs: Vec<(usize, &mut ShadowModel, Rng)> = shadows
        .shadows
        .iter_mut()
        .enumerate()
        .map(|(i, shadow)| {
            let child = rng.fork();
            (i, shadow, child)
        })
        .collect();
    bprom_par::par_map(jobs, |(i, shadow, mut rng)| -> Result<LearnedPrompt> {
        bprom_obs::span!("prompt_shadow");
        let unit = format!("prompt-{i}");
        if let Some(ck) = ckpt {
            if ck.is_done(&unit) {
                let bytes = ck.load_artifact(&unit)?;
                let mut dec = Decoder::new(&bytes);
                let prompt = VisualPrompt::restore(&mut dec)?;
                let final_loss = dec.get_f32()?;
                dec.finish().map_err(BpromError::from)?;
                return Ok(LearnedPrompt { prompt, final_loss });
            }
        }
        let mut prompt = VisualPrompt::random(
            t_train.channels(),
            config.image_size,
            config.prompt_border,
            &mut rng,
        )?
        .with_style(config.prompt_style);
        let cmaes_name = format!("cmaes-prompt-{i}");
        let final_loss = match config.shadow_prompting {
            ShadowPrompting::Backprop => {
                // Backprop prompting has no per-generation snapshots: an
                // interrupted unit simply re-runs from its forked stream.
                let report = train_prompt_backprop(
                    &mut shadow.model,
                    &mut prompt,
                    &t_train.images,
                    &t_train.labels,
                    map,
                    &config.prompt,
                    &mut rng,
                )?;
                report.losses.last().copied().unwrap_or(f32::NAN)
            }
            ShadowPrompting::CmaEs => {
                // Temporarily seal the shadow behind the oracle so the
                // exact suspicious-model code path runs — including the
                // query cache, whose policy comes from the same config as
                // the suspicious-model side, and the declared oracle
                // regime, so shadow prompts are searched under the same
                // response contract the suspicious endpoint will enforce.
                // The regime sits above the cache: cached entries keep
                // full scores, degradation happens on the way out.
                let model = std::mem::replace(&mut shadow.model, crate::shadow::empty_model());
                let oracle = CachingOracle::new(QueryOracle::new(model, num_classes), config.cache);
                let sealed = RegimeOracle::new(&oracle, config.regime);
                let outcome = train_prompt_cmaes_ckpt(
                    &sealed,
                    &mut prompt,
                    &t_train.images,
                    &t_train.labels,
                    map,
                    &regime_prompt_config(config),
                    &mut rng,
                    ckpt.map(|ck| CmaesCheckpoint {
                        store: ck.store(),
                        name: &cmaes_name,
                    }),
                )?;
                shadow.model = oracle.into_inner().into_inner();
                outcome.report.losses.last().copied().unwrap_or(f32::NAN)
            }
        };
        if let Some(ck) = ckpt {
            let mut enc = Encoder::new();
            prompt.persist(&mut enc);
            enc.put_f32(final_loss);
            ck.save_artifact(&unit, enc)?;
            ck.mark_done(&unit)?;
        }
        bprom_obs::counter_add("prompts.shadow", 1);
        bprom_obs::log_event(
            "prompt.shadow_learned",
            [("index", i.into()), ("final_loss", final_loss.into())],
        );
        Ok(LearnedPrompt { prompt, final_loss })
    })
    .into_iter()
    .collect()
}

/// The prompt-training config with the fitness derived from the declared
/// oracle regime (`config.regime` is the single source of truth;
/// `config.prompt.fitness` stays at its default and is overridden here at
/// every call site).
fn regime_prompt_config(config: &BpromConfig) -> bprom_vp::PromptTrainConfig {
    let mut pcfg = config.prompt;
    pcfg.fitness = config.regime.fitness();
    pcfg
}

/// Learns a prompt for the suspicious model using only black-box queries
/// (gradient-free CMA-ES, as the paper specifies for `f_sus`).
///
/// Returns the prompt and the full training report (queries consumed and
/// candidates skipped over exhausted retries).
///
/// # Errors
///
/// Propagates prompting failures.
pub fn prompt_suspicious(
    config: &BpromConfig,
    oracle: &dyn BlackBoxModel,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
) -> Result<(VisualPrompt, PromptTrainReport)> {
    let (prompt, outcome) = prompt_suspicious_ckpt(config, oracle, t_train, map, rng, None)?;
    Ok((prompt, outcome.report))
}

/// Checkpointed variant of [`prompt_suspicious`]: with a
/// [`CmaesCheckpoint`], every CMA-ES generation snapshots the full
/// optimizer state, and a resumed call continues from the last completed
/// generation with carried query/fault accounting (see
/// [`CkptTrainOutcome`]).
///
/// # Errors
///
/// Propagates prompting and checkpoint failures.
pub fn prompt_suspicious_ckpt(
    config: &BpromConfig,
    oracle: &dyn BlackBoxModel,
    t_train: &Dataset,
    map: &LabelMap,
    rng: &mut Rng,
    ckpt: Option<CmaesCheckpoint<'_>>,
) -> Result<(VisualPrompt, CkptTrainOutcome)> {
    let mut prompt = VisualPrompt::random(
        t_train.channels(),
        config.image_size,
        config.prompt_border,
        rng,
    )?
    .with_style(config.prompt_style);
    // Enforce the declared regime here (idempotent if the caller's oracle
    // already does) and search with the matching fitness: cross-entropy
    // needs soft scores, so top-k renormalizes and label-only falls back
    // to the prompted-miss-rate proxy.
    let sealed = RegimeOracle::new(oracle, config.regime);
    let outcome = train_prompt_cmaes_ckpt(
        &sealed,
        &mut prompt,
        &t_train.images,
        &t_train.labels,
        map,
        &regime_prompt_config(config),
        rng,
        ckpt,
    )?;
    Ok((prompt, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::TrainConfig;
    use bprom_vp::PromptTrainConfig;

    #[test]
    fn prompts_every_shadow() {
        let mut rng = Rng::new(0);
        let mut config = crate::BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 1;
        config.backdoor_shadows = 1;
        config.train = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        config.prompt = PromptTrainConfig {
            epochs: 3,
            ..PromptTrainConfig::default()
        };
        let ds = SynthDataset::Cifar10.generate(8, 16, 1).unwrap();
        let t_train = SynthDataset::Stl10.generate(8, 16, 2).unwrap();
        let map = LabelMap::identity(10, 10).unwrap();
        let mut shadows = ShadowSet::train(&config, &ds, &mut rng).unwrap();
        let prompts = prompt_shadows(&config, &mut shadows, &t_train, &map, &mut rng).unwrap();
        assert_eq!(prompts.len(), 2);
        for p in &prompts {
            assert!(p.final_loss.is_finite());
            // Prompt actually moved away from its random init.
            assert!(p.prompt.to_flat().iter().any(|&v| v.abs() > 0.1));
        }
    }
}
