use std::fmt;

/// Error type for the BPROM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum BpromError {
    /// Synthetic dataset generation or manipulation failed.
    Data(String),
    /// Shadow-model training failed.
    Training(String),
    /// Dataset poisoning failed.
    Attack(String),
    /// Visual prompting failed.
    Prompting(String),
    /// Meta-classifier training or prediction failed.
    Meta(String),
    /// Metric computation failed.
    Metrics(String),
    /// A checkpoint could not be written, read, or validated (see
    /// `bprom-ckpt`; the message carries the typed source error).
    Ckpt(String),
    /// A pipeline configuration is invalid.
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for BpromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpromError::Data(m) => write!(f, "data error: {m}"),
            BpromError::Training(m) => write!(f, "training error: {m}"),
            BpromError::Attack(m) => write!(f, "attack error: {m}"),
            BpromError::Prompting(m) => write!(f, "prompting error: {m}"),
            BpromError::Meta(m) => write!(f, "meta-classifier error: {m}"),
            BpromError::Metrics(m) => write!(f, "metrics error: {m}"),
            BpromError::Ckpt(m) => write!(f, "checkpoint error: {m}"),
            BpromError::InvalidConfig { reason } => write!(f, "invalid BPROM config: {reason}"),
        }
    }
}

impl std::error::Error for BpromError {}

impl From<bprom_data::DataError> for BpromError {
    fn from(e: bprom_data::DataError) -> Self {
        BpromError::Data(e.to_string())
    }
}

impl From<bprom_nn::NnError> for BpromError {
    fn from(e: bprom_nn::NnError) -> Self {
        BpromError::Training(e.to_string())
    }
}

impl From<bprom_attacks::AttackError> for BpromError {
    fn from(e: bprom_attacks::AttackError) -> Self {
        BpromError::Attack(e.to_string())
    }
}

impl From<bprom_vp::VpError> for BpromError {
    fn from(e: bprom_vp::VpError) -> Self {
        BpromError::Prompting(e.to_string())
    }
}

impl From<bprom_meta::MetaError> for BpromError {
    fn from(e: bprom_meta::MetaError) -> Self {
        BpromError::Meta(e.to_string())
    }
}

impl From<bprom_metrics::MetricsError> for BpromError {
    fn from(e: bprom_metrics::MetricsError) -> Self {
        BpromError::Metrics(e.to_string())
    }
}

impl From<bprom_ckpt::CkptError> for BpromError {
    fn from(e: bprom_ckpt::CkptError) -> Self {
        BpromError::Ckpt(e.to_string())
    }
}

impl From<bprom_tensor::TensorError> for BpromError {
    fn from(e: bprom_tensor::TensorError) -> Self {
        BpromError::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_message() {
        let e: BpromError = bprom_data::DataError::InvalidRequest {
            reason: "xyzzy".into(),
        }
        .into();
        assert!(e.to_string().contains("xyzzy"));
    }
}
