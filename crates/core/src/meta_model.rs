//! Meta-model stage (paper Section 5.2, "Meta Model Training"): build the
//! probe set `D_Q`, extract concatenated confidence vectors from prompted
//! models, and train the random-forest meta-classifier on `D_meta`.

use crate::prompting::LearnedPrompt;
use crate::resume::{decode_rng, encode_rng, Checkpointer, Decoder};
use crate::{BpromConfig, Result, ShadowSet};
use bprom_ckpt::Encoder;
use bprom_data::Dataset;
use bprom_meta::{ForestConfig, RandomForest, TreeConfig};
use bprom_nn::{softmax, Layer, Mode, Sequential};
use bprom_regimes::{vote_features, OracleRegime};
use bprom_tensor::{Rng, Tensor};
use bprom_vp::{BlackBoxModel, VisualPrompt};

/// The fixed probe set `D_Q`: `q` samples from `D_T`'s test split.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSet {
    /// Probe images, `[q, c, t, t]`.
    pub images: Tensor,
    /// Target-domain labels of the probes (used for the prompted-accuracy
    /// feature).
    pub labels: Vec<usize>,
}

impl ProbeSet {
    /// Draws `q` random probes from the target test set (Algorithm 1,
    /// line 14).
    ///
    /// # Errors
    ///
    /// Returns an error if `q` exceeds the test-set size.
    pub fn sample(t_test: &Dataset, q: usize, rng: &mut Rng) -> Result<Self> {
        if q == 0 || q > t_test.len() {
            return Err(crate::BpromError::InvalidConfig {
                reason: format!("probe count {q} invalid for test set of {}", t_test.len()),
            });
        }
        let idx = rng.sample_indices(t_test.len(), q);
        let subset = t_test.select(&idx)?;
        Ok(ProbeSet {
            images: subset.images,
            labels: subset.labels,
        })
    }

    /// Number of probes `q`.
    pub fn len(&self) -> usize {
        self.images.shape()[0]
    }

    /// Whether the probe set is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Turns a `[q, k]` probe confidence matrix into the meta feature vector.
///
/// Two refinements over raw concatenation, both forced by the fact that
/// the backdoor target class `y_t` varies per model:
///
/// 1. **Class canonicalization** — classes are reordered by descending
///    mean probability over the probes, so "one class's probability is
///    inflated everywhere" (the backdoor signature) always lands on the
///    same feature dimensions regardless of which class was the target.
///    Axis-aligned forest splits cannot otherwise express the
///    permutation-invariant pattern.
/// 2. **Aggregate features** — per-rank mean probabilities, mean
///    prediction entropy, and the prompted accuracy (the paper's headline
///    statistic: "BPROM leverages the low classification accuracy of
///    prompted models") appended explicitly, so the forest sees
///    probe-noise-free summaries alongside the raw vectors.
pub fn feature_from_confidences(probs: &Tensor, probe_labels: &[usize]) -> Result<Vec<f32>> {
    let (q, k) = (probs.shape()[0], probs.shape()[1]);
    if probe_labels.len() != q {
        return Err(crate::BpromError::InvalidConfig {
            reason: format!("{} probe labels for {q} probe rows", probe_labels.len()),
        });
    }
    // Mean probability per class over probes.
    let mut mean = vec![0.0f32; k];
    for row in 0..q {
        for c in 0..k {
            mean[c] += probs.data()[row * k + c];
        }
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| mean[b].total_cmp(&mean[a]));
    let mut feature = Vec::with_capacity(q * k + k + 2);
    for row in 0..q {
        for &c in &order {
            feature.push(probs.data()[row * k + c]);
        }
    }
    // Aggregate features: per-rank mean probability (k values) — the
    // rank-0 entry is the "inflated class" statistic — mean prediction
    // entropy, and the prompted accuracy under the identity mapping.
    for &c in &order {
        feature.push(mean[c] / q as f32);
    }
    let mut entropy = 0.0f32;
    for row in 0..q {
        for c in 0..k {
            let p = probs.data()[row * k + c].max(1e-9);
            entropy -= p * p.ln();
        }
    }
    feature.push(entropy / q as f32);
    let mut correct = 0usize;
    for (row, &label) in probe_labels.iter().enumerate() {
        let slice = &probs.data()[row * k..(row + 1) * k];
        let mut best = 0usize;
        for c in 1..k {
            if slice[c] > slice[best] {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    feature.push(correct as f32 / q as f32);
    Ok(feature)
}

/// Extracts the meta feature of a *white-box* (shadow) model: canonicalized
/// prompted confidence vectors `f(x_Q^1) || ... || f(x_Q^q)` plus the
/// prompted-accuracy feature.
///
/// # Errors
///
/// Propagates prompting/forward failures.
pub fn probe_features_whitebox(
    model: &mut Sequential,
    prompt: &VisualPrompt,
    probes: &ProbeSet,
) -> Result<Vec<f32>> {
    probe_features_whitebox_regime(model, prompt, probes, OracleRegime::FullScores)
}

/// Extracts the meta feature of a *black-box* (suspicious) model through
/// queries only.
///
/// # Errors
///
/// Propagates prompting/query failures.
pub fn probe_features_blackbox(
    oracle: &dyn BlackBoxModel,
    prompt: &VisualPrompt,
    probes: &ProbeSet,
) -> Result<Vec<f32>> {
    probe_features_blackbox_regime(oracle, prompt, probes, OracleRegime::FullScores)
}

/// The regime-aware meta feature for a `[q, k]` probe confidence matrix:
/// degrades `probs` to the regime's wire shape first (idempotent, so a
/// matrix an oracle already served under the regime passes through
/// unchanged), then extracts either the canonical soft-score feature
/// ([`feature_from_confidences`], with top-k rows renormalized to their
/// surviving mass) or — under a label-only contract — the vote-count
/// feature ([`bprom_regimes::vote_features`], length `k + 3`).
///
/// Training (white-box shadows, full softmax available) and inference
/// (black-box oracle enforcing the regime) both funnel through this
/// function, which is what keeps the two feature distributions matched:
/// the meta forest never sees soft scores the deployed endpoint would
/// withhold.
///
/// # Errors
///
/// Propagates feature-extraction failures.
pub fn regime_feature(
    regime: OracleRegime,
    mut probs: Tensor,
    probe_labels: &[usize],
) -> Result<Vec<f32>> {
    regime.prepare_confidences(&mut probs);
    if regime.has_soft_scores() {
        feature_from_confidences(&probs, probe_labels)
    } else {
        Ok(vote_features(&probs, probe_labels))
    }
}

/// [`probe_features_whitebox`] under a declared [`OracleRegime`]: the
/// shadow's full softmax is degraded to the regime's wire shape before
/// feature extraction, matching what a black-box endpoint would serve.
///
/// # Errors
///
/// Propagates prompting/forward failures.
pub fn probe_features_whitebox_regime(
    model: &mut Sequential,
    prompt: &VisualPrompt,
    probes: &ProbeSet,
    regime: OracleRegime,
) -> Result<Vec<f32>> {
    let prompted = prompt.apply_batch(&probes.images)?;
    let logits = model.forward(&prompted, Mode::Eval)?;
    let probs = softmax(&logits)?;
    regime_feature(regime, probs, &probes.labels)
}

/// [`probe_features_blackbox`] under a declared [`OracleRegime`]. The
/// degrade step is idempotent, so this is correct whether the oracle
/// natively enforces the regime or serves full scores.
///
/// # Errors
///
/// Propagates prompting/query failures.
pub fn probe_features_blackbox_regime(
    oracle: &dyn BlackBoxModel,
    prompt: &VisualPrompt,
    probes: &ProbeSet,
    regime: OracleRegime,
) -> Result<Vec<f32>> {
    let prompted = prompt.apply_batch(&probes.images)?;
    let probs = oracle.query(&prompted)?;
    regime_feature(regime, probs, &probes.labels)
}

/// Builds `D_meta` from the prompted shadows and trains the random-forest
/// meta-classifier (Algorithm 1, lines 15–25).
///
/// # Errors
///
/// Propagates feature-extraction and forest-training failures.
pub fn train_meta(
    config: &BpromConfig,
    shadows: &mut ShadowSet,
    prompts: &[LearnedPrompt],
    probes: &ProbeSet,
    rng: &mut Rng,
) -> Result<RandomForest> {
    train_meta_ckpt(config, shadows, prompts, probes, rng, None)
}

/// Checkpointed variant of [`train_meta`]: the fitted forest is
/// snapshotted (unit `meta`) together with the RNG state at completion
/// — forest training consumes the caller's stream directly, so the
/// restore path must also restore the stream position to keep the
/// continued run bit-identical.
///
/// # Errors
///
/// Propagates feature-extraction, forest-training and checkpoint
/// failures.
pub fn train_meta_ckpt(
    config: &BpromConfig,
    shadows: &mut ShadowSet,
    prompts: &[LearnedPrompt],
    probes: &ProbeSet,
    rng: &mut Rng,
    ckpt: Option<&Checkpointer>,
) -> Result<RandomForest> {
    if let Some(ck) = ckpt {
        if ck.is_done("meta") {
            let bytes = ck.load_artifact("meta")?;
            let mut dec = Decoder::new(&bytes);
            let forest = RandomForest::restore(&mut dec)?;
            let restored = decode_rng(&mut dec)?;
            dec.finish()?;
            *rng = restored;
            return Ok(forest);
        }
    }
    let mut features = Vec::with_capacity(shadows.len());
    {
        bprom_obs::span!("build_meta_dataset");
        for (shadow, learned) in shadows.shadows.iter_mut().zip(prompts) {
            features.push(probe_features_whitebox_regime(
                &mut shadow.model,
                &learned.prompt,
                probes,
                config.regime,
            )?);
            bprom_obs::counter_add("meta.features", 1);
        }
    }
    let labels = shadows.labels();
    bprom_obs::span!("forest_fit");
    let forest = RandomForest::fit(
        &features,
        &labels,
        &ForestConfig {
            trees: config.forest_trees,
            tree: TreeConfig::default(),
        },
        rng,
    )?;
    bprom_obs::log_event(
        "meta.forest_fit",
        [
            ("shadows", features.len().into()),
            ("trees", config.forest_trees.into()),
        ],
    );
    if let Some(ck) = ckpt {
        let mut enc = Encoder::new();
        forest.persist(&mut enc);
        encode_rng(&mut enc, rng);
        ck.save_artifact("meta", enc)?;
        ck.mark_done("meta")?;
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_vp::QueryOracle;

    #[test]
    fn probe_set_sampling() {
        let mut rng = Rng::new(0);
        let t = SynthDataset::Stl10.generate(4, 16, 1).unwrap();
        let probes = ProbeSet::sample(&t, 8, &mut rng).unwrap();
        assert_eq!(probes.len(), 8);
        assert!(ProbeSet::sample(&t, 0, &mut rng).is_err());
        assert!(ProbeSet::sample(&t, 1000, &mut rng).is_err());
    }

    #[test]
    fn whitebox_and_blackbox_features_agree() {
        let mut rng = Rng::new(1);
        let t = SynthDataset::Stl10.generate(3, 16, 2).unwrap();
        let probes = ProbeSet::sample(&t, 5, &mut rng).unwrap();
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        let mut model = mlp(&spec, &mut rng).unwrap();
        let white = probe_features_whitebox(&mut model, &prompt, &probes).unwrap();
        let oracle = QueryOracle::new(model, 10);
        let black = probe_features_blackbox(&oracle, &prompt, &probes).unwrap();
        assert_eq!(white.len(), 5 * 10 + 10 + 2);
        for (w, b) in white.iter().zip(&black) {
            assert!((w - b).abs() < 1e-6);
        }
    }

    #[test]
    fn regime_features_match_across_box_boundaries() {
        // The contract behind per-regime meta forests: the white-box
        // (training) and black-box (inference) feature paths must agree
        // under every regime, including against an oracle that natively
        // enforces the regime (degrade idempotence).
        use bprom_regimes::RegimeOracle;
        let mut rng = Rng::new(3);
        let t = SynthDataset::Stl10.generate(3, 16, 2).unwrap();
        let probes = ProbeSet::sample(&t, 5, &mut rng).unwrap();
        let prompt = VisualPrompt::random(3, 16, 4, &mut rng).unwrap();
        let spec = ModelSpec::new(3, 16, 10);
        for regime in [
            OracleRegime::FullScores,
            OracleRegime::Quantized(2),
            OracleRegime::TopK(3),
            OracleRegime::LabelOnly,
        ] {
            let mut model = mlp(&spec, &mut rng).unwrap();
            let white =
                probe_features_whitebox_regime(&mut model, &prompt, &probes, regime).unwrap();
            let oracle = QueryOracle::new(model, 10);
            let wrapped = RegimeOracle::new(&oracle, regime);
            let black = probe_features_blackbox_regime(&wrapped, &prompt, &probes, regime).unwrap();
            let expected = if regime.has_soft_scores() {
                5 * 10 + 10 + 2
            } else {
                10 + 3
            };
            assert_eq!(white.len(), expected, "{regime}");
            assert_eq!(black.len(), expected, "{regime}");
            for (w, b) in white.iter().zip(&black) {
                assert!((w - b).abs() < 1e-6, "{regime}: {w} vs {b}");
            }
        }
    }
}
