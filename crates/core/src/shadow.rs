//! Shadow-model generation (paper Section 5.2, "Generating Shadow
//! Models"): clean shadows trained on `D_S`, backdoor shadows trained on
//! poisoned copies `D_P` with per-shadow trigger/target variation.

use crate::resume::{decode_model_into, encode_model, Checkpointer, Decoder};
use crate::{BpromConfig, Result};
use bprom_attacks::{poison_dataset, PoisonConfig};
use bprom_ckpt::Encoder;
use bprom_data::Dataset;
use bprom_nn::models::{build, ModelSpec};
use bprom_nn::{Sequential, Trainer};
use bprom_tensor::Rng;

/// Placeholder model used when a shadow is temporarily moved into a query
/// oracle (swapped back immediately afterwards).
pub(crate) fn empty_model() -> Sequential {
    Sequential::new(Vec::new())
}

/// Rebuilds a journalled shadow from its artifact snapshot: a fresh
/// skeleton of the configured architecture (initialized from the
/// shadow's private forked stream, which is then discarded) receives the
/// snapshotted parameters and buffers.
fn restore_shadow(
    ck: &Checkpointer,
    unit: &str,
    config: &BpromConfig,
    spec: &ModelSpec,
    rng: &mut Rng,
) -> Result<ShadowModel> {
    let bytes = ck.load_artifact(unit)?;
    let mut dec = Decoder::new(&bytes);
    let backdoored = dec.get_bool()?;
    let target_class = if dec.get_bool()? {
        Some(dec.get_usize()?)
    } else {
        None
    };
    let mut model = build(config.architecture, spec, rng)?;
    decode_model_into(&mut dec, &mut model)?;
    dec.finish()?;
    Ok(ShadowModel {
        model,
        backdoored,
        target_class,
    })
}

/// One trained shadow model plus its ground-truth label.
pub struct ShadowModel {
    /// The trained classifier.
    pub model: Sequential,
    /// Whether this shadow was trained on a poisoned dataset.
    pub backdoored: bool,
    /// The backdoor target class, for backdoored shadows.
    pub target_class: Option<usize>,
}

impl std::fmt::Debug for ShadowModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowModel")
            .field("backdoored", &self.backdoored)
            .field("target_class", &self.target_class)
            .finish()
    }
}

/// The full shadow-model set of a BPROM detector.
#[derive(Debug)]
pub struct ShadowSet {
    /// All shadows, clean first.
    pub shadows: Vec<ShadowModel>,
}

impl ShadowSet {
    /// Trains `clean_shadows` clean + `backdoor_shadows` poisoned shadow
    /// models on (copies of) `ds`, following Algorithm 1 lines 2–8.
    ///
    /// Each backdoored shadow draws its own trigger instance and target
    /// class (paper: "by sampling different combinations of backdoor
    /// patterns (m, t, α, y_t), various `D_P` can be generated").
    ///
    /// # Errors
    ///
    /// Propagates training/poisoning failures.
    pub fn train(config: &BpromConfig, ds: &Dataset, rng: &mut Rng) -> Result<Self> {
        Self::train_ckpt(config, ds, rng, None)
    }

    /// Checkpointed variant of [`ShadowSet::train`]: each trained shadow
    /// is snapshotted (unit `shadow-<i>`) and journalled, and shadows the
    /// journal marks done are restored instead of retrained.
    ///
    /// Each shadow trains from its own pre-forked RNG stream, so a
    /// restored shadow simply discards that stream — no RNG state needs
    /// recording, and the caller's stream is untouched either way.
    ///
    /// # Errors
    ///
    /// Propagates training/poisoning and checkpoint failures.
    pub fn train_ckpt(
        config: &BpromConfig,
        ds: &Dataset,
        rng: &mut Rng,
        ckpt: Option<&Checkpointer>,
    ) -> Result<Self> {
        let spec = ModelSpec::new(ds.channels(), ds.image_size(), ds.num_classes);
        let trainer = Trainer::new(config.train);
        // Fork one child generator per shadow *up front, in shadow order*.
        // Every shadow then trains from its own stream regardless of which
        // worker runs it, so the set is bit-identical at any thread count.
        let mut jobs: Vec<(usize, bool, Rng)> =
            Vec::with_capacity(config.clean_shadows + config.backdoor_shadows);
        for i in 0..config.clean_shadows {
            jobs.push((i, false, rng.fork()));
        }
        for i in 0..config.backdoor_shadows {
            jobs.push((config.clean_shadows + i, true, rng.fork()));
        }
        let timed = bprom_obs::enabled();
        let shadows = bprom_par::par_map(jobs, |(i, backdoored, mut rng)| -> Result<ShadowModel> {
            let unit = format!("shadow-{i}");
            if let Some(ck) = ckpt {
                if ck.is_done(&unit) {
                    return restore_shadow(ck, &unit, config, &spec, &mut rng);
                }
            }
            let start = timed.then(std::time::Instant::now);
            let (model, target_class) = if backdoored {
                // Fresh trigger instance per shadow (random pattern
                // components draw from the shadow's stream), fresh target.
                let attack = config.shadow_attack.build(ds.image_size(), &mut rng)?;
                let target = rng.below(ds.num_classes);
                let defaults = config.shadow_attack.default_config(target);
                let cfg = PoisonConfig::new(defaults.poison_rate, defaults.cover_rate, target);
                let poisoned = poison_dataset(ds, attack.as_ref(), &cfg, &mut rng)?;
                let mut model = build(config.architecture, &spec, &mut rng)?;
                trainer.fit(
                    &mut model,
                    &poisoned.dataset.images,
                    &poisoned.dataset.labels,
                    &mut rng,
                )?;
                (model, Some(target))
            } else {
                let mut model = build(config.architecture, &spec, &mut rng)?;
                trainer.fit(&mut model, &ds.images, &ds.labels, &mut rng)?;
                (model, None)
            };
            if let Some(start) = start {
                bprom_obs::observe("shadow.train_ns", start.elapsed().as_nanos() as u64);
                bprom_obs::counter_add(
                    if backdoored {
                        "shadows.backdoored"
                    } else {
                        "shadows.clean"
                    },
                    1,
                );
                bprom_obs::log_event(
                    "shadow.trained",
                    [("index", i.into()), ("backdoored", backdoored.into())],
                );
            }
            if let Some(ck) = ckpt {
                let mut enc = Encoder::new();
                enc.put_bool(backdoored);
                enc.put_bool(target_class.is_some());
                if let Some(t) = target_class {
                    enc.put_usize(t);
                }
                encode_model(&mut enc, &model);
                ck.save_artifact(&unit, enc)?;
                ck.mark_done(&unit)?;
            }
            Ok(ShadowModel {
                model,
                backdoored,
                target_class,
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(ShadowSet { shadows })
    }

    /// Number of shadow models.
    pub fn len(&self) -> usize {
        self.shadows.len()
    }

    /// Whether the set is empty (never true for trained sets).
    pub fn is_empty(&self) -> bool {
        self.shadows.is_empty()
    }

    /// Ground-truth labels, in shadow order.
    pub fn labels(&self) -> Vec<bool> {
        self.shadows.iter().map(|s| s.backdoored).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_data::SynthDataset;
    use bprom_nn::TrainConfig;

    #[test]
    fn trains_mixed_shadow_set() {
        let mut rng = Rng::new(0);
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 2;
        config.backdoor_shadows = 2;
        config.train = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        let ds = SynthDataset::Cifar10.generate(10, 16, 1).unwrap();
        let set = ShadowSet::train(&config, &ds, &mut rng).unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.labels(), vec![false, false, true, true]);
        for s in &set.shadows {
            assert_eq!(s.backdoored, s.target_class.is_some());
        }
    }

    #[test]
    fn backdoor_shadows_vary_targets() {
        let mut rng = Rng::new(3);
        let mut config = BpromConfig::fast(SynthDataset::Cifar10, SynthDataset::Stl10);
        config.clean_shadows = 1;
        config.backdoor_shadows = 6;
        config.train = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        let ds = SynthDataset::Cifar10.generate(8, 16, 2).unwrap();
        let set = ShadowSet::train(&config, &ds, &mut rng).unwrap();
        let targets: Vec<usize> = set.shadows.iter().filter_map(|s| s.target_class).collect();
        assert_eq!(targets.len(), 6);
        // With 6 draws over 10 classes, expect at least two distinct targets.
        let mut distinct = targets.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() >= 2, "targets {targets:?}");
    }
}
