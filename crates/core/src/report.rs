//! Detector evaluation: run a detector against a suspicious-model zoo and
//! compute the paper's metrics (AUROC, F1).

use crate::{Bprom, Result, SuspiciousModel};
use bprom_metrics::{auroc, f1_score};
use bprom_tensor::Rng;
use bprom_vp::QueryOracle;

/// Aggregated detection results over a zoo.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectionReport {
    /// Meta-classifier scores, in zoo order.
    pub scores: Vec<f32>,
    /// Ground-truth labels, in zoo order.
    pub labels: Vec<bool>,
    /// Area under the ROC curve.
    pub auroc: f32,
    /// F1 score at the 0.5 decision threshold.
    pub f1: f32,
    /// Mean black-box queries per inspected model.
    pub mean_queries: f32,
}

/// Inspects every model in the zoo and computes AUROC / F1.
///
/// Consumes the zoo because inspection requires exclusive query access to
/// each model.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain both
/// clean and backdoored models.
pub fn evaluate_detector(
    detector: &Bprom,
    zoo: Vec<SuspiciousModel>,
    rng: &mut Rng,
) -> Result<DetectionReport> {
    let num_classes = detector.config().source_dataset.num_classes();
    let mut scores = Vec::with_capacity(zoo.len());
    let mut labels = Vec::with_capacity(zoo.len());
    let mut total_queries = 0u64;
    let n = zoo.len();
    for suspicious in zoo {
        let mut oracle = QueryOracle::new(suspicious.model, num_classes);
        let verdict = detector.inspect(&mut oracle, rng)?;
        scores.push(verdict.score);
        labels.push(suspicious.backdoored);
        total_queries += verdict.queries;
    }
    let auroc = auroc(&scores, &labels)?;
    let predictions: Vec<bool> = scores.iter().map(|&s| s > 0.5).collect();
    let f1 = f1_score(&predictions, &labels)?;
    Ok(DetectionReport {
        scores,
        labels,
        auroc,
        f1,
        mean_queries: total_queries as f32 / n.max(1) as f32,
    })
}

impl DetectionReport {
    /// Detection accuracy at an arbitrary decision threshold.
    pub fn accuracy_at(&self, threshold: f32) -> f32 {
        if self.scores.is_empty() {
            return 0.0;
        }
        let correct = self
            .scores
            .iter()
            .zip(&self.labels)
            .filter(|(&s, &l)| (s > threshold) == l)
            .count();
        correct as f32 / self.scores.len() as f32
    }

    /// The threshold in `[0, 1]` maximizing detection accuracy on this
    /// report (useful for calibrating a deployment threshold on shadow
    /// verdicts).
    pub fn best_threshold(&self) -> f32 {
        let mut candidates: Vec<f32> = self.scores.clone();
        candidates.push(0.5);
        candidates
            .into_iter()
            .max_by(|&a, &b| self.accuracy_at(a).total_cmp(&self.accuracy_at(b)))
            .unwrap_or(0.5)
    }

    /// Number of inspected models.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Serializes the report to JSON (for experiment artifacts).
    ///
    /// # Errors
    ///
    /// Returns [`crate::BpromError::Data`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| crate::BpromError::Data(format!("serialize report: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end evaluation is covered by the workspace integration tests
    // (tests/bprom_detection.rs); here we only check report invariants via
    // the public constructor path used there.
    fn sample_report() -> DetectionReport {
        DetectionReport {
            scores: vec![0.9, 0.1, 0.6, 0.4],
            labels: vec![true, false, true, false],
            auroc: 1.0,
            f1: 1.0,
            mean_queries: 100.0,
        }
    }

    #[test]
    fn report_fields_consistent() {
        let report = sample_report();
        assert_eq!(report.scores.len(), report.labels.len());
        assert_eq!(report.len(), 4);
        assert!(!report.is_empty());
    }

    #[test]
    fn accuracy_at_threshold() {
        let report = sample_report();
        assert_eq!(report.accuracy_at(0.5), 1.0);
        // Threshold above every score: all predicted clean, half right.
        assert_eq!(report.accuracy_at(0.95), 0.5);
    }

    #[test]
    fn best_threshold_achieves_max_accuracy() {
        let report = sample_report();
        let t = report.best_threshold();
        assert_eq!(report.accuracy_at(t), 1.0);
    }

    #[test]
    fn json_round_trip() {
        let report = sample_report();
        let json = report.to_json().unwrap();
        let back: DetectionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
