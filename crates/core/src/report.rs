//! Detector evaluation: run a detector against a suspicious-model zoo and
//! compute the paper's metrics (AUROC, F1) plus the exact query budget.

use crate::resume::Checkpointer;
use crate::{Bprom, Result, SuspiciousModel, Verdict};
use bprom_metrics::{auroc, f1_score};
use bprom_obs::{FromJson, ToJson, Value};
use bprom_qcache::CachingOracle;
use bprom_tensor::Rng;
use bprom_verdict::{sink, AuditRecord, IncidentReport, Mode, RulePolicy};
use bprom_vp::{BlackBoxModel, QueryOracle};

/// The workload scenario an audited system belongs to: where, in the
/// system's training pipeline, a backdoor could have entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scenario {
    /// The classic setting: one model trained end-to-end on downstream
    /// data that may have been poisoned.
    #[default]
    Downstream,
    /// The BadBone setting: a frozen pretrained backbone (possibly
    /// poisoned upstream) adapted with a visual prompt + label map on
    /// *clean* downstream data. Accuracy collapse here implicates the
    /// backbone itself (rule `B013`), not the tuning data.
    Backbone,
}

impl Scenario {
    /// Stable wire form recorded in reports and incidents.
    pub fn as_wire(self) -> &'static str {
        match self {
            Scenario::Downstream => "downstream",
            Scenario::Backbone => "backbone",
        }
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Option<Scenario> {
        match s {
            "downstream" => Some(Scenario::Downstream),
            "backbone" => Some(Scenario::Backbone),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_wire())
    }
}

/// One sealed entry of an oracle zoo: any [`BlackBoxModel`] with its
/// ground-truth label and a stable fingerprint taken before sealing.
/// The generalization of [`SuspiciousModel`] that lets composite systems
/// (e.g. the backbone scenario's frozen backbone + visual prompt) flow
/// through [`evaluate_oracle_zoo`] unchanged.
#[derive(Debug)]
pub struct ZooEntry<B: BlackBoxModel> {
    /// Stable fingerprint over the system's parameters (audit identity).
    pub fingerprint: String,
    /// Ground-truth label: whether the system carries a backdoor.
    pub backdoored: bool,
    /// The sealed query-only oracle.
    pub oracle: B,
}

/// Aggregated detection results over a zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Meta-classifier scores, in zoo order.
    pub scores: Vec<f32>,
    /// Ground-truth labels, in zoo order.
    pub labels: Vec<bool>,
    /// Prompted-model accuracy on the target training split, in zoo
    /// order (see `Verdict::prompted_accuracy`).
    pub prompted_accuracies: Vec<f32>,
    /// Area under the ROC curve.
    pub auroc: f32,
    /// F1 score at the 0.5 decision threshold.
    pub f1: f32,
    /// Mean black-box queries per inspected model.
    pub mean_queries: f32,
    /// Total black-box queries over the whole zoo.
    pub total_queries: u64,
    /// Mean wall-clock per inspection, in milliseconds.
    pub mean_inspect_ms: f32,
    /// Transient faults injected by hostile oracle stacks over the whole
    /// zoo (0 when inspecting plain oracles).
    pub total_faults: u64,
    /// Retry attempts absorbed over the whole zoo.
    pub total_retries: u64,
    /// CMA-ES candidates penalized (retry budget exhausted) over the
    /// whole zoo.
    pub total_penalized: u64,
    /// Query rows served from the content-addressed cache over the whole
    /// zoo (0 with `BPROM_QCACHE=off`; see `bprom-qcache`).
    pub total_cache_hits: u64,
    /// Deduplicated query rows the cache forwarded to the provider.
    pub total_cache_misses: u64,
    /// Cache entries evicted by a bounded-memory policy.
    pub total_cache_evictions: u64,
    /// One explainable audit record per inspected model, in zoo order:
    /// the model's weight fingerprint, its wall-clock-free signals, and
    /// the findings the detector's rule policy raised (see
    /// `bprom-verdict`). Input to [`DetectionReport::incident`].
    pub audits: Vec<AuditRecord>,
    /// Wire form of the workload scenario the zoo was audited under
    /// (`"downstream"` or `"backbone"`; see [`Scenario`]).
    pub scenario: String,
}

/// Inspects every model in the zoo and computes AUROC / F1.
///
/// Consumes the zoo because inspection requires exclusive query access to
/// each model.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain both
/// clean and backdoored models.
pub fn evaluate_detector(
    detector: &Bprom,
    zoo: Vec<SuspiciousModel>,
    rng: &mut Rng,
) -> Result<DetectionReport> {
    evaluate_detector_via(detector, zoo, rng, |detector, oracle, rng| {
        detector.inspect(&oracle, rng)
    })
}

/// Variant of [`evaluate_detector`] that delegates each inspection to a
/// caller-supplied closure. The closure receives the sealed base oracle
/// by value — already wrapped in the detector's query cache (see
/// `bprom-qcache`; `CacheConfig::off()` makes the wrapper a passthrough)
/// — and may stack arbitrary decorators on it (fault injection, retries,
/// extra metering — see `bprom-faults`) before calling
/// [`Bprom::inspect`]; fault/retry/cache totals from the verdicts are
/// aggregated into the report.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain both
/// clean and backdoored models.
pub fn evaluate_detector_via<F>(
    detector: &Bprom,
    zoo: Vec<SuspiciousModel>,
    rng: &mut Rng,
    mut inspect: F,
) -> Result<DetectionReport>
where
    F: FnMut(&Bprom, CachingOracle<QueryOracle>, &mut Rng) -> Result<Verdict>,
{
    evaluate_detector_ckpt(detector, zoo, rng, None, |detector, oracle, rng, _, _| {
        inspect(detector, oracle, rng)
    })
}

/// Checkpointed variant of [`evaluate_detector_via`]: the closure
/// additionally receives the run's [`Checkpointer`] (if any) and the
/// zoo index as a unit name, so it can route each inspection through
/// [`Bprom::inspect_ckpt`]. Completed inspections are then skipped on
/// resume and a killed run continues mid-CMA-ES-search.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain
/// both clean and backdoored models.
pub fn evaluate_detector_ckpt<F>(
    detector: &Bprom,
    zoo: Vec<SuspiciousModel>,
    rng: &mut Rng,
    ckpt: Option<&Checkpointer>,
    inspect: F,
) -> Result<DetectionReport>
where
    F: FnMut(
        &Bprom,
        CachingOracle<QueryOracle>,
        &mut Rng,
        Option<&Checkpointer>,
        &str,
    ) -> Result<Verdict>,
{
    let num_classes = detector.config().source_dataset.num_classes();
    let entries: Vec<ZooEntry<QueryOracle>> = zoo
        .into_iter()
        .map(|suspicious| ZooEntry {
            // The fingerprint must be taken before the oracle seals the
            // model behind the query boundary.
            fingerprint: suspicious.fingerprint(),
            backdoored: suspicious.backdoored,
            oracle: QueryOracle::new(suspicious.model, num_classes),
        })
        .collect();
    evaluate_oracle_zoo_ckpt(detector, Scenario::Downstream, entries, rng, ckpt, inspect)
}

/// [`evaluate_oracle_zoo_ckpt`] without checkpointing: inspects every
/// sealed oracle with the plain [`Bprom::inspect`] path.
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain
/// both clean and backdoored entries.
pub fn evaluate_oracle_zoo<B: BlackBoxModel>(
    detector: &Bprom,
    scenario: Scenario,
    zoo: Vec<ZooEntry<B>>,
    rng: &mut Rng,
) -> Result<DetectionReport> {
    evaluate_oracle_zoo_ckpt(
        detector,
        scenario,
        zoo,
        rng,
        None,
        |detector, oracle, rng, _, _| detector.inspect(&oracle, rng),
    )
}

/// The fully general evaluation loop: any [`BlackBoxModel`] zoo, any
/// workload [`Scenario`], any inspection decoration. Both
/// [`evaluate_detector_ckpt`] (downstream `SuspiciousModel` zoos) and the
/// backbone scenario's composite systems route through here, so metric
/// aggregation, audit-record assembly, and the B013 scenario wiring live
/// in exactly one place.
///
/// Under [`Scenario::Backbone`] every audit's signals carry the
/// clean-downstream-training attestation, so prompted-accuracy collapse
/// additionally raises `B013` ("backbone-implanted backdoor suspected").
///
/// # Errors
///
/// Propagates inspection failures; AUROC requires the zoo to contain
/// both clean and backdoored entries.
pub fn evaluate_oracle_zoo_ckpt<B, F>(
    detector: &Bprom,
    scenario: Scenario,
    zoo: Vec<ZooEntry<B>>,
    rng: &mut Rng,
    ckpt: Option<&Checkpointer>,
    mut inspect: F,
) -> Result<DetectionReport>
where
    B: BlackBoxModel,
    F: FnMut(&Bprom, CachingOracle<B>, &mut Rng, Option<&Checkpointer>, &str) -> Result<Verdict>,
{
    bprom_obs::span!("evaluate_detector");
    let mut scores = Vec::with_capacity(zoo.len());
    let mut labels = Vec::with_capacity(zoo.len());
    let mut prompted_accuracies = Vec::with_capacity(zoo.len());
    let mut total_queries = 0u64;
    let mut total_ns = 0u64;
    let mut total_faults = 0u64;
    let mut total_retries = 0u64;
    let mut total_penalized = 0u64;
    let mut total_cache_hits = 0u64;
    let mut total_cache_misses = 0u64;
    let mut total_cache_evictions = 0u64;
    let mut audits = Vec::with_capacity(zoo.len());
    let n = zoo.len();
    for (i, entry) in zoo.into_iter().enumerate() {
        let fingerprint = entry.fingerprint;
        // One cache per audited system: the cache key is the query
        // content only, so sharing entries across models would serve one
        // model's confidences for another.
        let oracle = CachingOracle::new(entry.oracle, detector.config().cache);
        let verdict = inspect(detector, oracle, rng, ckpt, &i.to_string())?;
        scores.push(verdict.score);
        labels.push(entry.backdoored);
        prompted_accuracies.push(verdict.prompted_accuracy);
        total_queries += verdict.queries;
        total_ns += verdict.budget.total_ns;
        total_faults += verdict.budget.faults_injected;
        total_retries += verdict.budget.retries;
        total_penalized += verdict.budget.penalized_candidates;
        total_cache_hits += verdict.budget.cache_hits;
        total_cache_misses += verdict.budget.cache_misses;
        total_cache_evictions += verdict.budget.cache_evictions;
        // Rules stage: every inspection becomes an explainable audit
        // record, carried by the report and handed to any installed
        // incident sink (e.g. the bench harness's TelemetryGuard). The
        // scenario sets the clean-downstream attestation *before* rule
        // evaluation so B013 can co-fire with accuracy collapse.
        let mut signals = verdict.signals();
        signals.clean_downstream_training = scenario == Scenario::Backbone;
        let record = AuditRecord {
            model: fingerprint,
            regime: detector.config().regime.as_wire(),
            scenario: scenario.as_wire().to_string(),
            findings: detector.config().policy.evaluate(&signals),
            signals,
        };
        bprom_obs::log_event(
            "audit.findings",
            [
                ("model", record.model.as_str().into()),
                ("zoo_index", (i as u64).into()),
                ("findings", record.findings.len().into()),
                (
                    "summary",
                    bprom_verdict::summarize_findings(&record.findings).into(),
                ),
            ],
        );
        sink::record(record.clone());
        audits.push(record);
    }
    let auroc = auroc(&scores, &labels)?;
    let predictions: Vec<bool> = scores.iter().map(|&s| s > 0.5).collect();
    let f1 = f1_score(&predictions, &labels)?;
    bprom_obs::log_event(
        "report.metrics",
        [
            ("models", n.into()),
            ("auroc", f64::from(auroc).into()),
            ("f1", f64::from(f1).into()),
            ("total_queries", total_queries.into()),
        ],
    );
    Ok(DetectionReport {
        scores,
        labels,
        prompted_accuracies,
        auroc,
        f1,
        mean_queries: total_queries as f32 / n.max(1) as f32,
        total_queries,
        mean_inspect_ms: total_ns as f32 / 1e6 / n.max(1) as f32,
        total_faults,
        total_retries,
        total_penalized,
        total_cache_hits,
        total_cache_misses,
        total_cache_evictions,
        audits,
        scenario: scenario.as_wire().to_string(),
    })
}

impl DetectionReport {
    /// Runs the verdict pipeline's correlate + respond stages over this
    /// report's audit records and returns the machine-readable incident
    /// report (`incident.json` content).
    pub fn incident(&self, label: &str, policy: &RulePolicy, mode: Mode) -> IncidentReport {
        IncidentReport::assemble(label, policy, mode, &self.audits)
    }

    /// Per-audit cache hit rate, in zoo order: the fraction of each
    /// inspection's logical query rows the content-addressed cache
    /// served without provider spend (`hits / (hits + misses)` from the
    /// audit's signals; 0 for an uncached inspection). Derived from the
    /// per-audit records so the serialized report shape is unchanged.
    pub fn cache_hit_rates(&self) -> Vec<f32> {
        self.audits
            .iter()
            .map(|a| {
                let total = a.signals.cache_hits + a.signals.cache_misses;
                if total == 0 {
                    0.0
                } else {
                    a.signals.cache_hits as f32 / total as f32
                }
            })
            .collect()
    }

    /// Aggregate cache hit rate over the whole report
    /// (`total_cache_hits / (total_cache_hits + total_cache_misses)`).
    /// Single-model audits sit below 1 % here (see BENCH_qcache.json);
    /// fleet audits that reuse a model's cache across repeated
    /// inspections are where this figure becomes material.
    pub fn cache_hit_rate(&self) -> f32 {
        let total = self.total_cache_hits + self.total_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.total_cache_hits as f32 / total as f32
        }
    }

    /// Detection accuracy at an arbitrary decision threshold.
    pub fn accuracy_at(&self, threshold: f32) -> f32 {
        if self.scores.is_empty() {
            return 0.0;
        }
        let correct = self
            .scores
            .iter()
            .zip(&self.labels)
            .filter(|(&s, &l)| (s > threshold) == l)
            .count();
        correct as f32 / self.scores.len() as f32
    }

    /// The threshold in `[0, 1]` maximizing detection accuracy on this
    /// report (useful for calibrating a deployment threshold on shadow
    /// verdicts).
    pub fn best_threshold(&self) -> f32 {
        let mut candidates: Vec<f32> = self.scores.clone();
        candidates.push(0.5);
        candidates
            .into_iter()
            .max_by(|&a, &b| self.accuracy_at(a).total_cmp(&self.accuracy_at(b)))
            .unwrap_or(0.5)
    }

    /// Number of inspected models.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Serializes the report to JSON (for experiment artifacts).
    ///
    /// # Errors
    ///
    /// Infallible in practice; kept as `Result` for API stability.
    pub fn to_json(&self) -> Result<String> {
        Ok(ToJson::to_json(self).to_pretty())
    }

    /// Deserializes a report previously produced by
    /// [`DetectionReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::BpromError::Data`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = Value::parse(json)
            .map_err(|e| crate::BpromError::Data(format!("parse report: {e}")))?;
        FromJson::from_json(&value)
            .map_err(|e| crate::BpromError::Data(format!("decode report: {e}")))
    }
}

impl ToJson for DetectionReport {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("scores", self.scores.to_json()),
            ("labels", self.labels.to_json()),
            ("prompted_accuracies", self.prompted_accuracies.to_json()),
            ("auroc", self.auroc.to_json()),
            ("f1", self.f1.to_json()),
            ("mean_queries", self.mean_queries.to_json()),
            ("total_queries", self.total_queries.to_json()),
            ("mean_inspect_ms", self.mean_inspect_ms.to_json()),
            ("total_faults", self.total_faults.to_json()),
            ("total_retries", self.total_retries.to_json()),
            ("total_penalized", self.total_penalized.to_json()),
            ("total_cache_hits", self.total_cache_hits.to_json()),
            ("total_cache_misses", self.total_cache_misses.to_json()),
            (
                "total_cache_evictions",
                self.total_cache_evictions.to_json(),
            ),
            (
                "audits",
                Value::Array(self.audits.iter().map(ToJson::to_json).collect()),
            ),
            ("scenario", self.scenario.to_json()),
        ])
    }
}

impl FromJson for DetectionReport {
    fn from_json(value: &Value) -> bprom_obs::JsonResult<Self> {
        Ok(DetectionReport {
            scores: FromJson::from_json(value.require("scores")?)?,
            labels: FromJson::from_json(value.require("labels")?)?,
            prompted_accuracies: FromJson::from_json(value.require("prompted_accuracies")?)?,
            auroc: FromJson::from_json(value.require("auroc")?)?,
            f1: FromJson::from_json(value.require("f1")?)?,
            mean_queries: FromJson::from_json(value.require("mean_queries")?)?,
            total_queries: FromJson::from_json(value.require("total_queries")?)?,
            mean_inspect_ms: FromJson::from_json(value.require("mean_inspect_ms")?)?,
            total_faults: FromJson::from_json(value.require("total_faults")?)?,
            total_retries: FromJson::from_json(value.require("total_retries")?)?,
            total_penalized: FromJson::from_json(value.require("total_penalized")?)?,
            total_cache_hits: FromJson::from_json(value.require("total_cache_hits")?)?,
            total_cache_misses: FromJson::from_json(value.require("total_cache_misses")?)?,
            total_cache_evictions: FromJson::from_json(value.require("total_cache_evictions")?)?,
            audits: FromJson::from_json(value.require("audits")?)?,
            scenario: FromJson::from_json(value.require("scenario")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end evaluation is covered by the workspace integration tests
    // (tests/bprom_detection.rs); here we only check report invariants via
    // the public constructor path used there.
    fn sample_report() -> DetectionReport {
        let policy = RulePolicy::default();
        let audits: Vec<AuditRecord> = [0.9f32, 0.1, 0.6, 0.4]
            .iter()
            .zip([0.5f32, 0.75, 0.25, 0.9])
            .enumerate()
            .map(|(i, (&score, prompted_accuracy))| {
                let signals = bprom_verdict::Signals {
                    score,
                    backdoored: score > 0.5,
                    prompted_accuracy,
                    queries: 100,
                    prompt_queries: 80,
                    accuracy_queries: 10,
                    probe_queries: 10,
                    ..Default::default()
                };
                AuditRecord {
                    model: format!("m{i:016x}"),
                    regime: "full".to_string(),
                    scenario: "downstream".to_string(),
                    findings: policy.evaluate(&signals),
                    signals,
                }
            })
            .collect();
        DetectionReport {
            scores: vec![0.9, 0.1, 0.6, 0.4],
            labels: vec![true, false, true, false],
            prompted_accuracies: vec![0.5, 0.75, 0.25, 0.9],
            auroc: 1.0,
            f1: 1.0,
            mean_queries: 100.0,
            total_queries: 400,
            mean_inspect_ms: 12.5,
            total_faults: 7,
            total_retries: 5,
            total_penalized: 2,
            total_cache_hits: 120,
            total_cache_misses: 280,
            total_cache_evictions: 3,
            audits,
            scenario: "downstream".to_string(),
        }
    }

    #[test]
    fn report_fields_consistent() {
        let report = sample_report();
        assert_eq!(report.scores.len(), report.labels.len());
        assert_eq!(report.len(), 4);
        assert!(!report.is_empty());
    }

    #[test]
    fn accuracy_at_threshold() {
        let report = sample_report();
        assert_eq!(report.accuracy_at(0.5), 1.0);
        // Threshold above every score: all predicted clean, half right.
        assert_eq!(report.accuracy_at(0.95), 0.5);
    }

    #[test]
    fn best_threshold_achieves_max_accuracy() {
        let report = sample_report();
        let t = report.best_threshold();
        assert_eq!(report.accuracy_at(t), 1.0);
    }

    #[test]
    fn cache_hit_rates_derive_from_audit_signals() {
        let mut report = sample_report();
        report.audits[0].signals.cache_hits = 30;
        report.audits[0].signals.cache_misses = 70;
        report.audits[1].signals.cache_hits = 0;
        report.audits[1].signals.cache_misses = 100;
        // Audits 2 and 3 ran uncached: no tallies, rate 0.
        let rates = report.cache_hit_rates();
        assert_eq!(rates, vec![0.3, 0.0, 0.0, 0.0]);
        assert!((report.cache_hit_rate() - 0.3).abs() < 1e-6); // 120 / 400
        report.total_cache_hits = 0;
        report.total_cache_misses = 0;
        assert_eq!(report.cache_hit_rate(), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let report = sample_report();
        let json = report.to_json().unwrap();
        let back = DetectionReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(DetectionReport::from_json("{").is_err());
        assert!(DetectionReport::from_json("{\"scores\": []}").is_err());
    }

    #[test]
    fn incident_assembles_from_audit_records() {
        let report = sample_report();
        let incident = report.incident("unit", &RulePolicy::default(), Mode::Strict);
        assert_eq!(incident.audits, 4);
        assert_eq!(incident.incidents.len(), 4);
        // Scores 0.9 and 0.6 exceed the suspicion threshold; 0.9 sits on
        // the Critical cut and quarantines, 0.6 flags.
        assert_eq!(incident.flagged, 1);
        assert_eq!(incident.quarantined, 1);
        // The same evidence in learning mode enforces nothing.
        let learning = report.incident("unit", &RulePolicy::default(), Mode::Learning);
        assert_eq!(learning.flagged, 0);
        assert_eq!(learning.quarantined, 0);
        assert_eq!(
            learning.incidents[0].findings,
            incident.incidents[0].findings
        );
    }
}
