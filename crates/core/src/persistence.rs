//! Model-parameter persistence: save/load trained classifiers so
//! suspicious-model zoos and shadow sets can be reused across experiment
//! runs (JSON via `bprom-obs::json`; the workspace's only I/O format).

use crate::{BpromError, Result};
use bprom_nn::Sequential;
use bprom_obs::{JsonError, Value};
use bprom_tensor::Tensor;
use std::path::Path;

fn tensor_to_value(tensor: &Tensor) -> Value {
    Value::object(vec![
        (
            "dims",
            Value::Array(
                tensor
                    .shape()
                    .iter()
                    .map(|&d| Value::Num(d as f64))
                    .collect(),
            ),
        ),
        (
            "data",
            Value::Array(
                tensor
                    .data()
                    .iter()
                    .map(|&x| Value::Num(f64::from(x)))
                    .collect(),
            ),
        ),
    ])
}

fn tensor_from_value(value: &Value) -> std::result::Result<Tensor, JsonError> {
    let dims: Vec<usize> = value
        .require("dims")?
        .as_array()
        .ok_or_else(|| JsonError::new("dims must be an array"))?
        .iter()
        .map(|d| {
            d.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| JsonError::new("dims must be unsigned integers"))
        })
        .collect::<std::result::Result<_, _>>()?;
    let data: Vec<f32> = value
        .require("data")?
        .as_array()
        .ok_or_else(|| JsonError::new("data must be an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|n| n as f32)
                .ok_or_else(|| JsonError::new("data must be numbers"))
        })
        .collect::<std::result::Result<_, _>>()?;
    Tensor::from_vec(data, &dims).map_err(|e| JsonError::new(format!("bad tensor: {e}")))
}

/// Serializes a model's parameters and state buffers (both in visit
/// order) to a JSON file: `{"params": [...], "buffers": [[...], ...]}`.
///
/// The buffers carry non-trainable state — batch-norm running statistics —
/// without which a reloaded `ResNetMini` classifies through stale
/// normalization. The architecture itself is not stored: loading requires
/// rebuilding the same architecture and calling [`load_params`], which
/// validates every shape.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O or serialization failure.
pub fn save_params(model: &Sequential, path: &Path) -> Result<()> {
    let params = model.export_params();
    let buffers = model.export_buffers();
    let json = Value::object(vec![
        (
            "params",
            Value::Array(params.iter().map(tensor_to_value).collect()),
        ),
        (
            "buffers",
            Value::Array(
                buffers
                    .iter()
                    .map(|b| Value::Array(b.iter().map(|&x| Value::Num(f64::from(x))).collect()))
                    .collect(),
            ),
        ),
    ])
    .to_compact();
    std::fs::write(path, json).map_err(|e| BpromError::Data(format!("write {path:?}: {e}")))?;
    Ok(())
}

/// Loads parameters (and, in the current format, state buffers)
/// previously written by [`save_params`] into a structurally identical
/// model. Legacy files holding a bare JSON array of tensors still load;
/// their buffers keep the model's current values.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O/parse failure and
/// [`BpromError::Training`] on any shape mismatch.
pub fn load_params(model: &mut Sequential, path: &Path) -> Result<()> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| BpromError::Data(format!("read {path:?}: {e}")))?;
    let value = Value::parse(&json).map_err(|e| BpromError::Data(format!("parse: {e}")))?;
    let (params_value, buffers_value) = if value.as_array().is_some() {
        (&value, None)
    } else {
        (
            value
                .require("params")
                .map_err(|e| BpromError::Data(format!("parse: {e}")))?,
            Some(
                value
                    .require("buffers")
                    .map_err(|e| BpromError::Data(format!("parse: {e}")))?,
            ),
        )
    };
    let params: Vec<Tensor> = params_value
        .as_array()
        .ok_or_else(|| BpromError::Data("expected a JSON array of tensors".to_string()))?
        .iter()
        .map(tensor_from_value)
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| BpromError::Data(format!("parse: {e}")))?;
    model.import_params(&params)?;
    if let Some(bv) = buffers_value {
        let buffers: Vec<Vec<f32>> = bv
            .as_array()
            .ok_or_else(|| BpromError::Data("buffers must be an array of arrays".to_string()))?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| {
                        BpromError::Data("buffers must be an array of arrays".to_string())
                    })?
                    .iter()
                    .map(|x| {
                        x.as_f64().map(|n| n as f32).ok_or_else(|| {
                            BpromError::Data("buffer values must be numbers".to_string())
                        })
                    })
                    .collect()
            })
            .collect::<Result<_>>()?;
        model.import_buffers(&buffers)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_nn::{Layer, Mode};
    use bprom_tensor::Rng;

    #[test]
    fn save_load_round_trip() {
        let mut rng = Rng::new(0);
        let spec = ModelSpec::new(3, 8, 4);
        let mut a = mlp(&spec, &mut rng).unwrap();
        let mut b = mlp(&spec, &mut rng).unwrap();
        let probe = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let ya = a.forward(&probe, Mode::Eval).unwrap();
        assert_ne!(ya, b.forward(&probe, Mode::Eval).unwrap());

        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_params(&a, &path).unwrap();
        load_params(&mut b, &path).unwrap();
        assert_eq!(ya, b.forward(&probe, Mode::Eval).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_carries_batchnorm_running_stats() {
        use bprom_nn::BatchNorm2d;
        let mut rng = Rng::new(4);
        let mut a = Sequential::new(vec![Box::new(BatchNorm2d::new(3))]);
        let batch = Tensor::rand_uniform(&[4, 3, 6, 6], 0.0, 1.0, &mut rng);
        // Train-mode forwards move the running statistics off their init.
        a.forward(&batch, Mode::Train).unwrap();
        a.forward(&batch, Mode::Train).unwrap();
        let ya = a.forward(&batch, Mode::Eval).unwrap();

        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batchnorm.json");
        save_params(&a, &path).unwrap();
        let mut b = Sequential::new(vec![Box::new(BatchNorm2d::new(3))]);
        load_params(&mut b, &path).unwrap();
        // Eval output depends on the running statistics, so equality here
        // proves the buffers made the round trip (gamma/beta alone would
        // normalize against the fresh init stats and differ).
        let yb = b.forward(&batch, Mode::Eval).unwrap();
        for (x, y) in ya.data().iter().zip(yb.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_bare_array_files_still_load() {
        let mut rng = Rng::new(5);
        let spec = ModelSpec::new(3, 8, 4);
        let mut a = mlp(&spec, &mut rng).unwrap();
        let mut b = mlp(&spec, &mut rng).unwrap();
        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        // The pre-buffer format: a bare JSON array of tensors.
        let legacy =
            Value::Array(a.export_params().iter().map(tensor_to_value).collect()).to_compact();
        std::fs::write(&path, legacy).unwrap();
        load_params(&mut b, &path).unwrap();
        let probe = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        assert_eq!(
            a.forward(&probe, Mode::Eval).unwrap(),
            b.forward(&probe, Mode::Eval).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = Rng::new(1);
        let small = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        let mut big = mlp(&ModelSpec::new(3, 8, 10), &mut rng).unwrap();
        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.json");
        save_params(&small, &path).unwrap();
        assert!(load_params(&mut big, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_error() {
        let mut rng = Rng::new(2);
        let mut model = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        assert!(load_params(&mut model, Path::new("/nonexistent/model.json")).is_err());
    }
}
