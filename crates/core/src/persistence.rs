//! Model-parameter persistence: save/load trained classifiers so
//! suspicious-model zoos and shadow sets can be reused across experiment
//! runs (JSON via `bprom-obs::json`; the workspace's only I/O format).

use crate::{BpromError, Result};
use bprom_nn::Sequential;
use bprom_obs::{JsonError, Value};
use bprom_tensor::Tensor;
use std::path::Path;

fn tensor_to_value(tensor: &Tensor) -> Value {
    Value::object(vec![
        (
            "dims",
            Value::Array(
                tensor
                    .shape()
                    .iter()
                    .map(|&d| Value::Num(d as f64))
                    .collect(),
            ),
        ),
        (
            "data",
            Value::Array(
                tensor
                    .data()
                    .iter()
                    .map(|&x| Value::Num(f64::from(x)))
                    .collect(),
            ),
        ),
    ])
}

fn tensor_from_value(value: &Value) -> std::result::Result<Tensor, JsonError> {
    let dims: Vec<usize> = value
        .require("dims")?
        .as_array()
        .ok_or_else(|| JsonError::new("dims must be an array"))?
        .iter()
        .map(|d| {
            d.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| JsonError::new("dims must be unsigned integers"))
        })
        .collect::<std::result::Result<_, _>>()?;
    let data: Vec<f32> = value
        .require("data")?
        .as_array()
        .ok_or_else(|| JsonError::new("data must be an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|n| n as f32)
                .ok_or_else(|| JsonError::new("data must be numbers"))
        })
        .collect::<std::result::Result<_, _>>()?;
    Tensor::from_vec(data, &dims).map_err(|e| JsonError::new(format!("bad tensor: {e}")))
}

/// Serializes a model's parameters (in visit order) to a JSON file.
///
/// The architecture itself is not stored: loading requires rebuilding the
/// same architecture and calling [`load_params`], which validates every
/// shape.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O or serialization failure.
pub fn save_params(model: &mut Sequential, path: &Path) -> Result<()> {
    let params = model.export_params();
    let json = Value::Array(params.iter().map(tensor_to_value).collect()).to_compact();
    std::fs::write(path, json).map_err(|e| BpromError::Data(format!("write {path:?}: {e}")))?;
    Ok(())
}

/// Loads parameters previously written by [`save_params`] into a
/// structurally identical model.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O/parse failure and
/// [`BpromError::Training`] on any shape mismatch.
pub fn load_params(model: &mut Sequential, path: &Path) -> Result<()> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| BpromError::Data(format!("read {path:?}: {e}")))?;
    let value = Value::parse(&json).map_err(|e| BpromError::Data(format!("parse: {e}")))?;
    let params: Vec<Tensor> = value
        .as_array()
        .ok_or_else(|| BpromError::Data("expected a JSON array of tensors".to_string()))?
        .iter()
        .map(tensor_from_value)
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| BpromError::Data(format!("parse: {e}")))?;
    model.import_params(&params)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_nn::{Layer, Mode};
    use bprom_tensor::Rng;

    #[test]
    fn save_load_round_trip() {
        let mut rng = Rng::new(0);
        let spec = ModelSpec::new(3, 8, 4);
        let mut a = mlp(&spec, &mut rng).unwrap();
        let mut b = mlp(&spec, &mut rng).unwrap();
        let probe = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let ya = a.forward(&probe, Mode::Eval).unwrap();
        assert_ne!(ya, b.forward(&probe, Mode::Eval).unwrap());

        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_params(&mut a, &path).unwrap();
        load_params(&mut b, &path).unwrap();
        assert_eq!(ya, b.forward(&probe, Mode::Eval).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = Rng::new(1);
        let mut small = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        let mut big = mlp(&ModelSpec::new(3, 8, 10), &mut rng).unwrap();
        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.json");
        save_params(&mut small, &path).unwrap();
        assert!(load_params(&mut big, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_error() {
        let mut rng = Rng::new(2);
        let mut model = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        assert!(load_params(&mut model, Path::new("/nonexistent/model.json")).is_err());
    }
}
