//! Model-parameter persistence: save/load trained classifiers so
//! suspicious-model zoos and shadow sets can be reused across experiment
//! runs (JSON via serde; the workspace's only I/O format).

use crate::{BpromError, Result};
use bprom_nn::Sequential;
use bprom_tensor::Tensor;
use std::path::Path;

/// Serializes a model's parameters (in visit order) to a JSON file.
///
/// The architecture itself is not stored: loading requires rebuilding the
/// same architecture and calling [`load_params`], which validates every
/// shape.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O or serialization failure.
pub fn save_params(model: &mut Sequential, path: &Path) -> Result<()> {
    let params = model.export_params();
    let json = serde_json::to_string(&params)
        .map_err(|e| BpromError::Data(format!("serialize: {e}")))?;
    std::fs::write(path, json).map_err(|e| BpromError::Data(format!("write {path:?}: {e}")))?;
    Ok(())
}

/// Loads parameters previously written by [`save_params`] into a
/// structurally identical model.
///
/// # Errors
///
/// Returns [`BpromError::Data`] on I/O/parse failure and
/// [`BpromError::Training`] on any shape mismatch.
pub fn load_params(model: &mut Sequential, path: &Path) -> Result<()> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| BpromError::Data(format!("read {path:?}: {e}")))?;
    let params: Vec<Tensor> =
        serde_json::from_str(&json).map_err(|e| BpromError::Data(format!("parse: {e}")))?;
    model.import_params(&params)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bprom_nn::models::{mlp, ModelSpec};
    use bprom_nn::{Layer, Mode};
    use bprom_tensor::Rng;

    #[test]
    fn save_load_round_trip() {
        let mut rng = Rng::new(0);
        let spec = ModelSpec::new(3, 8, 4);
        let mut a = mlp(&spec, &mut rng).unwrap();
        let mut b = mlp(&spec, &mut rng).unwrap();
        let probe = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let ya = a.forward(&probe, Mode::Eval).unwrap();
        assert_ne!(ya, b.forward(&probe, Mode::Eval).unwrap());

        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_params(&mut a, &path).unwrap();
        load_params(&mut b, &path).unwrap();
        assert_eq!(ya, b.forward(&probe, Mode::Eval).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = Rng::new(1);
        let mut small = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        let mut big = mlp(&ModelSpec::new(3, 8, 10), &mut rng).unwrap();
        let dir = std::env::temp_dir().join("bprom-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.json");
        save_params(&mut small, &path).unwrap();
        assert!(load_params(&mut big, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_error() {
        let mut rng = Rng::new(2);
        let mut model = mlp(&ModelSpec::new(3, 8, 4), &mut rng).unwrap();
        assert!(load_params(&mut model, Path::new("/nonexistent/model.json")).is_err());
    }
}
