//! BPROM: black-box model-level backdoor detection via visual prompting.
//!
//! This is the paper's primary contribution (Section 5). Given only query
//! access to a *suspicious* classifier, BPROM decides whether it contains
//! an all-to-one backdoor:
//!
//! 1. **Shadow models** ([`shadow`]) — train clean and single-attack
//!    poisoned shadow models on the reserved clean dataset `D_S`.
//! 2. **Prompting** ([`prompting`]) — learn a visual prompt mapping the
//!    external clean dataset `D_T` onto every shadow model (backprop) and
//!    onto the suspicious model (CMA-ES through the black-box boundary).
//! 3. **Meta model** ([`meta_model`]) — train a random forest on the
//!    concatenated confidence vectors of prompted shadow models over the
//!    probe set `D_Q`, then classify the suspicious model's probe vector.
//!
//! The detection signal is *class subspace inconsistency*: a backdoor
//! (whose target-class subspace abuts every other class) systematically
//! changes how the model responds to prompted foreign-domain inputs.
//!
//! # Example
//!
//! ```no_run
//! use bprom::{Bprom, BpromConfig};
//! use bprom_data::SynthDataset;
//! use bprom_nn::models::Architecture;
//! use bprom_tensor::Rng;
//! use bprom_vp::QueryOracle;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::new(0);
//! let config = BpromConfig::new(SynthDataset::Cifar10, SynthDataset::Stl10);
//! let detector = Bprom::fit(&config, &mut rng)?;
//! # let some_model = bprom_nn::models::build(Architecture::ResNetMini,
//! #     &bprom_nn::models::ModelSpec::new(3, 16, 10), &mut rng)?;
//! let oracle = QueryOracle::new(some_model, 10);
//! let verdict = detector.inspect(&oracle, &mut rng)?;
//! // e.g. "clean (score 0.22) — 3840 queries (3600 prompt + 240 probe) ..."
//! println!("{verdict}");
//! assert_eq!(verdict.queries, verdict.budget.total_queries());
//! # Ok(())
//! # }
//! ```
//!
//! To capture a machine-readable trace of the whole pipeline, install a
//! [`bprom_obs::Session`] around it — see the `bprom-obs` crate docs.

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod config;
mod detector;
mod error;
pub mod meta_model;
pub mod persistence;
pub mod prompting;
pub mod report;
pub mod resume;
pub mod shadow;
pub mod suspicious;

pub use bprom_qcache::{CacheConfig, CacheMode, QCACHE_ENV};
pub use bprom_regimes::{OracleRegime, RegimeOracle, REGIME_ENV};
pub use bprom_verdict::{
    validate_incident, Action, AuditRecord, Finding, IncidentReport, Mode, RuleId, RulePolicy,
    Severity, Signals, VerdictPipeline, MODE_ENV,
};
pub use config::{BpromConfig, ShadowPrompting};
pub use detector::{Bprom, InspectBudget, Verdict};
pub use error::BpromError;
pub use report::{
    evaluate_detector, evaluate_detector_ckpt, evaluate_detector_via, evaluate_oracle_zoo,
    evaluate_oracle_zoo_ckpt, DetectionReport, Scenario, ZooEntry,
};
pub use resume::{Checkpointer, CKPT_DIR_ENV};
pub use shadow::{ShadowModel, ShadowSet};
pub use suspicious::{
    build_suspicious_zoo, build_suspicious_zoo_ckpt, model_fingerprint, SuspiciousModel, ZooConfig,
};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BpromError>;
