//! Evaluation metrics for the BPROM reproduction: ROC / AUROC, confusion
//! matrices / F1, and PCA (for the paper's Figure 5 visualization).
//!
//! # Example
//!
//! ```
//! use bprom_metrics::auroc;
//!
//! // Perfect separation.
//! let scores = [0.9, 0.8, 0.2, 0.1];
//! let labels = [true, true, false, false];
//! assert_eq!(auroc(&scores, &labels)?, 1.0);
//! # Ok::<(), bprom_metrics::MetricsError>(())
//! ```

// Numerical kernels in this crate use explicit index loops where the
// access pattern (strides, multiple arrays in lockstep) is the point;
// iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod error;
mod f1;
mod roc;
mod stats;

pub use error::MetricsError;
pub use f1::{confusion, f1_score, precision_recall, Confusion};
pub use roc::{auroc, roc_curve, RocPoint};
pub use stats::{mean, pca2, std_dev, Pca2};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MetricsError>;
