use std::fmt;

/// Error type for metric computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Inputs are inconsistent (length mismatch, empty, single class).
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::InvalidInput { reason } => write!(f, "invalid metric input: {reason}"),
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MetricsError::InvalidInput {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }
}
