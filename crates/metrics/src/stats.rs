//! Summary statistics and a 2-component PCA (paper Figure 5 projects
//! prompted confidence vectors of shadow/suspicious models to 2-D).

use crate::{MetricsError, Result};

/// Arithmetic mean; 0.0 on empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; 0.0 on empty input.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Result of a 2-component PCA.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca2 {
    /// Per-sample 2-D coordinates, in input order.
    pub points: Vec<[f32; 2]>,
    /// Variance captured by each of the two components.
    pub explained: [f32; 2],
}

fn power_iteration(cov: &[Vec<f64>], dim: usize, iters: usize) -> (Vec<f64>, f64) {
    let mut v = vec![1.0f64; dim];
    let mut eigval = 0.0f64;
    for _ in 0..iters {
        let mut next = vec![0.0f64; dim];
        for (i, row) in cov.iter().enumerate() {
            next[i] = row.iter().zip(&v).map(|(&c, &x)| c * x).sum();
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return (v, 0.0);
        }
        for x in &mut next {
            *x /= norm;
        }
        eigval = norm;
        v = next;
    }
    (v, eigval)
}

/// Projects feature vectors onto their top two principal components via
/// power iteration with deflation.
///
/// # Errors
///
/// Returns [`MetricsError::InvalidInput`] for fewer than 2 samples or
/// inconsistent feature widths.
pub fn pca2(samples: &[Vec<f32>]) -> Result<Pca2> {
    let n = samples.len();
    if n < 2 {
        return Err(MetricsError::InvalidInput {
            reason: format!("PCA needs at least 2 samples, got {n}"),
        });
    }
    let dim = samples[0].len();
    if dim < 2 || samples.iter().any(|s| s.len() != dim) {
        return Err(MetricsError::InvalidInput {
            reason: "PCA needs consistent feature vectors of width >= 2".to_string(),
        });
    }
    // Center.
    let mut center = vec![0.0f64; dim];
    for s in samples {
        for (c, &x) in center.iter_mut().zip(s) {
            *c += x as f64;
        }
    }
    for c in &mut center {
        *c /= n as f64;
    }
    let centered: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| s.iter().zip(&center).map(|(&x, &c)| x as f64 - c).collect())
        .collect();
    // Covariance.
    let mut cov = vec![vec![0.0f64; dim]; dim];
    for s in &centered {
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] += s[i] * s[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..i {
            cov[i][j] = cov[j][i];
        }
        for j in i..dim {
            cov[i][j] /= n as f64;
            if j > i {
                cov[j][i] = cov[i][j];
            }
        }
    }
    let (v1, e1) = power_iteration(&cov, dim, 200);
    // Deflate: cov' = cov - e1 v1 v1ᵀ.
    let mut deflated = cov.clone();
    for i in 0..dim {
        for j in 0..dim {
            deflated[i][j] -= e1 * v1[i] * v1[j];
        }
    }
    let (v2, e2) = power_iteration(&deflated, dim, 200);
    let points: Vec<[f32; 2]> = centered
        .iter()
        .map(|s| {
            let p1: f64 = s.iter().zip(&v1).map(|(&x, &v)| x * v).sum();
            let p2: f64 = s.iter().zip(&v2).map(|(&x, &v)| x * v).sum();
            [p1 as f32, p2 as f32]
        })
        .collect();
    Ok(Pca2 {
        points,
        explained: [e1 as f32, e2 as f32],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn pca_finds_dominant_axis() {
        // Data along the (1, 1, 0) direction with small noise elsewhere.
        let samples: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                let t = i as f32 - 10.0;
                vec![t, t, 0.01 * (i % 3) as f32]
            })
            .collect();
        let pca = pca2(&samples).unwrap();
        assert!(pca.explained[0] > 10.0 * pca.explained[1]);
        // First component orders points monotonically along t.
        let xs: Vec<f32> = pca.points.iter().map(|p| p[0]).collect();
        let increasing = xs.windows(2).all(|w| w[1] > w[0]);
        let decreasing = xs.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing);
    }

    #[test]
    fn pca_separates_two_clusters() {
        let mut samples = Vec::new();
        for i in 0..10 {
            samples.push(vec![10.0 + (i % 2) as f32 * 0.1, 0.0, 1.0]);
            samples.push(vec![-10.0 - (i % 3) as f32 * 0.1, 0.1, 1.0]);
        }
        let pca = pca2(&samples).unwrap();
        // Clusters land on opposite signs of PC1.
        let signs: Vec<bool> = pca.points.iter().map(|p| p[0] > 0.0).collect();
        for pair in signs.chunks(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn pca_validation() {
        assert!(pca2(&[vec![1.0, 2.0]]).is_err());
        assert!(pca2(&[vec![1.0], vec![2.0]]).is_err());
        assert!(pca2(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }
}
