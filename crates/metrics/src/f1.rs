//! Binary confusion matrices, precision/recall and F1.

use crate::{MetricsError, Result};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Classification accuracy.
    pub fn accuracy(&self) -> f32 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f32 / self.total() as f32
    }
}

/// Builds a confusion matrix from predictions and ground truth.
///
/// # Errors
///
/// Returns [`MetricsError::InvalidInput`] on length mismatch or empty
/// input.
pub fn confusion(predicted: &[bool], actual: &[bool]) -> Result<Confusion> {
    if predicted.len() != actual.len() || predicted.is_empty() {
        return Err(MetricsError::InvalidInput {
            reason: format!(
                "{} predictions for {} labels",
                predicted.len(),
                actual.len()
            ),
        });
    }
    let mut c = Confusion::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        match (p, a) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    Ok(c)
}

/// Precision and recall of the positive class. Degenerate denominators
/// yield 0.0 (the convention of the Backdoor Toolbox the paper evaluates
/// with).
pub fn precision_recall(c: &Confusion) -> (f32, f32) {
    let precision = if c.tp + c.fp == 0 {
        0.0
    } else {
        c.tp as f32 / (c.tp + c.fp) as f32
    };
    let recall = if c.tp + c.fn_ == 0 {
        0.0
    } else {
        c.tp as f32 / (c.tp + c.fn_) as f32
    };
    (precision, recall)
}

/// F1 score (harmonic mean of precision and recall; 0.0 when degenerate).
///
/// # Errors
///
/// Returns [`MetricsError::InvalidInput`] on length mismatch or empty
/// input.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> Result<f32> {
    let c = confusion(predicted, actual)?;
    let (p, r) = precision_recall(&c);
    if p + r == 0.0 {
        return Ok(0.0);
    }
    Ok(2.0 * p * r / (p + r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [true, false, true, false];
        assert_eq!(f1_score(&y, &y).unwrap(), 1.0);
        let c = confusion(&y, &y).unwrap();
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!((c.tp, c.tn), (2, 2));
    }

    #[test]
    fn all_wrong() {
        let pred = [false, true];
        let actual = [true, false];
        assert_eq!(f1_score(&pred, &actual).unwrap(), 0.0);
    }

    #[test]
    fn known_f1() {
        // tp=1, fp=1, fn=1 → p=0.5, r=0.5, f1=0.5.
        let pred = [true, true, false, false];
        let actual = [true, false, true, false];
        assert!((f1_score(&pred, &actual).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_no_positive_predictions() {
        let pred = [false, false];
        let actual = [true, false];
        assert_eq!(f1_score(&pred, &actual).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(confusion(&[true], &[]).is_err());
        assert!(confusion(&[], &[]).is_err());
    }
}
