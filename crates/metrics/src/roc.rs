//! ROC curve and AUROC.

use crate::{MetricsError, Result};

/// A point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f32,
    /// True-positive rate at this threshold.
    pub tpr: f32,
}

fn validate(scores: &[f32], labels: &[bool]) -> Result<(usize, usize)> {
    if scores.len() != labels.len() {
        return Err(MetricsError::InvalidInput {
            reason: format!("{} scores for {} labels", scores.len(), labels.len()),
        });
    }
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return Err(MetricsError::InvalidInput {
            reason: format!("need both classes (got {pos} positives, {neg} negatives)"),
        });
    }
    Ok((pos, neg))
}

/// Area under the ROC curve via the Mann–Whitney U statistic, with the
/// standard half-credit for score ties.
///
/// # Errors
///
/// Returns [`MetricsError::InvalidInput`] on length mismatch or when either
/// class is absent.
pub fn auroc(scores: &[f32], labels: &[bool]) -> Result<f32> {
    let (pos, neg) = validate(scores, labels)?;
    // Rank-based computation handles ties exactly.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Assign average ranks to tied groups (ranks are 1-based).
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (pos as f64 * (pos as f64 + 1.0)) / 2.0;
    Ok((u / (pos as f64 * neg as f64)) as f32)
}

/// Full ROC curve: one point per distinct threshold, from (0,0) to (1,1).
///
/// # Errors
///
/// Same conditions as [`auroc`].
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Result<Vec<RocPoint>> {
    let (pos, neg) = validate(scores, labels)?;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0 }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f32 / neg as f32,
            tpr: tp as f32 / pos as f32,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let auc = auroc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn inverted_separation() {
        let auc = auroc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]).unwrap();
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn interleaved_scores() {
        // Positives {0.1, 0.3}, negatives {0.2, 0.4}: exactly 1 of 4
        // positive/negative pairs is correctly ordered.
        let auc = auroc(&[0.1, 0.2, 0.3, 0.4], &[true, false, true, false]).unwrap();
        assert!((auc - 0.25).abs() < 1e-6);
    }

    #[test]
    fn ties_get_half_credit() {
        let auc = auroc(&[0.5, 0.5], &[true, false]).unwrap();
        assert!((auc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn known_intermediate_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8>0.6) (0.8>0.2) (0.4<0.6) (0.4>0.2) = 3/4.
        let auc = auroc(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]).unwrap();
        assert!((auc - 0.75).abs() < 1e-6);
    }

    #[test]
    fn curve_ends_at_one_one() {
        let pts = roc_curve(&[0.9, 0.1, 0.5, 0.3], &[true, false, true, false]).unwrap();
        assert_eq!(pts.first().unwrap(), &RocPoint { fpr: 0.0, tpr: 0.0 });
        let last = pts.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        // Monotone non-decreasing in both coordinates.
        for w in pts.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn curve_area_matches_auroc() {
        let scores = [0.9f32, 0.7, 0.6, 0.55, 0.5, 0.4, 0.3, 0.1];
        let labels = [true, true, false, true, false, false, true, false];
        let pts = roc_curve(&scores, &labels).unwrap();
        let mut area = 0.0f32;
        for w in pts.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        let auc = auroc(&scores, &labels).unwrap();
        assert!((area - auc).abs() < 1e-5, "{area} vs {auc}");
    }

    #[test]
    fn validation_errors() {
        assert!(auroc(&[0.5], &[true, false]).is_err());
        assert!(auroc(&[0.5, 0.6], &[true, true]).is_err());
        assert!(roc_curve(&[], &[]).is_err());
    }
}
