//! Property-style sweep over worker-buffer merging: counters and
//! histograms recorded on parallel worker sessions are *sums*, so the
//! session snapshot must be identical whatever order the buffers are
//! absorbed in — and identical to recording the same operations inline
//! on the session thread. This is the contract `bprom-par` relies on
//! when work-stealing assigns jobs to workers nondeterministically.
//!
//! Each trial derives a random workload (worker count, operation mix,
//! names, values) from a seeded xorshift stream, replays it three ways
//! (inline, absorbed in worker order, absorbed in rotated + reversed
//! order), and requires the aggregate state to match exactly.

use bprom_obs::{
    absorb_workers, counter_add, log_event, observe, worker_context, LogValue, Session,
    TelemetrySnapshot, WorkerRecords,
};

const COUNTERS: [&str; 4] = ["sweep.a", "sweep.b", "sweep.c", "sweep.d"];
const HISTOGRAMS: [&str; 3] = ["sweep.h0", "sweep.h1", "sweep.h2"];
const EVENTS: [&str; 2] = ["sweep.ev0", "sweep.ev1"];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One recordable operation, derived deterministically from the seed.
#[derive(Clone)]
enum Op {
    Counter(&'static str, u64),
    Observe(&'static str, u64),
    Log(&'static str, u64, bool),
}

impl Op {
    fn random(state: &mut u64) -> Op {
        match xorshift(state) % 3 {
            0 => Op::Counter(
                COUNTERS[(xorshift(state) % COUNTERS.len() as u64) as usize],
                xorshift(state) % 1000,
            ),
            1 => Op::Observe(
                HISTOGRAMS[(xorshift(state) % HISTOGRAMS.len() as u64) as usize],
                xorshift(state) % 1_000_000,
            ),
            _ => Op::Log(
                EVENTS[(xorshift(state) % EVENTS.len() as u64) as usize],
                xorshift(state) % 100,
                xorshift(state).is_multiple_of(2),
            ),
        }
    }

    fn apply(&self) {
        match *self {
            Op::Counter(name, delta) => counter_add(name, delta),
            Op::Observe(name, value) => observe(name, value),
            Op::Log(name, value, flag) => {
                log_event(name, [("value", value.into()), ("flag", flag.into())]);
            }
        }
    }
}

/// A seed-derived workload: one operation list per worker.
fn workload(seed: u64) -> Vec<Vec<Op>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let workers = 1 + (xorshift(&mut state) % 5) as usize;
    (0..workers)
        .map(|_| {
            let ops = (xorshift(&mut state) % 40) as usize;
            (0..ops).map(|_| Op::random(&mut state)).collect()
        })
        .collect()
}

/// Records every worker's operations on its own thread (real worker
/// sessions, like `bprom-par` workers), returning the buffers in worker
/// order.
fn record_on_workers(ops: &[Vec<Op>]) -> Vec<WorkerRecords> {
    let contexts: Vec<_> = ops
        .iter()
        .map(|_| worker_context().expect("session installed"))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = contexts
            .into_iter()
            .zip(ops)
            .map(|(ctx, worker_ops)| {
                scope.spawn(move || {
                    let session = ctx.begin();
                    for op in worker_ops {
                        op.apply();
                    }
                    session.finish()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Runs the workload on worker threads and absorbs the buffers in the
/// order produced by `reorder`.
fn absorbed_snapshot(
    ops: &[Vec<Op>],
    reorder: impl Fn(Vec<WorkerRecords>) -> Vec<WorkerRecords>,
) -> TelemetrySnapshot {
    let session = Session::begin("merge-invariance");
    let records = record_on_workers(ops);
    absorb_workers(reorder(records));
    session.finish()
}

/// Runs the same operations inline on the session thread, worker 0
/// first — the sequential reference.
fn inline_snapshot(ops: &[Vec<Op>]) -> TelemetrySnapshot {
    let session = Session::begin("merge-invariance");
    for worker_ops in ops {
        for op in worker_ops {
            op.apply();
        }
    }
    session.finish()
}

/// One log record's content: (stage, name, fields) — everything but the
/// merge-assigned sequence number.
type LogContent = (String, String, Vec<(String, LogValue)>);

/// Sorted multiset view of a snapshot's log content (order is the one
/// thing permuted absorption legitimately changes).
fn log_content(snapshot: &TelemetrySnapshot) -> Vec<LogContent> {
    let mut content: Vec<_> = snapshot
        .log
        .iter()
        .map(|r| (r.stage.clone(), r.name.clone(), r.fields.clone()))
        .collect();
    content.sort_by(|a, b| {
        (&a.0, &a.1, format!("{:?}", a.2)).cmp(&(&b.0, &b.1, format!("{:?}", b.2)))
    });
    content
}

#[test]
fn counter_and_histogram_merges_are_order_invariant() {
    for seed in 1..=25u64 {
        let ops = workload(seed);
        let inline = inline_snapshot(&ops);
        let in_order = absorbed_snapshot(&ops, |r| r);
        let rotated = absorbed_snapshot(&ops, |mut r| {
            if !r.is_empty() {
                r.rotate_left(1);
            }
            r
        });
        let reversed = absorbed_snapshot(&ops, |mut r| {
            r.reverse();
            r
        });

        for (label, other) in [
            ("in-order", &in_order),
            ("rotated", &rotated),
            ("reversed", &reversed),
        ] {
            assert_eq!(
                inline.counters, other.counters,
                "seed {seed}: {label} absorption changed counter totals"
            );
            assert_eq!(
                inline.histograms, other.histograms,
                "seed {seed}: {label} absorption changed histogram contents"
            );
            assert_eq!(
                log_content(&inline),
                log_content(other),
                "seed {seed}: {label} absorption changed log content"
            );
            assert_eq!(other.log_dropped, 0, "seed {seed}: workload fits the log");
        }

        // Worker-index-order absorption reproduces the inline log
        // *sequence* exactly (same records, same stages, gapless seq).
        assert_eq!(
            inline.log, in_order.log,
            "seed {seed}: in-order absorption must reproduce the inline log stream"
        );
        for (i, record) in in_order.log.iter().enumerate() {
            assert_eq!(
                record.seq, i as u64,
                "seed {seed}: merged seq must be gapless"
            );
        }
    }
}

/// Absorbing the same worker workload twice (two independent sessions)
/// is bit-identical — the merge itself adds no nondeterminism.
#[test]
fn repeated_runs_are_identical() {
    let ops = workload(7);
    let a = absorbed_snapshot(&ops, |r| r);
    let b = absorbed_snapshot(&ops, |r| r);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.histograms, b.histograms);
    assert_eq!(a.log, b.log);
}
