//! Minimal self-contained JSON support.
//!
//! The workspace dependency policy bans external crates (single-core,
//! no-padding substrate, and the build environment is offline), so this
//! module replaces `serde_json` for the workspace's few JSON surfaces:
//! telemetry snapshots, detection reports, and model-parameter
//! persistence. It implements the full JSON grammar (RFC 8259) minus
//! nothing the workspace needs: objects preserve insertion order, numbers
//! are `f64`, non-finite floats serialize as `null`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (deterministic output).
    Object(Vec<(String, Value)>),
}

/// Error produced by [`Value::parse`] or the [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub reason: String,
}

impl JsonError {
    /// Creates an error with a human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        JsonError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Convenience alias for fallible JSON operations.
pub type JsonResult<T> = std::result::Result<T, JsonError>;

impl Value {
    /// Builds an object value from key/value pairs (insertion order kept).
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors (with the key name) instead of returning
    /// `None` — the common case when deserializing a known schema.
    pub fn require(&self, key: &str) -> JsonResult<&Value> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing key {key:?}")))
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole nonnegative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (the workspace's artifact
    /// format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any syntax error or trailing garbage.
    pub fn parse(text: &str) -> JsonResult<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `f64::Display` prints the shortest representation that parses
        // back to the same bits, so serialization round-trips exactly.
        use fmt::Write;
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> JsonResult<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> JsonResult<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> JsonResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> JsonResult<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(JsonError::new("invalid surrogate pair"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(JsonError::new("unknown escape")),
                    }
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(chunk, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> JsonResult<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
    }
}

/// Conversion of a Rust value into a JSON [`Value`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Value;
}

/// Fallible reconstruction of a Rust value from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Rebuilds the value, validating structure.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the value does not match the expected
    /// schema.
    fn from_json(value: &Value) -> JsonResult<Self>;
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::new("expected unsigned integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| JsonError::new("expected unsigned integer"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> JsonResult<Self> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(value: &Value) -> JsonResult<Self> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
                .collect(),
            _ => Err(JsonError::new("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Value::parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1f600}"));
    }

    #[test]
    fn pretty_and_compact_round_trip() {
        let v = Value::object(vec![
            ("pi", Value::Num(std::f64::consts::PI)),
            ("list", Value::Array(vec![Value::Num(1.0), Value::Null])),
            ("s", Value::Str("quote \" backslash \\".to_string())),
            ("empty", Value::Object(Vec::new())),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, f64::MAX, 5e-324, -0.0] {
            let text = Value::Num(x).to_compact();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::object(vec![("z", Value::Num(1.0)), ("a", Value::Num(2.0))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }
}
