//! Zero-dependency observability for the BPROM workspace.
//!
//! BPROM is a *black-box* detector: its real-world cost is oracle queries
//! and wall-clock per pipeline phase. This crate makes both observable
//! without perturbing them:
//!
//! * **Span tracing** — [`span!`] opens an RAII-guarded, nested
//!   wall-clock timing region (`shadow_training`, `prompt_suspicious`,
//!   ...); [`event`] attaches point-in-time observations (per-CMA-ES-
//!   generation best fitness) to the innermost open span.
//! * **Counters and histograms** — [`counter_add`] maintains monotonic
//!   `u64` counters (oracle queries); [`observe`] feeds fixed-bucket
//!   power-of-two [`Histogram`]s (query latency, batch sizes).
//! * **Structured event log** — [`log_event`] appends typed key/value
//!   records tagged with their pipeline stage (the innermost open span)
//!   to a bounded per-session log ([`LOG_CAPACITY`] records, overflow
//!   counted). Records are timestamp-free — their *content* is
//!   deterministic for a deterministic run — and worker buffers merge in
//!   worker-index order with reassigned gapless sequence numbers.
//! * **JSON run reports** — a [`Session`] collects everything recorded on
//!   its thread and [`Session::finish`] returns a [`TelemetrySnapshot`]
//!   that serializes to `telemetry.json` via the crate's own
//!   self-contained [`json`] module (no external dependencies at all, per
//!   the workspace policy).
//!
//! Recording is **zero-cost when disabled**: without an installed
//! session, every entry point is one thread-local flag read (verified by
//! the `obs_overhead` criterion bench). Telemetry is **deterministic-
//! safe**: it only reads [`std::time::Instant`] and never touches the
//! experiment `Rng`, so two identically-seeded runs produce identical
//! results whether or not a session is installed.
//!
//! # Example
//!
//! ```
//! use bprom_obs::{Session, TelemetrySnapshot};
//!
//! fn pipeline_phase() {
//!     bprom_obs::span!("shadow_training");
//!     bprom_obs::counter_add("oracle.queries", 48);
//!     bprom_obs::observe("oracle.query_ns", 1_250_000);
//! }
//!
//! let session = Session::begin("demo-run");
//! pipeline_phase();
//! let snapshot = session.finish();
//! assert_eq!(snapshot.counter("oracle.queries"), 48);
//! assert!(snapshot.find_span("shadow_training").is_some());
//! let text = snapshot.to_json_string();
//! assert_eq!(TelemetrySnapshot::from_json_str(&text).unwrap(), snapshot);
//! ```

pub mod histogram;
pub mod json;
pub mod log;
pub mod span;
pub mod telemetry;

pub use histogram::Histogram;
pub use json::{FromJson, JsonError, JsonResult, ToJson, Value};
pub use log::{LogRecord, LogValue};
pub use span::{EventRecord, SpanGuard, SpanRecord};
pub use telemetry::{
    absorb_workers, counter_add, enabled, event, log_event, observe, span_enter, worker_context,
    Session, TelemetrySnapshot, WorkerContext, WorkerRecords, WorkerSession, LOG_CAPACITY,
};
