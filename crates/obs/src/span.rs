//! Span and event records: the tree of nested wall-clock timings a
//! telemetry session collects.

use crate::json::{FromJson, JsonResult, ToJson, Value};

/// A named point-in-time observation attached to a span (e.g. one CMA-ES
/// generation's best fitness).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Offset from the session start, in nanoseconds.
    pub at_ns: u64,
    /// Free-form numeric payload.
    pub value: f64,
}

/// A completed (or force-closed) span: one timed region of the pipeline,
/// with nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"shadow_training"`).
    pub name: String,
    /// Offset of span entry from the session start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
    /// Events recorded while this span was the innermost open span.
    pub events: Vec<EventRecord>,
    /// Spans opened and closed while this span was open.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Depth-first search for the first span with the given name (self
    /// included).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of the direct children's durations; never exceeds this span's
    /// own duration (children are strictly nested).
    pub fn child_duration_ns(&self) -> u64 {
        self.children.iter().map(|c| c.duration_ns).sum()
    }

    /// Number of spans named `name` in this subtree (self included) —
    /// unlike [`SpanRecord::find`], which stops at the first match.
    /// Work-dedup assertions use this: a shared registry entry must
    /// yield exactly one `shadow_training` span however many audits
    /// consume it.
    pub fn count(&self, name: &str) -> usize {
        usize::from(self.name == name) + self.children.iter().map(|c| c.count(name)).sum::<usize>()
    }
}

/// RAII guard returned by [`crate::span_enter`]; closing (dropping) it
/// records the span's duration. Inert when no telemetry session is
/// installed.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    /// Stack depth at which this guard's span sits; `None` for inert
    /// guards (telemetry disabled at entry).
    pub(crate) depth: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(depth) = self.depth {
            crate::telemetry::close_span_to_depth(depth);
        }
    }
}

impl ToJson for EventRecord {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", self.name.to_json()),
            ("at_ns", self.at_ns.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl FromJson for EventRecord {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(EventRecord {
            name: String::from_json(value.require("name")?)?,
            at_ns: u64::from_json(value.require("at_ns")?)?,
            value: f64::from_json(value.require("value")?)?,
        })
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", self.name.to_json()),
            ("start_ns", self.start_ns.to_json()),
            ("duration_ns", self.duration_ns.to_json()),
            ("events", self.events.to_json()),
            ("children", self.children.to_json()),
        ])
    }
}

impl FromJson for SpanRecord {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(SpanRecord {
            name: String::from_json(value.require("name")?)?,
            start_ns: u64::from_json(value.require("start_ns")?)?,
            duration_ns: u64::from_json(value.require("duration_ns")?)?,
            events: Vec::from_json(value.require("events")?)?,
            children: Vec::from_json(value.require("children")?)?,
        })
    }
}
