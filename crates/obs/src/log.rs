//! Structured event-log record types (see [`crate::log_event`]).
//!
//! Unlike the numeric [`crate::EventRecord`]s attached to spans, log
//! records are **typed key/value events** meant for machine triage: each
//! carries the pipeline stage it was recorded under (the innermost open
//! span), a monotonic sequence number, and a list of typed fields. The
//! log is deliberately free of wall-clock timestamps — it captures
//! *ordering and content*, so a deterministic pipeline produces
//! bit-identical records on every rerun (durations belong to spans and
//! histograms).

use crate::json::{FromJson, JsonError, JsonResult, ToJson, Value};

/// One typed field value in a [`LogRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum LogValue {
    /// An exact unsigned integer (counts, sizes, indices).
    U64(u64),
    /// A floating-point measurement (fitness, accuracy, rates).
    F64(f64),
    /// A short string (labels, outcomes).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<u64> for LogValue {
    fn from(v: u64) -> Self {
        LogValue::U64(v)
    }
}

impl From<usize> for LogValue {
    fn from(v: usize) -> Self {
        LogValue::U64(v as u64)
    }
}

impl From<f64> for LogValue {
    fn from(v: f64) -> Self {
        LogValue::F64(v)
    }
}

impl From<f32> for LogValue {
    fn from(v: f32) -> Self {
        LogValue::F64(f64::from(v))
    }
}

impl From<&str> for LogValue {
    fn from(v: &str) -> Self {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> Self {
        LogValue::Str(v)
    }
}

impl From<bool> for LogValue {
    fn from(v: bool) -> Self {
        LogValue::Bool(v)
    }
}

impl LogValue {
    fn type_tag(&self) -> &'static str {
        match self {
            LogValue::U64(_) => "u64",
            LogValue::F64(_) => "f64",
            LogValue::Str(_) => "str",
            LogValue::Bool(_) => "bool",
        }
    }
}

/// One structured event in the bounded session log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Position in the merged session log (0-based, gapless). Worker
    /// records are re-sequenced on merge, so the final log reads as one
    /// deterministic stream.
    pub seq: u64,
    /// Name of the innermost span open when the event was recorded
    /// (empty when none was).
    pub stage: String,
    /// Event name, dotted-namespace style (`cmaes.generation`).
    pub name: String,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(String, LogValue)>,
}

impl LogRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&LogValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

impl ToJson for LogValue {
    fn to_json(&self) -> Value {
        let value = match self {
            LogValue::U64(v) => v.to_json(),
            LogValue::F64(v) => v.to_json(),
            LogValue::Str(v) => v.to_json(),
            LogValue::Bool(v) => v.to_json(),
        };
        Value::object(vec![
            ("type", Value::Str(self.type_tag().to_string())),
            ("value", value),
        ])
    }
}

impl FromJson for LogValue {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let tag = String::from_json(value.require("type")?)?;
        let payload = value.require("value")?;
        match tag.as_str() {
            "u64" => Ok(LogValue::U64(u64::from_json(payload)?)),
            "f64" => Ok(LogValue::F64(f64::from_json(payload)?)),
            "str" => Ok(LogValue::Str(String::from_json(payload)?)),
            "bool" => Ok(LogValue::Bool(bool::from_json(payload)?)),
            other => Err(JsonError::new(format!("unknown log value type {other:?}"))),
        }
    }
}

impl ToJson for LogRecord {
    fn to_json(&self) -> Value {
        let fields: Vec<Value> = self
            .fields
            .iter()
            .map(|(k, v)| {
                let Value::Object(mut pairs) = v.to_json() else {
                    unreachable!("LogValue serializes as an object")
                };
                pairs.insert(0, ("name".to_string(), k.to_json()));
                Value::Object(pairs)
            })
            .collect();
        Value::object(vec![
            ("seq", self.seq.to_json()),
            ("stage", self.stage.to_json()),
            ("name", self.name.to_json()),
            ("fields", Value::Array(fields)),
        ])
    }
}

impl FromJson for LogRecord {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let mut fields = Vec::new();
        for field in value
            .require("fields")?
            .as_array()
            .ok_or_else(|| JsonError::new("fields must be an array"))?
        {
            fields.push((
                String::from_json(field.require("name")?)?,
                LogValue::from_json(field)?,
            ));
        }
        Ok(LogRecord {
            seq: u64::from_json(value.require("seq")?)?,
            stage: String::from_json(value.require("stage")?)?,
            name: String::from_json(value.require("name")?)?,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_value_conversions_preserve_type() {
        assert_eq!(LogValue::from(3u64), LogValue::U64(3));
        assert_eq!(LogValue::from(3usize), LogValue::U64(3));
        assert_eq!(LogValue::from(0.5f64), LogValue::F64(0.5));
        assert_eq!(LogValue::from(0.5f32), LogValue::F64(0.5));
        assert_eq!(LogValue::from("ok"), LogValue::Str("ok".into()));
        assert_eq!(LogValue::from(true), LogValue::Bool(true));
    }

    #[test]
    fn record_json_round_trip_keeps_types() {
        let record = LogRecord {
            seq: 7,
            stage: "prompt_suspicious".into(),
            name: "cmaes.generation".into(),
            fields: vec![
                ("gen".into(), LogValue::U64(3)),
                ("best".into(), LogValue::F64(2.0)),
                ("converged".into(), LogValue::Bool(false)),
                ("phase".into(), LogValue::Str("explore".into())),
            ],
        };
        let back = LogRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
        // The tagged encoding keeps U64(2) and F64(2.0) distinct.
        assert_eq!(back.field("best"), Some(&LogValue::F64(2.0)));
        assert_eq!(back.field("gen"), Some(&LogValue::U64(3)));
        assert_eq!(back.field("missing"), None);
    }
}
