//! The telemetry collector: a thread-local sink that spans, counters,
//! events and histogram observations report into while a [`Session`] is
//! installed, and the serializable [`TelemetrySnapshot`] it produces.
//!
//! Design constraints (see `DESIGN.md` § Observability):
//!
//! * **Zero-cost when disabled** — every recording entry point first reads
//!   one thread-local flag and returns immediately when no session is
//!   installed; no allocation, no clock read.
//! * **Deterministic-safe** — the collector only ever reads
//!   [`std::time::Instant`]; it never touches the experiment `Rng` or any
//!   value that feeds back into computation, so enabling telemetry cannot
//!   change experimental results.
//! * **Thread-local sinks, explicit hand-off** — the sink is thread-local,
//!   so a session observes exactly the thread that created it and parallel
//!   tests cannot contaminate each other. Worker threads (e.g. the
//!   `bprom-par` pool) participate by capturing a [`WorkerContext`] on the
//!   parent thread, recording into a per-worker buffer via
//!   [`WorkerContext::begin`], and merging the resulting
//!   [`WorkerRecords`] back with [`absorb_workers`] at scope exit.

use crate::histogram::Histogram;
use crate::json::{FromJson, JsonResult, ToJson, Value};
use crate::log::{LogRecord, LogValue};
use crate::span::{EventRecord, SpanGuard, SpanRecord};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Instant;

/// Maximum structured-log records one session retains; further
/// [`log_event`] calls only bump the drop counter. Bounds memory on
/// long fleet runs without making any recording call fallible.
pub const LOG_CAPACITY: usize = 4096;

struct Collector {
    label: String,
    start: Instant,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Completed top-level spans.
    roots: Vec<SpanRecord>,
    /// Currently open spans, outermost first.
    stack: Vec<SpanRecord>,
    /// Events recorded while no span was open.
    orphan_events: Vec<EventRecord>,
    /// Bounded structured event log (see [`log_event`]).
    log: Vec<LogRecord>,
    /// Records rejected because the log was at [`LOG_CAPACITY`].
    log_dropped: u64,
}

impl Collector {
    fn new(label: String) -> Self {
        Collector::with_start(label, Instant::now())
    }

    /// A collector whose timestamps are measured from a caller-provided
    /// origin, so worker-thread spans land on the parent session's
    /// timeline.
    fn with_start(label: String, start: Instant) -> Self {
        Collector {
            label,
            start,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            orphan_events: Vec::new(),
            log: Vec::new(),
            log_dropped: 0,
        }
    }

    fn push_log(&mut self, record: LogRecord) {
        if self.log.len() >= LOG_CAPACITY {
            self.log_dropped += 1;
        } else {
            self.log.push(record);
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn close_one(&mut self) {
        if let Some(mut span) = self.stack.pop() {
            span.duration_ns = self.now_ns().saturating_sub(span.start_ns);
            match self.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => self.roots.push(span),
            }
        }
    }

    fn into_snapshot(mut self) -> TelemetrySnapshot {
        while !self.stack.is_empty() {
            self.close_one();
        }
        TelemetrySnapshot {
            label: self.label,
            wall_ns: self.start.elapsed().as_nanos() as u64,
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            spans: self.roots,
            events: self.orphan_events,
            log: self.log,
            log_dropped: self.log_dropped,
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Whether a telemetry session is currently installed on this thread.
///
/// Instrumented code may use this to skip preparation work (e.g. clock
/// reads) that only feeds telemetry.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Opens a named span; the returned RAII guard closes it on drop,
/// recording the nested wall-clock duration. Prefer the [`crate::span!`]
/// macro, which binds the guard to the enclosing scope.
///
/// No-op (inert guard) when telemetry is disabled.
pub fn span_enter(name: &'static str) -> SpanGuard {
    let depth = with_collector(|c| {
        let start_ns = c.now_ns();
        c.stack.push(SpanRecord {
            name: name.to_string(),
            start_ns,
            duration_ns: 0,
            events: Vec::new(),
            children: Vec::new(),
        });
        c.stack.len() - 1
    });
    SpanGuard { depth }
}

/// Closes open spans until the stack is back to `depth` entries deep.
/// Called by [`SpanGuard::drop`]; tolerates a session having been
/// replaced between guard creation and drop.
pub(crate) fn close_span_to_depth(depth: usize) {
    with_collector(|c| {
        while c.stack.len() > depth {
            c.close_one();
        }
    });
}

/// Adds `delta` to a named monotonic counter. No-op when disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    with_collector(|c| {
        *c.counters.entry(name).or_insert(0) += delta;
    });
}

/// Records a named point-in-time event with a numeric payload, attached
/// to the innermost open span. No-op when disabled.
pub fn event(name: &'static str, value: f64) {
    with_collector(|c| {
        let record = EventRecord {
            name: name.to_string(),
            at_ns: c.now_ns(),
            value,
        };
        match c.stack.last_mut() {
            Some(span) => span.events.push(record),
            None => c.orphan_events.push(record),
        }
    });
}

/// Records one sample into a named fixed-bucket histogram. No-op when
/// disabled.
pub fn observe(name: &'static str, value: u64) {
    with_collector(|c| {
        c.histograms.entry(name).or_default().record(value);
    });
}

/// Appends one typed record to the session's bounded structured event
/// log, tagged with the innermost open span as its stage:
///
/// ```
/// bprom_obs::log_event("cmaes.generation", [
///     ("generation", 3u64.into()),
///     ("best_fitness", 0.25.into()),
/// ]);
/// ```
///
/// The log holds at most [`LOG_CAPACITY`] records per session; further
/// calls only increment the snapshot's `log_dropped` counter. Unlike
/// span [`event`]s, log records carry no wall-clock — only sequence,
/// stage and typed fields — so record *content* is bit-identical across
/// reruns of a deterministic pipeline (ordering is deterministic on the
/// session thread; across pool workers it follows the work-stealing
/// schedule). No-op when telemetry is disabled.
pub fn log_event(name: &'static str, fields: impl IntoIterator<Item = (&'static str, LogValue)>) {
    if !enabled() {
        return;
    }
    let fields: Vec<(String, LogValue)> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    with_collector(|c| {
        let record = LogRecord {
            seq: c.log.len() as u64,
            stage: c.stack.last().map(|s| s.name.clone()).unwrap_or_default(),
            name: name.to_string(),
            fields,
        };
        c.push_log(record);
    });
}

/// Opens a named span bound to the enclosing scope:
///
/// ```
/// fn shadow_training_phase() {
///     bprom_obs::span!("shadow_training");
///     // ... work; the span closes when the scope ends ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _bprom_obs_span_guard = $crate::span_enter($name);
    };
}

/// An installed telemetry session. While alive, all spans/counters/
/// events/histograms recorded **on this thread** accumulate into it;
/// [`Session::finish`] produces the serializable [`TelemetrySnapshot`].
///
/// Creating a second session on the same thread replaces the first
/// (guards from the replaced session become inert-tolerant: they close
/// nothing they didn't open).
#[derive(Debug)]
pub struct Session {
    // Sessions are bound to the installing thread's collector.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Session {
    /// Installs a fresh collector on the current thread. `label` names
    /// the run in the snapshot (bench binary name, test name, ...).
    pub fn begin(label: impl Into<String>) -> Session {
        COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new(label.into())));
        ENABLED.with(|e| e.set(true));
        Session {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Uninstalls the collector and returns everything it recorded. Open
    /// spans are force-closed with their duration so far.
    pub fn finish(self) -> TelemetrySnapshot {
        ENABLED.with(|e| e.set(false));
        let collector = COLLECTOR.with(|c| c.borrow_mut().take());
        // `self` dropping after the take is a no-op uninstall.
        collector
            .map(Collector::into_snapshot)
            .unwrap_or_else(|| TelemetrySnapshot::empty("detached"))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(false));
        COLLECTOR.with(|c| c.borrow_mut().take());
    }
}

/// A capture of the current thread's telemetry timeline, for handing to
/// worker threads.
///
/// Obtained from [`worker_context`] on the thread that owns the
/// [`Session`]; `Copy + Send` so one capture can be moved into every
/// worker closure of a `std::thread::scope`. Each worker calls
/// [`WorkerContext::begin`] to install a buffering collector whose
/// timestamps share the parent session's origin, and the parent merges
/// the finished [`WorkerRecords`] with [`absorb_workers`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerContext {
    base: Instant,
}

/// Captures the current thread's telemetry timeline for worker threads.
///
/// Returns `None` when telemetry is disabled, which lets callers skip
/// worker-session bookkeeping entirely (the zero-cost-when-disabled
/// contract extends to parallel sections).
pub fn worker_context() -> Option<WorkerContext> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| {
        c.borrow()
            .as_ref()
            .map(|col| WorkerContext { base: col.start })
    })
}

impl WorkerContext {
    /// Installs a per-worker buffering collector on the current (worker)
    /// thread. All spans/counters/events/histograms recorded on this
    /// thread accumulate into the buffer until [`WorkerSession::finish`].
    pub fn begin(self) -> WorkerSession {
        COLLECTOR
            .with(|c| *c.borrow_mut() = Some(Collector::with_start("worker".into(), self.base)));
        ENABLED.with(|e| e.set(true));
        WorkerSession {
            _not_send: std::marker::PhantomData,
        }
    }
}

/// An installed per-worker telemetry buffer (see [`WorkerContext`]).
/// Mirrors [`Session`] but produces mergeable [`WorkerRecords`] instead
/// of a final snapshot.
#[derive(Debug)]
pub struct WorkerSession {
    // Bound to the installing worker thread's collector.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl WorkerSession {
    /// Uninstalls the worker buffer and returns everything it recorded,
    /// ready to be sent back to the parent thread. Open spans are
    /// force-closed with their duration so far.
    pub fn finish(self) -> WorkerRecords {
        ENABLED.with(|e| e.set(false));
        let collector = COLLECTOR.with(|c| c.borrow_mut().take());
        // `self` dropping after the take is a no-op uninstall.
        match collector {
            Some(mut col) => {
                while !col.stack.is_empty() {
                    col.close_one();
                }
                WorkerRecords {
                    counters: col.counters,
                    histograms: col.histograms,
                    spans: col.roots,
                    events: col.orphan_events,
                    log: col.log,
                    log_dropped: col.log_dropped,
                }
            }
            None => WorkerRecords::default(),
        }
    }
}

impl Drop for WorkerSession {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(false));
        COLLECTOR.with(|c| c.borrow_mut().take());
    }
}

/// Telemetry recorded by one worker thread, in transit back to the
/// parent session. `Send`, so it can cross the scope join; merge with
/// [`absorb_workers`].
#[derive(Debug, Default)]
pub struct WorkerRecords {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    log: Vec<LogRecord>,
    log_dropped: u64,
}

impl WorkerRecords {
    /// True when the worker recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.log.is_empty()
            && self.log_dropped == 0
    }
}

/// Merges worker buffers into the current thread's session: counters
/// add, histograms merge bucket-wise, worker root spans / orphan events
/// attach under the innermost span currently open on this thread (or at
/// the top level when none is open), and worker structured-log records
/// append in worker order with their sequence numbers reassigned to the
/// session's stream (the merged log is one gapless sequence, capped at
/// [`LOG_CAPACITY`] with overflow counted as dropped). Pass buffers in
/// worker-index order for a deterministic span and log order. No-op when
/// telemetry is disabled.
pub fn absorb_workers(records: impl IntoIterator<Item = WorkerRecords>) {
    with_collector(|c| {
        for rec in records {
            for (name, delta) in rec.counters {
                *c.counters.entry(name).or_insert(0) += delta;
            }
            for (name, hist) in rec.histograms {
                c.histograms.entry(name).or_default().merge(&hist);
            }
            c.log_dropped += rec.log_dropped;
            for mut record in rec.log {
                record.seq = c.log.len() as u64;
                c.push_log(record);
            }
            match c.stack.last_mut() {
                Some(open) => {
                    open.children.extend(rec.spans);
                    open.events.extend(rec.events);
                }
                None => {
                    c.roots.extend(rec.spans);
                    c.orphan_events.extend(rec.events);
                }
            }
        }
    });
}

/// Everything one telemetry session recorded, in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Run label passed to [`Session::begin`].
    pub label: String,
    /// Total session wall-clock, in nanoseconds.
    pub wall_ns: u64,
    /// Final values of all monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// All histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Completed top-level spans (with nested children).
    pub spans: Vec<SpanRecord>,
    /// Events recorded while no span was open.
    pub events: Vec<EventRecord>,
    /// Structured event log, one gapless deterministic stream (worker
    /// records merged in worker order; see [`log_event`]).
    pub log: Vec<LogRecord>,
    /// Log records rejected because the session hit [`LOG_CAPACITY`].
    pub log_dropped: u64,
}

impl TelemetrySnapshot {
    fn empty(label: &str) -> Self {
        TelemetrySnapshot {
            label: label.to_string(),
            wall_ns: 0,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
            events: Vec::new(),
            log: Vec::new(),
            log_dropped: 0,
        }
    }

    /// Final value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Depth-first search across all root spans for the first span with
    /// the given name.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total number of spans named `name` across all root span trees
    /// (see [`SpanRecord::count`]).
    pub fn count_spans(&self, name: &str) -> usize {
        self.spans.iter().map(|s| s.count(name)).sum()
    }

    /// Serializes the snapshot as pretty-printed JSON (the
    /// `telemetry.json` artifact format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a snapshot back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`crate::JsonError`] on malformed input.
    pub fn from_json_str(text: &str) -> JsonResult<Self> {
        Self::from_json(&Value::parse(text)?)
    }
}

impl ToJson for TelemetrySnapshot {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("label", self.label.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("counters", self.counters.to_json()),
            ("histograms", self.histograms.to_json()),
            ("spans", self.spans.to_json()),
            ("events", self.events.to_json()),
            ("log", self.log.to_json()),
            ("log_dropped", self.log_dropped.to_json()),
        ])
    }
}

impl FromJson for TelemetrySnapshot {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(TelemetrySnapshot {
            label: String::from_json(value.require("label")?)?,
            wall_ns: u64::from_json(value.require("wall_ns")?)?,
            counters: BTreeMap::from_json(value.require("counters")?)?,
            histograms: BTreeMap::from_json(value.require("histograms")?)?,
            spans: Vec::from_json(value.require("spans")?)?,
            events: Vec::from_json(value.require("events")?)?,
            log: Vec::from_json(value.require("log")?)?,
            log_dropped: u64::from_json(value.require("log_dropped")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        assert!(!enabled());
        counter_add("x", 5);
        observe("h", 10);
        event("e", 1.0);
        {
            crate::span!("dead");
        }
        let snapshot = Session::begin("check").finish();
        assert_eq!(snapshot.counter("x"), 0);
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.spans.is_empty());
        assert!(snapshot.events.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let session = Session::begin("counters");
        counter_add("queries", 3);
        counter_add("queries", 4);
        counter_add("other", 1);
        let snapshot = session.finish();
        assert_eq!(snapshot.counter("queries"), 7);
        assert_eq!(snapshot.counter("other"), 1);
        assert_eq!(snapshot.counter("missing"), 0);
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_and_durations_are_monotonic() {
        let session = Session::begin("spans");
        {
            crate::span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                crate::span!("inner");
                event("tick", 42.0);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snapshot = session.finish();
        let outer = snapshot.find_span("outer").expect("outer recorded");
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert!(inner.duration_ns > 0);
        // Nesting invariant: a child starts after and fits inside its parent.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.duration_ns <= outer.duration_ns);
        assert!(
            inner.start_ns + inner.duration_ns <= outer.start_ns + outer.duration_ns,
            "child must end before its parent"
        );
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.events[0].name, "tick");
        assert!(snapshot.wall_ns >= outer.duration_ns);
    }

    #[test]
    fn count_spans_sees_every_occurrence() {
        let session = Session::begin("counting");
        for _ in 0..3 {
            crate::span!("unit");
            {
                crate::span!("nested");
            }
        }
        {
            crate::span!("outer");
            crate::span!("unit");
        }
        let snapshot = session.finish();
        // `find_span` stops at the first match; `count_spans` must see
        // all four "unit" spans, including the one nested under "outer".
        assert_eq!(snapshot.count_spans("unit"), 4);
        assert_eq!(snapshot.count_spans("nested"), 3);
        assert_eq!(snapshot.count_spans("absent"), 0);
    }

    #[test]
    fn sequential_spans_become_siblings() {
        let session = Session::begin("siblings");
        {
            crate::span!("root");
            {
                crate::span!("a");
            }
            {
                crate::span!("b");
            }
        }
        let snapshot = session.finish();
        let root = snapshot.find_span("root").unwrap();
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(root.child_duration_ns() <= root.duration_ns);
    }

    #[test]
    fn finish_force_closes_open_spans() {
        let session = Session::begin("open");
        let _guard = span_enter("never_closed");
        let snapshot = session.finish();
        assert!(snapshot.find_span("never_closed").is_some());
        // The leaked guard must not panic or corrupt later sessions.
        drop(_guard);
        let snapshot = Session::begin("after").finish();
        assert!(snapshot.spans.is_empty());
    }

    #[test]
    fn events_without_spans_are_orphans() {
        let session = Session::begin("orphans");
        event("loose", 7.0);
        let snapshot = session.finish();
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].value, 7.0);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let session = Session::begin("round-trip");
        counter_add("oracle.queries", 1234);
        observe("oracle.query_ns", 1500);
        observe("oracle.query_ns", 90_000);
        {
            crate::span!("fit");
            {
                crate::span!("shadow_training");
                event("cmaes.best_fitness", 0.25);
            }
        }
        event("orphan", -1.5);
        let snapshot = session.finish();
        let text = snapshot.to_json_string();
        let back = TelemetrySnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn worker_records_merge_into_parent_session() {
        let session = Session::begin("workers");
        counter_add("queries", 10);
        observe("latency", 100);
        let ctx = worker_context().expect("session installed");
        let records: Vec<WorkerRecords> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|w| {
                    scope.spawn(move || {
                        let worker = ctx.begin();
                        assert!(enabled());
                        counter_add("queries", w + 1);
                        observe("latency", 200 * (w + 1));
                        {
                            crate::span!("work_item");
                            event("tick", w as f64);
                        }
                        worker.finish()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        {
            crate::span!("parallel_phase");
            absorb_workers(records);
        }
        let snapshot = session.finish();
        assert_eq!(snapshot.counter("queries"), 10 + 1 + 2 + 3);
        let hist = &snapshot.histograms["latency"];
        assert_eq!(hist.count(), 4);
        let phase = snapshot.find_span("parallel_phase").unwrap();
        assert_eq!(phase.children.len(), 3);
        for child in &phase.children {
            assert_eq!(child.name, "work_item");
            assert_eq!(child.events.len(), 1);
            // Worker timestamps share the parent session's origin.
            assert!(child.start_ns + child.duration_ns <= snapshot.wall_ns);
        }
    }

    #[test]
    fn worker_context_is_none_when_disabled() {
        assert!(!enabled());
        assert!(worker_context().is_none());
    }

    #[test]
    fn absorb_without_open_span_appends_roots() {
        let session = Session::begin("flat");
        let ctx = worker_context().unwrap();
        let rec = std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    let worker = ctx.begin();
                    {
                        crate::span!("detached_work");
                    }
                    event("loose", 1.0);
                    worker.finish()
                })
                .join()
                .unwrap()
        });
        assert!(!rec.is_empty());
        absorb_workers([rec]);
        let snapshot = session.finish();
        assert!(snapshot.find_span("detached_work").is_some());
        assert_eq!(snapshot.events.len(), 1);
    }

    #[test]
    fn log_events_capture_stage_and_sequence() {
        let session = Session::begin("log");
        log_event("fit.start", [("shadows", LogValue::U64(4))]);
        {
            crate::span!("prompt_suspicious");
            log_event(
                "cmaes.generation",
                [("generation", 0u64.into()), ("best_fitness", 0.5.into())],
            );
        }
        let snapshot = session.finish();
        assert_eq!(snapshot.log.len(), 2);
        assert_eq!(snapshot.log_dropped, 0);
        assert_eq!(snapshot.log[0].seq, 0);
        assert_eq!(snapshot.log[0].stage, "");
        assert_eq!(snapshot.log[0].name, "fit.start");
        assert_eq!(snapshot.log[1].seq, 1);
        assert_eq!(snapshot.log[1].stage, "prompt_suspicious");
        assert_eq!(
            snapshot.log[1].field("best_fitness"),
            Some(&LogValue::F64(0.5))
        );
    }

    #[test]
    fn log_is_bounded_and_counts_drops() {
        let session = Session::begin("bounded");
        for i in 0..(LOG_CAPACITY + 10) {
            log_event("tick", [("i", LogValue::U64(i as u64))]);
        }
        let snapshot = session.finish();
        assert_eq!(snapshot.log.len(), LOG_CAPACITY);
        assert_eq!(snapshot.log_dropped, 10);
        // The retained prefix stays gapless.
        assert_eq!(snapshot.log.last().unwrap().seq, LOG_CAPACITY as u64 - 1);
    }

    #[test]
    fn disabled_log_event_is_a_no_op() {
        assert!(!enabled());
        log_event("dead", [("x", LogValue::U64(1))]);
        let snapshot = Session::begin("check").finish();
        assert!(snapshot.log.is_empty());
    }

    #[test]
    fn worker_logs_merge_in_worker_order_with_resequencing() {
        let session = Session::begin("worker-logs");
        log_event("parent.before", []);
        let ctx = worker_context().unwrap();
        let records: Vec<WorkerRecords> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3u64)
                .map(|w| {
                    scope.spawn(move || {
                        let worker = ctx.begin();
                        {
                            crate::span!("work_item");
                            log_event("worker.tick", [("worker", LogValue::U64(w))]);
                        }
                        worker.finish()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        absorb_workers(records);
        let snapshot = session.finish();
        assert_eq!(snapshot.log.len(), 4);
        // Gapless resequencing, worker records in worker-index order.
        for (i, record) in snapshot.log.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
        }
        for (i, record) in snapshot.log[1..].iter().enumerate() {
            assert_eq!(record.name, "worker.tick");
            assert_eq!(record.stage, "work_item");
            assert_eq!(record.field("worker"), Some(&LogValue::U64(i as u64)));
        }
    }

    #[test]
    fn snapshot_with_log_round_trips() {
        let session = Session::begin("log-round-trip");
        log_event(
            "verdict.finding",
            [
                ("rule", "B002".into()),
                ("score", 0.9.into()),
                ("escalated", true.into()),
            ],
        );
        let snapshot = session.finish();
        let back = TelemetrySnapshot::from_json_str(&snapshot.to_json_string()).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn dropping_session_without_finish_uninstalls() {
        {
            let _session = Session::begin("dropped");
            assert!(enabled());
        }
        assert!(!enabled());
        counter_add("x", 1); // must not panic
    }
}
