//! The telemetry collector: a thread-local sink that spans, counters,
//! events and histogram observations report into while a [`Session`] is
//! installed, and the serializable [`TelemetrySnapshot`] it produces.
//!
//! Design constraints (see `DESIGN.md` § Observability):
//!
//! * **Zero-cost when disabled** — every recording entry point first reads
//!   one thread-local flag and returns immediately when no session is
//!   installed; no allocation, no clock read.
//! * **Deterministic-safe** — the collector only ever reads
//!   [`std::time::Instant`]; it never touches the experiment `Rng` or any
//!   value that feeds back into computation, so enabling telemetry cannot
//!   change experimental results.
//! * **Single-threaded by design** — the substrate targets one core, so
//!   the sink is thread-local: a session observes exactly the thread that
//!   created it, and parallel tests cannot contaminate each other.

use crate::histogram::Histogram;
use crate::json::{FromJson, JsonResult, ToJson, Value};
use crate::span::{EventRecord, SpanGuard, SpanRecord};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Instant;

struct Collector {
    label: String,
    start: Instant,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Completed top-level spans.
    roots: Vec<SpanRecord>,
    /// Currently open spans, outermost first.
    stack: Vec<SpanRecord>,
    /// Events recorded while no span was open.
    orphan_events: Vec<EventRecord>,
}

impl Collector {
    fn new(label: String) -> Self {
        Collector {
            label,
            start: Instant::now(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            orphan_events: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn close_one(&mut self) {
        if let Some(mut span) = self.stack.pop() {
            span.duration_ns = self.now_ns().saturating_sub(span.start_ns);
            match self.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => self.roots.push(span),
            }
        }
    }

    fn into_snapshot(mut self) -> TelemetrySnapshot {
        while !self.stack.is_empty() {
            self.close_one();
        }
        TelemetrySnapshot {
            label: self.label,
            wall_ns: self.start.elapsed().as_nanos() as u64,
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            spans: self.roots,
            events: self.orphan_events,
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Whether a telemetry session is currently installed on this thread.
///
/// Instrumented code may use this to skip preparation work (e.g. clock
/// reads) that only feeds telemetry.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Opens a named span; the returned RAII guard closes it on drop,
/// recording the nested wall-clock duration. Prefer the [`crate::span!`]
/// macro, which binds the guard to the enclosing scope.
///
/// No-op (inert guard) when telemetry is disabled.
pub fn span_enter(name: &'static str) -> SpanGuard {
    let depth = with_collector(|c| {
        let start_ns = c.now_ns();
        c.stack.push(SpanRecord {
            name: name.to_string(),
            start_ns,
            duration_ns: 0,
            events: Vec::new(),
            children: Vec::new(),
        });
        c.stack.len() - 1
    });
    SpanGuard { depth }
}

/// Closes open spans until the stack is back to `depth` entries deep.
/// Called by [`SpanGuard::drop`]; tolerates a session having been
/// replaced between guard creation and drop.
pub(crate) fn close_span_to_depth(depth: usize) {
    with_collector(|c| {
        while c.stack.len() > depth {
            c.close_one();
        }
    });
}

/// Adds `delta` to a named monotonic counter. No-op when disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    with_collector(|c| {
        *c.counters.entry(name).or_insert(0) += delta;
    });
}

/// Records a named point-in-time event with a numeric payload, attached
/// to the innermost open span. No-op when disabled.
pub fn event(name: &'static str, value: f64) {
    with_collector(|c| {
        let record = EventRecord {
            name: name.to_string(),
            at_ns: c.now_ns(),
            value,
        };
        match c.stack.last_mut() {
            Some(span) => span.events.push(record),
            None => c.orphan_events.push(record),
        }
    });
}

/// Records one sample into a named fixed-bucket histogram. No-op when
/// disabled.
pub fn observe(name: &'static str, value: u64) {
    with_collector(|c| {
        c.histograms.entry(name).or_default().record(value);
    });
}

/// Opens a named span bound to the enclosing scope:
///
/// ```
/// fn shadow_training_phase() {
///     bprom_obs::span!("shadow_training");
///     // ... work; the span closes when the scope ends ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _bprom_obs_span_guard = $crate::span_enter($name);
    };
}

/// An installed telemetry session. While alive, all spans/counters/
/// events/histograms recorded **on this thread** accumulate into it;
/// [`Session::finish`] produces the serializable [`TelemetrySnapshot`].
///
/// Creating a second session on the same thread replaces the first
/// (guards from the replaced session become inert-tolerant: they close
/// nothing they didn't open).
#[derive(Debug)]
pub struct Session {
    // Sessions are bound to the installing thread's collector.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Session {
    /// Installs a fresh collector on the current thread. `label` names
    /// the run in the snapshot (bench binary name, test name, ...).
    pub fn begin(label: impl Into<String>) -> Session {
        COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new(label.into())));
        ENABLED.with(|e| e.set(true));
        Session {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Uninstalls the collector and returns everything it recorded. Open
    /// spans are force-closed with their duration so far.
    pub fn finish(self) -> TelemetrySnapshot {
        ENABLED.with(|e| e.set(false));
        let collector = COLLECTOR.with(|c| c.borrow_mut().take());
        // `self` dropping after the take is a no-op uninstall.
        collector
            .map(Collector::into_snapshot)
            .unwrap_or_else(|| TelemetrySnapshot::empty("detached"))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(false));
        COLLECTOR.with(|c| c.borrow_mut().take());
    }
}

/// Everything one telemetry session recorded, in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Run label passed to [`Session::begin`].
    pub label: String,
    /// Total session wall-clock, in nanoseconds.
    pub wall_ns: u64,
    /// Final values of all monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// All histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Completed top-level spans (with nested children).
    pub spans: Vec<SpanRecord>,
    /// Events recorded while no span was open.
    pub events: Vec<EventRecord>,
}

impl TelemetrySnapshot {
    fn empty(label: &str) -> Self {
        TelemetrySnapshot {
            label: label.to_string(),
            wall_ns: 0,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Final value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Depth-first search across all root spans for the first span with
    /// the given name.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Serializes the snapshot as pretty-printed JSON (the
    /// `telemetry.json` artifact format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a snapshot back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`crate::JsonError`] on malformed input.
    pub fn from_json_str(text: &str) -> JsonResult<Self> {
        Self::from_json(&Value::parse(text)?)
    }
}

impl ToJson for TelemetrySnapshot {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("label", self.label.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("counters", self.counters.to_json()),
            ("histograms", self.histograms.to_json()),
            ("spans", self.spans.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for TelemetrySnapshot {
    fn from_json(value: &Value) -> JsonResult<Self> {
        Ok(TelemetrySnapshot {
            label: String::from_json(value.require("label")?)?,
            wall_ns: u64::from_json(value.require("wall_ns")?)?,
            counters: BTreeMap::from_json(value.require("counters")?)?,
            histograms: BTreeMap::from_json(value.require("histograms")?)?,
            spans: Vec::from_json(value.require("spans")?)?,
            events: Vec::from_json(value.require("events")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        assert!(!enabled());
        counter_add("x", 5);
        observe("h", 10);
        event("e", 1.0);
        {
            crate::span!("dead");
        }
        let snapshot = Session::begin("check").finish();
        assert_eq!(snapshot.counter("x"), 0);
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.spans.is_empty());
        assert!(snapshot.events.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let session = Session::begin("counters");
        counter_add("queries", 3);
        counter_add("queries", 4);
        counter_add("other", 1);
        let snapshot = session.finish();
        assert_eq!(snapshot.counter("queries"), 7);
        assert_eq!(snapshot.counter("other"), 1);
        assert_eq!(snapshot.counter("missing"), 0);
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_and_durations_are_monotonic() {
        let session = Session::begin("spans");
        {
            crate::span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                crate::span!("inner");
                event("tick", 42.0);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snapshot = session.finish();
        let outer = snapshot.find_span("outer").expect("outer recorded");
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert!(inner.duration_ns > 0);
        // Nesting invariant: a child starts after and fits inside its parent.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.duration_ns <= outer.duration_ns);
        assert!(
            inner.start_ns + inner.duration_ns <= outer.start_ns + outer.duration_ns,
            "child must end before its parent"
        );
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.events[0].name, "tick");
        assert!(snapshot.wall_ns >= outer.duration_ns);
    }

    #[test]
    fn sequential_spans_become_siblings() {
        let session = Session::begin("siblings");
        {
            crate::span!("root");
            {
                crate::span!("a");
            }
            {
                crate::span!("b");
            }
        }
        let snapshot = session.finish();
        let root = snapshot.find_span("root").unwrap();
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(root.child_duration_ns() <= root.duration_ns);
    }

    #[test]
    fn finish_force_closes_open_spans() {
        let session = Session::begin("open");
        let _guard = span_enter("never_closed");
        let snapshot = session.finish();
        assert!(snapshot.find_span("never_closed").is_some());
        // The leaked guard must not panic or corrupt later sessions.
        drop(_guard);
        let snapshot = Session::begin("after").finish();
        assert!(snapshot.spans.is_empty());
    }

    #[test]
    fn events_without_spans_are_orphans() {
        let session = Session::begin("orphans");
        event("loose", 7.0);
        let snapshot = session.finish();
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].value, 7.0);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let session = Session::begin("round-trip");
        counter_add("oracle.queries", 1234);
        observe("oracle.query_ns", 1500);
        observe("oracle.query_ns", 90_000);
        {
            crate::span!("fit");
            {
                crate::span!("shadow_training");
                event("cmaes.best_fitness", 0.25);
            }
        }
        event("orphan", -1.5);
        let snapshot = session.finish();
        let text = snapshot.to_json_string();
        let back = TelemetrySnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn dropping_session_without_finish_uninstalls() {
        {
            let _session = Session::begin("dropped");
            assert!(enabled());
        }
        assert!(!enabled());
        counter_add("x", 1); // must not panic
    }
}
