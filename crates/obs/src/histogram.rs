//! Fixed-bucket histograms for latency/size distributions.
//!
//! Buckets are powers of two: bucket `i` counts samples in
//! `[2^i, 2^(i+1))` (bucket 0 covers `{0, 1}`), so the full `u64` range is
//! covered by 64 buckets with no configuration and recording is one
//! `leading_zeros` plus an increment. Exact aggregate statistics
//! (count/sum/min/max) are tracked alongside the buckets.

use crate::json::{FromJson, JsonError, JsonResult, ToJson, Value};

/// Number of power-of-two buckets (covers the whole `u64` range).
pub const BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of `u64` samples (typically nanoseconds
/// or batch sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket a sample falls into.
    pub fn bucket_index(value: u64) -> usize {
        // 0 and 1 land in bucket 0; otherwise floor(log2(value)).
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << index
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket counts (length [`BUCKETS`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`) from the
    /// bucket boundaries: the lower bound of the first bucket at which the
    /// cumulative count reaches `q * count`, clamped to the observed
    /// min/max. `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                // The next bucket's lower bound is this bucket's upper bound.
                let upper = Self::bucket_lower(i + 1).saturating_sub(1);
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Value {
        // Sparse bucket encoding: only nonzero buckets, as [index, count].
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::Num(i as f64), Value::Num(c as f64)]))
            .collect();
        Value::object(vec![
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            (
                "min",
                if self.count > 0 {
                    self.min.to_json()
                } else {
                    Value::Null
                },
            ),
            (
                "max",
                if self.count > 0 {
                    self.max.to_json()
                } else {
                    Value::Null
                },
            ),
            ("buckets", Value::Array(buckets)),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(value: &Value) -> JsonResult<Self> {
        let mut h = Histogram::new();
        h.count = u64::from_json(value.require("count")?)?;
        h.sum = u64::from_json(value.require("sum")?)?;
        h.min = match value.require("min")? {
            Value::Null => u64::MAX,
            v => u64::from_json(v)?,
        };
        h.max = match value.require("max")? {
            Value::Null => 0,
            v => u64::from_json(v)?,
        };
        let buckets = value
            .require("buckets")?
            .as_array()
            .ok_or_else(|| JsonError::new("buckets must be an array"))?;
        for pair in buckets {
            let pair = pair
                .as_array()
                .ok_or_else(|| JsonError::new("bucket must be [index, count]"))?;
            if pair.len() != 2 {
                return Err(JsonError::new("bucket must be [index, count]"));
            }
            let index = usize::from_json(&pair[0])?;
            if index >= BUCKETS {
                return Err(JsonError::new(format!("bucket index {index} out of range")));
            }
            h.counts[index] = u64::from_json(&pair[1])?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn records_aggregate_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(100_000); // bucket 16
        assert_eq!(h.approx_quantile(0.5), Some(127));
        // The p100 estimate clamps to the observed max.
        assert_eq!(h.approx_quantile(1.0), Some(100_000));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 1000, 123_456_789] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        let empty = Histogram::new();
        let back = Histogram::from_json(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
    }
}
