//! Table 7: AUROC vs number of shadow models (2, 10, 20), Blend and
//! Adap-Blend suspicious models.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(7);
    header(
        "Table 7 — AUROC vs shadow-model count (CIFAR-10)",
        &["shadows", "Blend", "Adap-Blend"],
    );
    for total in [2usize, 10, 20] {
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.clean_shadows = total / 2;
        cfg.backdoor_shadows = total / 2;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        let mut values = Vec::new();
        for attack in [AttackKind::Blend, AttackKind::AdapBlend] {
            let zoo = build_suspicious_zoo(&zoo_config(SynthDataset::Cifar10, attack), &mut rng)
                .expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            values.push(report.auroc);
        }
        row(&format!("{total} ({}+{})", total / 2, total / 2), &values);
    }
}
