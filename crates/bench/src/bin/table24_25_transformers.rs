//! Tables 24/25: BPROM on attention architectures (VitMini for MobileViT,
//! SwinMini for Swin Transformer).

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config};
use bprom_data::SynthDataset;
use bprom_nn::models::Architecture;
use bprom_tensor::Rng;

fn main() {
    let mut rng = Rng::new(24);
    for arch in [Architecture::VitMini, Architecture::SwinMini] {
        header(
            &format!("Tables 24/25 — BPROM(10%) on {arch} (CIFAR-10)"),
            &["attack", "auroc", "f1"],
        );
        let mut cfg = detector_config(SynthDataset::Cifar10, SynthDataset::Stl10);
        cfg.architecture = arch;
        let detector = Bprom::fit(&cfg, &mut rng).expect("fit");
        for attack in [AttackKind::BadNets, AttackKind::Blend, AttackKind::Trojan] {
            let mut zoo_cfg = zoo_config(SynthDataset::Cifar10, attack);
            zoo_cfg.architecture = arch;
            let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            row(attack.name(), &[report.auroc, report.f1]);
        }
    }
}
