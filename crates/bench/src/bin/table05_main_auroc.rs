//! Table 5: AUROC of BPROM across the 8 main attacks (meta-classifier
//! trained on BadNets shadows only), per dataset. The paper's baselines
//! are reported by `table16_f1_resnet` (F1) and the defense binaries.

use bprom::{build_suspicious_zoo, evaluate_detector, Bprom};
use bprom_attacks::AttackKind;
use bprom_bench::{detector_config, header, row, zoo_config, TelemetryGuard};
use bprom_data::SynthDataset;
use bprom_tensor::Rng;

fn main() {
    let _telemetry = TelemetryGuard::begin("table05_main_auroc");
    let mut rng = Rng::new(42);
    for source in [SynthDataset::Cifar10, SynthDataset::Gtsrb] {
        header(
            &format!("Table 5 — BPROM(10%) AUROC on {source}"),
            &["attack", "auroc", "f1", "mean_acc", "mean_asr"],
        );
        let cfg = detector_config(source, SynthDataset::Stl10);
        let detector = Bprom::fit(&cfg, &mut rng).expect("detector fit");
        let mut aurocs = Vec::new();
        for attack in AttackKind::MAIN_TABLE {
            let zoo_cfg = zoo_config(source, attack);
            let zoo = build_suspicious_zoo(&zoo_cfg, &mut rng).expect("zoo");
            let acc = zoo.iter().map(|m| m.accuracy).sum::<f32>() / zoo.len() as f32;
            let asr = zoo
                .iter()
                .filter(|m| m.backdoored)
                .map(|m| m.asr)
                .sum::<f32>()
                / zoo.iter().filter(|m| m.backdoored).count().max(1) as f32;
            let report = evaluate_detector(&detector, zoo, &mut rng).expect("eval");
            row(attack.name(), &[report.auroc, report.f1, acc, asr]);
            aurocs.push(report.auroc);
        }
        row("AVG", &[aurocs.iter().sum::<f32>() / aurocs.len() as f32]);
    }
}
